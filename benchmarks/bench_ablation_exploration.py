"""Ablation: parameter-based exploration vs. ε-greedy and a constant rate.

The paper argues (Sect. 4.2) that ε-greedy cannot adapt after its rate has
decayed and that a constant rate keeps destroying an established schedule.
The benchmark compares the three strategies in the hidden-node scenario.
"""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.core.exploration import ConstantEpsilon, EpsilonGreedy, ParameterBasedExploration
from repro.experiments.base import make_mac_factory
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.topology.hidden_node import NODE_A, NODE_C, hidden_node_topology
from repro.traffic.generators import PoissonTraffic

STRATEGIES = {
    "parameter-based": ParameterBasedExploration,
    "epsilon-greedy": lambda: EpsilonGreedy(epsilon_start=0.3, decay=0.995),
    "constant": lambda: ConstantEpsilon(0.05),
}


def _run_with_strategy(strategy_factory, seed: int) -> float:
    sim = Simulator(seed=seed)
    topology = hidden_node_topology()
    factory = make_mac_factory("qma", exploration=strategy_factory)
    network = Network(sim, topology, factory)
    generators = []
    for node_id in (NODE_A, NODE_C):
        node = network.node(node_id)
        generator = PoissonTraffic(
            sim, node.generate_packet, rate=50.0,
            start_time=HIDDEN_NODE_WARMUP, max_packets=HIDDEN_NODE_PACKETS,
            rng_name=f"ablation-{node_id}",
        )
        node.attach_traffic(generator)
        generators.append(generator)
    network.start()
    sim.run_until(HIDDEN_NODE_WARMUP + HIDDEN_NODE_PACKETS / 50.0 + 5.0)
    return network.packet_delivery_ratio()


def test_bench_ablation_exploration(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run_with_strategy(factory, seed=7) for name, factory in STRATEGIES.items()},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({name: round(pdr, 3) for name, pdr in results.items()})
    assert results["parameter-based"] > 0.7
    # Parameter-based exploration is at least competitive with the alternatives.
    assert results["parameter-based"] >= max(results.values()) - 0.1
