"""Ablation: the penalty ξ of Eq. 5 vs. the plain Lauer-Riedmiller max update.

Without the penalty, a single lucky success freezes an optimistic Q-value
forever (the stochastic-environment problem of Sect. 3.1.1); with ξ > 0 the
agents recover from collisions and reach a higher PDR in the hidden-node
scenario.
"""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.core.config import QmaConfig
from repro.experiments.hidden_node import run_hidden_node


def _pdr_with_penalty(penalty: float, seed: int) -> float:
    config = QmaConfig(penalty=penalty)
    return run_hidden_node(
        mac="qma",
        delta=50,
        packets_per_node=HIDDEN_NODE_PACKETS,
        warmup=HIDDEN_NODE_WARMUP,
        seed=seed,
        qma_config=config,
    ).pdr


def test_bench_ablation_penalty(benchmark):
    def run():
        seeds = (1, 2, 3)
        with_penalty = sum(_pdr_with_penalty(2.0, s) for s in seeds) / len(seeds)
        without_penalty = sum(_pdr_with_penalty(0.0, s) for s in seeds) / len(seeds)
        return with_penalty, without_penalty

    with_penalty, without_penalty = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["pdr_with_penalty"] = round(with_penalty, 3)
    benchmark.extra_info["pdr_without_penalty"] = round(without_penalty, 3)
    assert with_penalty >= without_penalty - 0.02
    assert with_penalty > 0.85
