"""Ablation: cautious startup on/off for a late-joining node (Sect. 4.3)."""

from __future__ import annotations

from repro.core.config import QmaConfig
from repro.experiments.base import make_mac_factory
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.topology.hidden_node import NODE_A, NODE_C, hidden_node_topology
from repro.traffic.generators import PoissonTraffic


def _run_with_startup(startup_subslots: int, seed: int = 9) -> float:
    """Node A converges first; node C joins after 20 s.  Returns node A's PDR
    over the phase after node C joined (lower = the join destroyed more of
    A's established schedule)."""
    sim = Simulator(seed=seed)
    topology = hidden_node_topology()
    config = QmaConfig(cautious_startup_subslots=startup_subslots)
    factory = make_mac_factory("qma", qma_config=config)
    network = Network(sim, topology, factory)

    node_a = network.node(NODE_A)
    traffic_a = PoissonTraffic(sim, node_a.generate_packet, rate=25.0, rng_name="a")
    node_a.attach_traffic(traffic_a)

    node_c = network.node(NODE_C)
    traffic_c = PoissonTraffic(sim, node_c.generate_packet, rate=25.0, start_time=20.0, rng_name="c")

    network.start()
    sim.schedule_at(20.0, traffic_c.start)
    sim.run_until(60.0)

    delivered_late = sum(
        1 for record in network.sink.deliveries
        if record.origin == NODE_A and record.created_at >= 20.0
    )
    generated_late = traffic_a.generated - int(20.0 * 25.0)
    if generated_late <= 0:
        return 0.0
    return min(1.0, delivered_late / generated_late)


def test_bench_ablation_cautious_startup(benchmark):
    def run():
        return {
            "with_startup": _run_with_startup(108),
            "without_startup": _run_with_startup(0),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 3) for k, v in results.items()})
    assert results["with_startup"] > 0.5
    # Cautious startup must not hurt the established node.
    assert results["with_startup"] >= results["without_startup"] - 0.1
