"""Construction-cache benchmark: build-once/run-many vs. rebuild-per-run.

Short runs over non-trivial topologies are *construction-dominated*: the
17-node ``iotlab-star`` with the ``fading`` propagation model spends about
half of each run deriving links (O(n²) path-loss + per-pair shadowing
draws) and wiring the PER matrix — work that is identical for every seed
once the shadowing seed is pinned.  Two measurements track how much of
that the configuration-keyed artifact cache recovers:

* ``construction_overhead`` — the in-process fraction of one short run's
  wall-clock spent building artifacts (the cache's upper bound);
* ``sweep_cached_speedup`` — the same batched short-run sweep at
  ``--jobs 4`` with the cache off (PR 4 behaviour: every run rebuilds)
  vs. on (workers reuse the shared bundle), records asserted identical.

Run under pytest-benchmark (``pytest benchmarks/bench_build_cache.py``) or
directly (``python benchmarks/bench_build_cache.py --quick``).
"""

from __future__ import annotations

import sys
import time

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.experiments.testbed import run_star
from repro.scenario import ARTIFACT_CACHE, ScenarioBuilder, ScenarioConfig

JOBS = 4

#: Full workload: 160 runs, also split as 8 batches of 20.
BENCH_RUNS = 160
BENCH_BATCHES = 8

#: Reduced workload for the CI smoke run.
SMOKE_RUNS = 48
SMOKE_BATCHES = 4

#: The pinned shadowing seed: every run of the sweep then shares one
#: construction artifact bundle (the cache's best case, and the common
#: shape of a multi-seed repetition study over a fixed deployment).
SHADOWING_SEED = 7

#: Construction-heavy short-run scenario shared by both measurements.
SCENARIO_FIXED = {
    "packets_per_node": 2,
    "warmup": 0.3,
    "delta": 50.0,
    "propagation_params": {"seed": SHADOWING_SEED},
}


def cached_sweep(base_seed: int, runs: int) -> Sweep:
    """A short-duration star+fading sweep of ``runs`` seeds (~5 ms/run)."""
    return Sweep(
        experiment="testbed-star",
        macs=("unslotted-csma",),
        propagations=("fading",),
        fixed=dict(SCENARIO_FIXED),
        seeds=list(range(base_seed, base_seed + runs)),
    )


def measure_construction_overhead(rounds: int = 30) -> dict:
    """In-process split of one short run: artifact build vs. total wall.

    Measured with the cache disabled so every round pays full
    construction; the reported overhead is construction's share of the
    run, i.e. the theoretical maximum the cache can recover.
    """
    config = ScenarioConfig(
        topology="iotlab-star",
        mac="unslotted-csma",
        propagation="fading",
        propagation_params={"seed": SHADOWING_SEED},
        link_error_rate=0.02,
        seed=0,
    )
    run_kwargs = dict(
        mac="unslotted-csma",
        delta=SCENARIO_FIXED["delta"],
        packets_per_node=SCENARIO_FIXED["packets_per_node"],
        warmup=SCENARIO_FIXED["warmup"],
        propagation="fading",
        propagation_params={"seed": SHADOWING_SEED},
    )
    with ARTIFACT_CACHE.override(enabled=False):
        run_star(seed=0, **run_kwargs)  # warm imports/registries
        start = time.perf_counter()
        for seed in range(rounds):
            ScenarioBuilder(config).build_artifacts(freeze=False)
        build_s = (time.perf_counter() - start) / rounds
        start = time.perf_counter()
        for seed in range(rounds):
            run_star(seed=seed, **run_kwargs)
        run_s = (time.perf_counter() - start) / rounds
    return {
        "build_ms": build_s * 1000,
        "run_ms": run_s * 1000,
        "overhead_pct": 100.0 * build_s / run_s if run_s > 0 else 0.0,
    }


def measure_cached_sweep(batches: int, per_batch: int) -> dict:
    """The batched short-run sweep at ``--jobs 4``, cache off vs. on.

    Batched (several sequential ``run`` calls through one runner) is the
    adaptive-campaign shape; with the cache on, each warm worker builds
    the shared bundle once and every later run only pays per-run assembly.
    Record equality between the regimes is asserted.
    """
    # One chunk per worker and batch for both regimes: small batches would
    # otherwise dispatch with chunksize=1 and the per-task IPC round trips
    # would drown the construction share being measured.
    chunksize = max(1, per_batch // JOBS)
    with CampaignRunner(jobs=JOBS, build_cache=False, chunksize=chunksize) as runner:
        start = time.perf_counter()
        off_records = []
        for index in range(batches):
            off_records.extend(runner.run(cached_sweep(index * per_batch, per_batch)).records)
        off_s = time.perf_counter() - start

    with CampaignRunner(jobs=JOBS, build_cache=True, chunksize=chunksize) as runner:
        start = time.perf_counter()
        on_records = []
        for index in range(batches):
            on_records.extend(runner.run(cached_sweep(index * per_batch, per_batch)).records)
        on_s = time.perf_counter() - start

    assert on_records == off_records, "build cache changed the records"
    return {
        "runs": batches * per_batch,
        "batches": batches,
        "off_s": off_s,
        "on_s": on_s,
        "speedup": off_s / on_s if on_s > 0 else float("inf"),
    }


def test_bench_build_cache(benchmark):
    """The cache must beat per-run construction on the batched shape."""

    def run():
        return measure_cached_sweep(SMOKE_BATCHES, SMOKE_RUNS // SMOKE_BATCHES)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "runs": result["runs"],
            "off_s": round(result["off_s"], 3),
            "on_s": round(result["on_s"], 3),
            "speedup": round(result["speedup"], 2),
        }
    )
    assert result["speedup"] > 1.0


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    runs = SMOKE_RUNS if quick else BENCH_RUNS
    batches = SMOKE_BATCHES if quick else BENCH_BATCHES

    overhead = measure_construction_overhead(rounds=10 if quick else 30)
    print(
        f"construction overhead (star+fading short run): "
        f"build {overhead['build_ms']:.2f} ms / run {overhead['run_ms']:.2f} ms "
        f"-> {overhead['overhead_pct']:.1f}%"
    )
    result = measure_cached_sweep(batches, runs // batches)
    print(
        f"batched cached sweep ({batches} x {runs // batches} runs, jobs={JOBS}): "
        f"cache off {result['off_s']:.3f} s, on {result['on_s']:.3f} s "
        f"-> {result['speedup']:.2f}x"
    )
    if result["speedup"] <= 1.0:
        print("FAIL: build cache is not faster than per-run construction", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
