"""Campaign layer: serial vs. 4-worker wall-clock for a reduced fig7 sweep.

Tracks the parallel speedup of :class:`repro.campaign.runner.CampaignRunner`
in the perf trajectory, and asserts that the parallel records are equal to
the serial ones (the determinism guarantee the campaign layer is built on).
The >= 2x speedup assertion only applies when the machine actually has the
four cores the pool asks for.
"""

from __future__ import annotations

import os
import time

from conftest import HIDDEN_NODE_WARMUP

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep

#: Reduced fig7 sweep: 2 MACs x 2 rates x 3 seeds = 12 scenarios.
_SWEEP = Sweep(
    experiment="hidden-node",
    macs=("qma", "unslotted-csma"),
    grid={"delta": [10.0, 25.0]},
    fixed={"packets_per_node": 80, "warmup": HIDDEN_NODE_WARMUP},
    seeds=(0, 1, 2),
)

_WORKERS = 4


def _usable_cpus() -> int:
    """CPUs this process may actually use (affinity-aware, for cgroup CI)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_runs():
    start = time.perf_counter()
    serial = CampaignRunner(jobs=1).run(_SWEEP)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = CampaignRunner(jobs=_WORKERS).run(_SWEEP)
    parallel_s = time.perf_counter() - start
    return serial, parallel, serial_s, parallel_s


def test_bench_campaign_parallel_speedup(benchmark):
    """4 workers must reproduce the serial records exactly — and faster, given cores."""
    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        _timed_runs, rounds=1, iterations=1
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info.update(
        {
            "scenarios": _SWEEP.size,
            "workers": _WORKERS,
            "cpu_count": os.cpu_count(),
            "usable_cpus": _usable_cpus(),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 2),
        }
    )
    assert parallel.records == serial.records
    assert all(0.0 <= record.metrics["pdr"] <= 1.0 for record in serial)
    if _usable_cpus() >= _WORKERS:
        assert speedup >= 2.0
