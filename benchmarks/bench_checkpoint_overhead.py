"""Checkpoint journaling overhead: journal-on vs journal-off batched sweep.

The campaign service journals every completed run (one flushed JSONL line
per record) so that a killed campaign resumes instead of recomputing.
That durability must be close to free, or nobody runs with ``--checkpoint``
on: the acceptance gate is **≤5 % wall-clock overhead** on the standard
500-run orchestration-dominated short sweep — the worst case for the
journal, since the per-run simulation work is tiny (~0.5 ms) and the
per-record append is a fixed cost.

Both sides run the identical sweep through the identical warm pool at the
same worker count; the checkpointed side additionally pays the journal
header, one append+flush per record and the final digest-verified replay
pass into the (null) output path.  Rounds are paired (plain then
journalled, back to back) and the reported overhead is the median paired
ratio, which cancels machine-load drift.

Run directly (``python benchmarks/bench_checkpoint_overhead.py --quick``)
or through ``benchmarks/run_all.py``.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from repro.campaign.runner import CampaignRunner

from bench_sweep_orchestration import short_sweep
from repro.service.backends import PoolBackend
from repro.service.checkpoint import run_checkpointed

JOBS = 4

#: Full workload: the standard 500-run batched short sweep.
BENCH_RUNS = 500
#: Reduced workload for the CI smoke run.
SMOKE_RUNS = 100

#: Acceptance ceiling: journal-on may cost at most this factor of the
#: journal-off wall-clock.  The smoke workload is 5x shorter, so its
#: fixed costs (journal header fsync, replay-file open) weigh 5x more
#: and timing noise is larger — it gets a looser ceiling.
OVERHEAD_CEILING = 1.05
SMOKE_OVERHEAD_CEILING = 1.15

#: Paired measurement rounds; the median ratio is reported.
ROUNDS = 3


def measure_checkpoint_overhead(runs: int, rounds: int = ROUNDS) -> dict:
    """Median paired wall-clock of the sweep with and without a journal."""
    # Seeds far away from the other orchestration benchmarks so warm-pool
    # artifact caches never cross-pollinate the comparison.
    sweep = short_sweep(20_000, runs)
    pairs = []
    for _ in range(rounds):
        with CampaignRunner(jobs=JOBS) as runner:
            start = time.perf_counter()
            for _record in runner.iter_records(sweep):
                pass
            plain_s = time.perf_counter() - start

        backend = PoolBackend(jobs=JOBS)
        try:
            with tempfile.TemporaryDirectory() as tmp:
                journal_path = os.path.join(tmp, "bench.journal.jsonl")
                start = time.perf_counter()
                outcome = run_checkpointed(sweep, journal_path, backend=backend)
                journal_s = time.perf_counter() - start
        finally:
            backend.close()
        if outcome.executed != runs:
            raise RuntimeError(
                f"checkpointed sweep executed {outcome.executed} of {runs} runs"
            )
        pairs.append((plain_s, journal_s))

    pairs.sort(key=lambda pair: pair[1] / pair[0])
    plain_s, journal_s = pairs[len(pairs) // 2]
    return {
        "runs": runs,
        "plain_s": plain_s,
        "journal_s": journal_s,
        "overhead": journal_s / plain_s,
    }


def check_ceiling(result: dict, quick: bool) -> None:
    """Raise if journaling costs more than the acceptance ceiling."""
    ceiling = SMOKE_OVERHEAD_CEILING if quick else OVERHEAD_CEILING
    if result["overhead"] > ceiling:
        raise RuntimeError(
            f"checkpoint journaling overhead {result['overhead']:.3f}x exceeds "
            f"the {ceiling}x ceiling ({result['plain_s']:.3f}s plain vs "
            f"{result['journal_s']:.3f}s journalled over {result['runs']} runs)"
        )


def main(argv: list) -> int:
    quick = "--quick" in argv
    runs = SMOKE_RUNS if quick else BENCH_RUNS
    result = measure_checkpoint_overhead(runs)
    print(
        f"checkpoint overhead over {result['runs']} runs (jobs={JOBS}): "
        f"plain {result['plain_s']:.3f}s, journalled {result['journal_s']:.3f}s "
        f"-> {result['overhead']:.3f}x"
    )
    check_ceiling(result, quick)
    print(
        f"OK: within the "
        f"{SMOKE_OVERHEAD_CEILING if quick else OVERHEAD_CEILING}x ceiling"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
