"""Sect. 6.2.1 energy argument: QMA and CSMA/CA need a similar number of
transmission attempts, so QMA's reliability gain costs no extra energy."""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.experiments.hidden_node import run_hidden_node


def test_bench_energy_transmission_attempts(benchmark):
    def run():
        return {
            mac: run_hidden_node(
                mac=mac, delta=10, packets_per_node=HIDDEN_NODE_PACKETS,
                warmup=HIDDEN_NODE_WARMUP, seed=5,
            )
            for mac in ("qma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    attempts = {mac: r.transmission_attempts for mac, r in results.items()}
    delivered = {mac: r.packets_delivered for mac, r in results.items()}
    benchmark.extra_info["attempts"] = attempts
    benchmark.extra_info["delivered"] = delivered
    # Same order of magnitude of attempts (the paper: equal energy consumption),
    # while QMA delivers at least as reliably (within noise on this reduced run).
    assert attempts["qma"] <= attempts["unslotted-csma"] * 1.5
    assert results["qma"].pdr >= results["unslotted-csma"].pdr - 0.05
