"""Event-engine hot-path benchmark: events/s on a 43-node scalability run.

Tracks the engine's inner-loop performance in the perf trajectory:

* the PR 2 pass (tuple-based heap without ``Event.__lt__`` calls, inlined
  ``run_until`` drain loop, no per-delivery neighbour-set copies, cached
  frame air time, index-based Q-table rows) took the original machine from
  ~146k to ~210k events/s on the deep-heap micro;
* the PR 4 pass added the allocation-lean fast path
  (:meth:`~repro.sim.engine.Simulator.schedule_fast`, Event freelist,
  batched drain-loop counters) — roughly 2x the generic path on the
  steady-state micro below — plus the channel's static link table.

Two micro shapes are measured: ``deep-heap`` (schedule N events, then
drain — heap depth dominates) and ``steady-state`` (self-rescheduling
tickers at constant queue depth — the shape of a real simulation, where
the fast path shows).

Run under pytest-benchmark (``pytest benchmarks/bench_engine_hotpath.py``)
or directly (``python benchmarks/bench_engine_hotpath.py``) for the
CI smoke variant on a reduced workload.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.scalability import run_scalability
from repro.sim.engine import Simulator

#: The paper's rings=3 topology (43 nodes) — "50-node scale".
BENCH_RINGS = 3
BENCH_DURATION = 60.0
BENCH_WARMUP = 30.0

#: Reduced workload for the CI smoke run (long enough for GTS handshakes
#: to produce secondary traffic).
SMOKE_RINGS = 2
SMOKE_DURATION = 40.0
SMOKE_WARMUP = 20.0

#: Tickers of the steady-state micro (constant queue depth).
STEADY_TICKERS = 50


def _timed_scalability(rings: int, duration: float, warmup: float):
    """One QMA scalability run; returns (result, wall seconds)."""
    start = time.perf_counter()
    result = run_scalability(
        mac="qma", rings=rings, duration=duration, warmup=warmup, seed=1
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def engine_micro_deep(num_events: int = 200_000) -> float:
    """Deep-heap micro: schedule ``num_events`` no-ops, then drain.

    Heap depth dominates here; kept for continuity with the PR 2 numbers.
    Returns events/s.
    """
    sim = Simulator(seed=0)

    def noop() -> None:
        pass

    start = time.perf_counter()
    for _ in range(num_events):
        sim.schedule(0.001, noop)
    sim.run()
    return num_events / (time.perf_counter() - start)


def engine_micro_steady(num_events: int = 300_000, fast: bool = True) -> float:
    """Steady-state micro: self-rescheduling tickers at constant depth.

    This is the shape of a real simulation (slot ticks, timers): the queue
    stays ~:data:`STEADY_TICKERS` deep while ``num_events`` events flow
    through.  With ``fast`` the tickers use ``schedule_fast`` (freelist,
    no tuple/dict), otherwise the generic ``schedule``.  Returns events/s.
    """
    sim = Simulator(seed=0)
    remaining = [num_events]

    if fast:
        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule_fast(0.001, tick)

        for _ in range(STEADY_TICKERS):
            sim.schedule_fast(0.0, tick)
    else:
        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        for _ in range(STEADY_TICKERS):
            sim.schedule(0.0, tick)

    start = time.perf_counter()
    sim.run_until(float(num_events))
    return num_events / (time.perf_counter() - start)


#: Back-compat alias for the PR 2-era name.
_engine_micro = engine_micro_deep


def test_bench_engine_hotpath(benchmark):
    """43-node QMA scalability run: wall-clock and executed events/s."""

    def run():
        return _timed_scalability(BENCH_RINGS, BENCH_DURATION, BENCH_WARMUP)

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    deep = engine_micro_deep()
    steady_generic = engine_micro_steady(fast=False)
    steady_fast = engine_micro_steady(fast=True)
    benchmark.extra_info.update(
        {
            "nodes": result.num_nodes,
            "simulated_s": result.duration,
            "wall_s": round(elapsed, 3),
            "engine_micro_events_per_s": round(deep),
            "engine_steady_generic_events_per_s": round(steady_generic),
            "engine_steady_fast_events_per_s": round(steady_fast),
            "secondary_pdr": round(result.secondary_pdr, 4),
        }
    )
    assert result.num_nodes == 43
    assert 0.0 <= result.secondary_pdr <= 1.0
    # The fast path must stay clearly ahead of the generic path.
    assert steady_fast > steady_generic


def main(argv=None) -> int:
    """CI smoke entry point: run a reduced workload once and print the numbers."""
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    rings = SMOKE_RINGS if quick else BENCH_RINGS
    duration = SMOKE_DURATION if quick else BENCH_DURATION
    warmup = SMOKE_WARMUP if quick else BENCH_WARMUP

    result, elapsed = _timed_scalability(rings, duration, warmup)
    deep = engine_micro_deep(50_000 if quick else 200_000)
    n = 100_000 if quick else 300_000
    steady_generic = engine_micro_steady(n, fast=False)
    steady_fast = engine_micro_steady(n, fast=True)
    print(
        f"scalability rings={rings} nodes={result.num_nodes}: "
        f"{result.duration:.0f} simulated s in {elapsed:.2f} wall s "
        f"(secondary_pdr={result.secondary_pdr:.3f})"
    )
    print(f"engine micro (deep heap): {deep / 1000:.1f}k events/s")
    print(
        f"engine micro (steady state): generic {steady_generic / 1000:.1f}k, "
        f"fast {steady_fast / 1000:.1f}k events/s "
        f"({steady_fast / steady_generic:.2f}x)"
    )
    if not 0.0 <= result.secondary_pdr <= 1.0:
        return 1
    if steady_fast <= steady_generic:
        print("FAIL: fast path is not faster than the generic path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
