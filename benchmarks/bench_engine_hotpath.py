"""Event-engine hot-path benchmark: events/s on a 43-node scalability run.

Tracks the effect of the inner-loop performance pass (tuple-based heap
without ``Event.__lt__`` calls, inlined ``run_until`` drain loop, no
per-delivery neighbour-set copies, cached frame air time, index-based
Q-table rows, running-aggregate neighbour tracker) in the perf trajectory.

Reference on the machine that introduced the pass (rings=3, 43 nodes,
60 s simulated, QMA on every node): 12.6 s before, 10.1 s after (~20 %
faster, ~75k -> ~94k events/s).  A pure engine micro-benchmark (schedule +
drain of no-op events) went from ~146k to ~210k events/s.

Run under pytest-benchmark (``pytest benchmarks/bench_engine_hotpath.py``)
or directly (``python benchmarks/bench_engine_hotpath.py``) for the
CI smoke variant on a reduced workload.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.scalability import run_scalability
from repro.sim.engine import Simulator

#: The paper's rings=3 topology (43 nodes) — "50-node scale".
BENCH_RINGS = 3
BENCH_DURATION = 60.0
BENCH_WARMUP = 30.0

#: Reduced workload for the CI smoke run (long enough for GTS handshakes
#: to produce secondary traffic).
SMOKE_RINGS = 2
SMOKE_DURATION = 40.0
SMOKE_WARMUP = 20.0


def _timed_scalability(rings: int, duration: float, warmup: float):
    """One QMA scalability run; returns (result, wall seconds)."""
    start = time.perf_counter()
    result = run_scalability(
        mac="qma", rings=rings, duration=duration, warmup=warmup, seed=1
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def _engine_micro(num_events: int = 200_000) -> float:
    """Pure engine throughput: schedule + drain no-op events; returns events/s."""
    sim = Simulator(seed=0)

    def noop() -> None:
        pass

    start = time.perf_counter()
    for _ in range(num_events):
        sim.schedule(0.001, noop)
    sim.run()
    return num_events / (time.perf_counter() - start)


def test_bench_engine_hotpath(benchmark):
    """43-node QMA scalability run: wall-clock and executed events/s."""

    def run():
        return _timed_scalability(BENCH_RINGS, BENCH_DURATION, BENCH_WARMUP)

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    events_per_s = _engine_micro()
    benchmark.extra_info.update(
        {
            "nodes": result.num_nodes,
            "simulated_s": result.duration,
            "wall_s": round(elapsed, 3),
            "engine_micro_events_per_s": round(events_per_s),
            "secondary_pdr": round(result.secondary_pdr, 4),
        }
    )
    assert result.num_nodes == 43
    assert 0.0 <= result.secondary_pdr <= 1.0


def main(argv=None) -> int:
    """CI smoke entry point: run a reduced workload once and print the numbers."""
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    rings = SMOKE_RINGS if quick else BENCH_RINGS
    duration = SMOKE_DURATION if quick else BENCH_DURATION
    warmup = SMOKE_WARMUP if quick else BENCH_WARMUP

    result, elapsed = _timed_scalability(rings, duration, warmup)
    micro = _engine_micro(50_000 if quick else 200_000)
    print(
        f"scalability rings={rings} nodes={result.num_nodes}: "
        f"{result.duration:.0f} simulated s in {elapsed:.2f} wall s "
        f"(secondary_pdr={result.secondary_pdr:.3f})"
    )
    print(f"engine micro: {micro / 1000:.1f}k events/s")
    if not 0.0 <= result.secondary_pdr <= 1.0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
