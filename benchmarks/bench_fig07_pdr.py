"""Fig. 7: packet delivery ratio in the hidden-node scenario, QMA vs. CSMA/CA."""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.experiments.hidden_node import run_hidden_node


def _pdr(mac: str, delta: float, seed: int = 1) -> float:
    return run_hidden_node(
        mac=mac,
        delta=delta,
        packets_per_node=HIDDEN_NODE_PACKETS,
        warmup=HIDDEN_NODE_WARMUP,
        seed=seed,
    ).pdr


def test_bench_fig07_high_load(benchmark):
    """At δ = 25 packets/s QMA sustains a high PDR while CSMA/CA degrades."""
    results = benchmark.pedantic(
        lambda: {mac: _pdr(mac, 25) for mac in ("qma", "slotted-csma", "unslotted-csma")},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({f"pdr_{mac}_d25": round(v, 3) for mac, v in results.items()})
    assert results["qma"] > results["unslotted-csma"]
    assert results["qma"] > results["slotted-csma"]
    assert results["qma"] > 0.9


def test_bench_fig07_low_load(benchmark):
    """At δ = 2 packets/s the performance difference shrinks (all PDRs are high)."""
    results = benchmark.pedantic(
        lambda: {mac: _pdr(mac, 2) for mac in ("qma", "unslotted-csma")},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update({f"pdr_{mac}_d2": round(v, 3) for mac, v in results.items()})
    assert results["unslotted-csma"] > 0.7
    assert results["qma"] > 0.7
