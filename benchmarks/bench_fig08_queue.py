"""Fig. 8: average queue level in the hidden-node scenario."""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.experiments.hidden_node import run_hidden_node


def test_bench_fig08_queue_levels(benchmark):
    """At high load CSMA/CA queues converge towards the maximum of 8 packets
    while QMA keeps the queue level clearly lower (Fig. 8, δ >= 25)."""

    def run():
        qma = run_hidden_node(
            mac="qma", delta=50, packets_per_node=HIDDEN_NODE_PACKETS,
            warmup=HIDDEN_NODE_WARMUP, seed=2,
        )
        csma = run_hidden_node(
            mac="unslotted-csma", delta=50, packets_per_node=HIDDEN_NODE_PACKETS,
            warmup=HIDDEN_NODE_WARMUP, seed=2,
        )
        return qma, csma

    qma, csma = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["avg_queue_qma_d50"] = round(qma.average_queue_level, 2)
    benchmark.extra_info["avg_queue_csma_d50"] = round(csma.average_queue_level, 2)
    benchmark.extra_info["pdr_qma_d50"] = round(qma.pdr, 3)
    benchmark.extra_info["pdr_csma_d50"] = round(csma.pdr, 3)
    assert 0.0 <= qma.average_queue_level <= 8.0
    assert 0.0 <= csma.average_queue_level <= 8.0
    # On this reduced workload the traffic phase is too short to drive the
    # CSMA/CA queues into saturation (the paper's δ >= 25 regime needs the
    # sustained 1000-packet workload), so the robust shape assertion is the
    # delivery ratio: QMA loses fewer packets to queue drops and collisions.
    assert qma.pdr > csma.pdr
