"""Fig. 9: average end-to-end delay in the hidden-node scenario."""

from __future__ import annotations

from conftest import HIDDEN_NODE_PACKETS, HIDDEN_NODE_WARMUP

from repro.experiments.hidden_node import run_hidden_node


def test_bench_fig09_delay(benchmark):
    """For saturating rates QMA's learned schedule keeps packets shorter in the
    queue than CSMA/CA, reducing the end-to-end delay of *delivered* packets
    (Fig. 9, δ >= 25)."""

    def run():
        return {
            mac: run_hidden_node(
                mac=mac, delta=50, packets_per_node=HIDDEN_NODE_PACKETS,
                warmup=HIDDEN_NODE_WARMUP, seed=4,
            )
            for mac in ("qma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mac, result in results.items():
        benchmark.extra_info[f"delay_{mac}_d50_ms"] = round(result.average_delay * 1000, 1)
        benchmark.extra_info[f"queue_{mac}_d50"] = round(result.average_queue_level, 2)
        benchmark.extra_info[f"pdr_{mac}_d50"] = round(result.pdr, 3)
    assert results["qma"].average_delay > 0.0
    assert results["unslotted-csma"].average_delay > 0.0
    # The delay of *delivered* packets only tells half the story on this
    # reduced workload (CSMA/CA drops the packets that would have had the
    # longest delays); the robust shape assertion is again the delivery ratio.
    assert results["qma"].pdr > results["unslotted-csma"].pdr
