"""Fig. 10 / Fig. 11: cumulative Q-value per frame and exploration probability over time."""

from __future__ import annotations

from repro.analysis.convergence import convergence_time
from repro.analysis.stats import rolling_average
from repro.experiments.hidden_node import run_convergence


def test_bench_fig10_cumulative_q_value(benchmark):
    """The cumulative Q-value rises from its initial level and stabilises."""
    result = benchmark.pedantic(
        lambda: run_convergence(delta=25, duration=60.0, warmup=10.0, seed=1),
        rounds=1,
        iterations=1,
    )
    history = result.table("q_history")[0]
    values = [v for _, v in history]
    initial = values[0]
    assert max(values) > initial
    stable_at = convergence_time(history, window=20, tolerance=5.0)
    benchmark.extra_info["initial_cumulative_q"] = round(initial, 1)
    benchmark.extra_info["final_cumulative_q"] = round(values[-1], 1)
    benchmark.extra_info["stable_after_s"] = round(stable_at, 1) if stable_at else None


def test_bench_fig11_exploration_probability(benchmark):
    """ρ rises when the queue fills (higher δ explores earlier / more)."""

    def run():
        high = run_convergence(delta=100, duration=45.0, warmup=10.0, seed=2)
        low = run_convergence(delta=1, duration=45.0, warmup=10.0, seed=2)
        return high, low

    high, low = benchmark.pedantic(run, rounds=1, iterations=1)
    rho_high = [rho for _, rho in high.table("rho_history")[0]]
    rho_low = [rho for _, rho in low.table("rho_history")[0]]
    max_high = max(rolling_average(rho_high, 10)) if rho_high else 0.0
    max_low = max(rolling_average(rho_low, 10)) if rho_low else 0.0
    benchmark.extra_info["max_rolling_rho_delta100"] = round(max_high, 4)
    benchmark.extra_info["max_rolling_rho_delta1"] = round(max_low, 4)
    # Oversaturation (δ=100) triggers clearly more exploration than δ=1, and
    # ρ never exceeds the 0.3 cap of the Fig. 4 table.
    assert max_high > max_low
    assert max_high <= 0.3 + 1e-9
