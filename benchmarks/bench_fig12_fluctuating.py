"""Fig. 12: adaptability to fluctuating traffic and a late-joining node."""

from __future__ import annotations

from repro.experiments.hidden_node import run_fluctuating


def test_bench_fig12_fluctuating_traffic(benchmark):
    histories = benchmark.pedantic(
        lambda: run_fluctuating(
            duration=120.0,
            phase_duration=30.0,
            node_c_join_time=30.0,
            high_rate=100.0,
            low_rate=10.0,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    # Both nodes keep learning: their cumulative Q-values change over time and
    # react to the traffic-phase changes (node A) / late join (node C).
    for node_id, history in histories.items():
        values = [v for _, v in history]
        assert max(values) > min(values)
        benchmark.extra_info[f"node{node_id}_final_q"] = round(values[-1], 1)
    # Node C joins late but still finds a policy (its Q-value moves upward).
    node_c = [v for _, v in histories[2]]
    assert node_c[-1] > node_c[0]
