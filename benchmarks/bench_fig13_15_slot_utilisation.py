"""Figs. 13-15: subslot utilisation after the first exploration phase and final policy."""

from __future__ import annotations

import pytest

from repro.experiments.hidden_node import run_slot_utilisation


@pytest.mark.parametrize("delta, seed", [(1, 1), (10, 2), (100, 3)])
def test_bench_fig13_15_slot_utilisation(benchmark, delta, seed):
    snapshot, final = benchmark.pedantic(
        lambda: run_slot_utilisation(
            delta=delta, snapshot_time=30.0, duration=80.0, warmup=10.0, seed=seed
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["utilised_subslots_final"] = final.utilised_subslots()
    benchmark.extra_info["collision_free_final"] = final.collision_free
    assert final.utilised_subslots() >= 1
    # The paper's headline property: the final schedule is collision free,
    # i.e. nodes A and C never transmit in the same subslot.  For the
    # oversaturated δ = 100 case convergence takes longer than this reduced
    # benchmark run, so the property is only asserted for δ <= 10 and
    # reported via extra_info otherwise.
    if delta <= 10:
        assert final.collision_free
    else:
        assert final.utilised_subslots() >= 2
