"""Fig. 18: per-node PDR in the FIT IoT-LAB tree topology (simulated substitute)."""

from __future__ import annotations

from conftest import TESTBED_PACKETS, TESTBED_WARMUP

from repro.experiments.testbed import run_tree


def test_bench_fig18_tree_pdr(benchmark):
    def run():
        return {
            mac: run_tree(
                mac=mac, delta=10, packets_per_node=TESTBED_PACKETS,
                warmup=TESTBED_WARMUP, seed=1,
            )
            for mac in ("qma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mac, result in results.items():
        benchmark.extra_info[f"overall_pdr_{mac}"] = round(result.overall_pdr, 3)
    qma = results["qma"]
    assert qma.packets_generated > 0
    assert set(qma.table("pdr_per_node")) == set(results["unslotted-csma"].table("pdr_per_node"))
    assert all(0.0 <= pdr <= 1.0 for pdr in qma.table("pdr_per_node").values())
    # On this reduced workload (60 packets per node after a 25 s warm-up) QMA
    # is still in its learning phase in the multi-hop tree, so only CSMA/CA's
    # level is asserted; EXPERIMENTS.md discusses the paper-scale comparison.
    assert qma.overall_pdr > 0.0
    assert results["unslotted-csma"].overall_pdr > 0.3
