"""Fig. 19: per-node PDR in the dense FIT IoT-LAB star topology (simulated substitute)."""

from __future__ import annotations

from conftest import TESTBED_WARMUP

from repro.experiments.testbed import run_star


def test_bench_fig19_star_pdr(benchmark):
    def run():
        return {
            mac: run_star(
                mac=mac, delta=4, packets_per_node=40, warmup=TESTBED_WARMUP, seed=1
            )
            for mac in ("qma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mac, result in results.items():
        benchmark.extra_info[f"overall_pdr_{mac}"] = round(result.overall_pdr, 3)
        benchmark.extra_info[f"attempts_{mac}"] = result.transmission_attempts
    # In the dense star every node hears every other node, so CSMA's CCA
    # already avoids most collisions and both schemes are usable; the paper
    # reports QMA and CSMA/CA being much closer here than in the tree.
    for result in results.values():
        assert result.packets_generated > 0
        assert 0.0 <= result.overall_pdr <= 1.0
    assert results["unslotted-csma"].overall_pdr > 0.5
