"""Figs. 21-22: DSME secondary-traffic PDR and GTS-request success vs. network size.

The paper-scale experiment (up to 91 nodes, 300 s with a 200 s warm-up) is
available through ``run_scalability`` / the CLI; the benchmark uses the
7-node configuration with a reduced duration so that the harness stays fast.
"""

from __future__ import annotations

from conftest import SCALABILITY_DURATION, SCALABILITY_WARMUP

from repro.experiments.scalability import run_scalability


def test_bench_fig21_secondary_pdr(benchmark):
    def run():
        return {
            mac: run_scalability(
                mac=mac,
                rings=1,
                duration=SCALABILITY_DURATION,
                warmup=SCALABILITY_WARMUP,
                seed=1,
            )
            for mac in ("qma", "slotted-csma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mac, result in results.items():
        benchmark.extra_info[f"secondary_pdr_{mac}"] = round(result.secondary_pdr, 3)
        benchmark.extra_info[f"primary_pdr_{mac}"] = round(result.primary_pdr, 3)
    for result in results.values():
        assert result.num_nodes == 7
        assert result.details["secondary"].messages_sent > 0
        assert 0.0 <= result.secondary_pdr <= 1.0


def test_bench_fig22_gts_request_success(benchmark):
    def run():
        return {
            mac: run_scalability(
                mac=mac,
                rings=1,
                duration=SCALABILITY_DURATION,
                warmup=SCALABILITY_WARMUP,
                seed=2,
            )
            for mac in ("qma", "unslotted-csma")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for mac, result in results.items():
        benchmark.extra_info[f"gts_request_success_{mac}"] = round(result.gts_request_success, 3)
        benchmark.extra_info[f"allocation_rate_{mac}"] = round(result.allocation_rate, 2)
    for result in results.values():
        assert result.details["secondary"].requests_sent > 0
        assert 0.0 <= result.gts_request_success <= 1.0
