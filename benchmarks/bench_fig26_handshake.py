"""Fig. 26: expected number of handshake messages vs. CAP success probability."""

from __future__ import annotations

from repro.experiments.handshake import PAPER_PROBABILITIES, handshake_expected_messages


def test_bench_fig26_expected_messages(benchmark):
    curve = benchmark(handshake_expected_messages, PAPER_PROBABILITIES)
    benchmark.extra_info["expected_messages"] = {
        f"{p:.1f}": round(v, 2) for p, v in sorted(curve.items())
    }
    # Exact analytic anchors of the paper: 3 messages at p = 1, 3.33 at p = 0.9.
    assert curve[1.0] == 3.0
    assert abs(curve[0.9] - 3.33) < 0.01
    # The curve rises sharply as p decreases (the paper's motivation for a
    # reliable CAP channel access).
    values = [curve[p] for p in sorted(curve)]
    assert values == sorted(values, reverse=True)
    assert curve[0.1] > 10 * curve[1.0]
