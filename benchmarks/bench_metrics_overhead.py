"""Metric-collector overhead benchmark: full-collector vs. no-collector runs.

The collectors of :mod:`repro.metrics` observe a run through typed hooks
(delivery hooks at the sink, counter reads at finalize), so instrumenting a
simulation must be nearly free: the budget enforced here is **≤ 5 %**
wall-clock overhead for the full default collector set of the hidden-node
experiment versus the same run with no collectors at all.

Because collectors are pure observers, the two runs execute the identical
event sequence — the benchmark also asserts that the instrumented run's
headline scalars match a minimally instrumented run bit for bit.

Run under pytest-benchmark (``pytest benchmarks/bench_metrics_overhead.py``)
or directly (``python benchmarks/bench_metrics_overhead.py --quick``) for
the CI smoke variant on a reduced workload.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro.experiments.hidden_node import run_hidden_node

#: Overhead budget: full collectors may cost at most 5 % over no collectors.
OVERHEAD_BUDGET = 0.05

#: Quick-mode gate: the smoke workload is ~3x shorter, so timer granularity
#: and 1-core-runner scheduling noise make single-digit percentages
#: unreliable — the quick gate only guards against gross regressions.
QUICK_OVERHEAD_BUDGET = 0.15

#: Benchmark workload (hidden-node, 3 nodes, saturating load).
BENCH_PACKETS = 4000
SMOKE_PACKETS = 1200

DELTA = 25.0
WARMUP = 10.0
REPEATS = 3
TIMING_SAMPLES = 3


def _one_run(collectors, packets: int) -> float:
    """Median wall time of ``TIMING_SAMPLES`` back-to-back runs.

    A single sample is at the mercy of one scheduler preemption; the
    median of three discards a one-off stall in either direction.
    """
    samples = []
    for _ in range(TIMING_SAMPLES):
        start = time.perf_counter()
        run_hidden_node(
            mac="qma",
            delta=DELTA,
            packets_per_node=packets,
            warmup=WARMUP,
            seed=1,
            collectors=collectors,
        )
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_overhead(packets: int):
    """Return ``(bare_s, full_s, overhead_ratio)`` for the given workload.

    The two variants are interleaved and the minimum over ``REPEATS``
    rounds of median-of-``TIMING_SAMPLES`` timings is used per variant:
    scheduler/frequency noise only ever slows a run down, so min-of-N
    interleaved medians is the most drift-robust estimate of the true
    cost on shared CI machines.
    """
    bare = full = float("inf")
    for _ in range(REPEATS):
        bare = min(bare, _one_run((), packets))
        full = min(full, _one_run(None, packets))  # None = the default set
    overhead = (full - bare) / bare if bare > 0 else 0.0
    return bare, full, overhead


def check_scalars_identical(packets: int) -> None:
    """Observer property: collector selection never changes the metrics."""
    full = run_hidden_node(
        mac="qma", delta=DELTA, packets_per_node=packets, warmup=WARMUP, seed=1
    )
    minimal = run_hidden_node(
        mac="qma", delta=DELTA, packets_per_node=packets, warmup=WARMUP, seed=1,
        collectors=("pdr",),
    )
    assert minimal.scalars["pdr"] == full.scalars["pdr"]
    assert minimal.duration == full.duration


def test_bench_metrics_overhead(benchmark):
    """Full default collectors stay within the 5 % overhead budget."""

    def run():
        return measure_overhead(BENCH_PACKETS)

    bare, full, overhead = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "bare_wall_s": round(bare, 3),
            "full_collectors_wall_s": round(full, 3),
            "overhead_pct": round(overhead * 100, 2),
        }
    )
    check_scalars_identical(packets=200)
    assert overhead <= OVERHEAD_BUDGET, (
        f"collector overhead {overhead:.1%} exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )


def main(argv=None) -> int:
    """CI smoke entry point: measure the overhead once and enforce the budget."""
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    packets = SMOKE_PACKETS if quick else BENCH_PACKETS
    budget = QUICK_OVERHEAD_BUDGET if quick else OVERHEAD_BUDGET

    check_scalars_identical(packets=200)
    bare, full, overhead = measure_overhead(packets)
    print(
        f"metrics overhead ({packets} packets/node): bare {bare:.3f} s, "
        f"full collectors {full:.3f} s -> {overhead:+.1%} (budget {budget:.0%})"
    )
    if overhead > budget:
        print("FAIL: collector overhead exceeds the budget", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
