"""Remote dispatch overhead: two-localhost-agent sweep vs. local shards.

The remote backend ships the same shard job documents that the local
:class:`~repro.service.backends.ShardBackend` hands to subprocess
workers, so the only *extra* cost of going cross-host is the transport:
the agent round-trip, journal byte streaming over TCP, heartbeats and
the digest-verified stream merge.  On a loopback network that overhead
must stay small, or the remote path would be mis-measuring its own
transport rather than the fleet it is meant to scale across.

Two checks on the standard orchestration-dominated short sweep:

* **identity** — the remote-merged journal must be bit-identical
  (per-record dict equality over every index) to the local shard run;
  this is the acceptance property the chaos matrix leans on, measured
  here on the happy path at benchmark scale;
* **overhead** — remote wall-clock at most ``OVERHEAD_CEILING`` x the
  local shard wall-clock (paired rounds, median ratio; the quick CI
  workload gets a looser ceiling because fixed costs — agent connect,
  stream header — weigh more on a 5x shorter sweep).

Run directly (``python benchmarks/bench_remote_dispatch.py --quick``).
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

from bench_sweep_orchestration import short_sweep
from repro.service.agent import AgentServer, CampaignAgent
from repro.service.backends import ShardBackend
from repro.service.journal import CheckpointJournal
from repro.service.remote import RemoteBackend

#: Two agents x two shard slots each — matches the local shard count.
AGENTS = 2
CAP = 2
SHARDS = AGENTS * CAP

#: Full workload: the standard 500-run short sweep.
BENCH_RUNS = 500
#: Reduced workload for the CI smoke run.
SMOKE_RUNS = 100

#: Loopback transport may cost at most this factor of local shard
#: dispatch.  Generous on purpose: the gate is for pathological
#: regressions (per-chunk reconnects, heartbeat storms, lost streaming
#: overlap), not for loopback jitter.
OVERHEAD_CEILING = 2.0
SMOKE_OVERHEAD_CEILING = 3.0

#: Paired measurement rounds; the median ratio is reported.
ROUNDS = 3


def _run(backend, sweep, tmp: str, name: str) -> tuple:
    """(wall_s, {index: record_dict}) for one backend over ``sweep``."""
    journal = CheckpointJournal.create(os.path.join(tmp, name), sweep)
    try:
        start = time.perf_counter()
        backend.run(sweep, list(range(sweep.size)), journal)
        wall = time.perf_counter() - start
        merged = {i: record.to_dict() for i, record in journal.iter_completed()}
    finally:
        journal.close()
        backend.close()
    if len(merged) != sweep.size:
        raise RuntimeError(f"{name}: merged {len(merged)} of {sweep.size} runs")
    return wall, merged


def measure_remote_overhead(runs: int, rounds: int = ROUNDS) -> dict:
    """Median paired wall-clock of local shards vs. two remote agents."""
    # Seeds far away from the other orchestration benchmarks so warm
    # caches never cross-pollinate the comparison.
    sweep = short_sweep(40_000, runs)
    servers = []
    hosts = []
    scratch = tempfile.mkdtemp(prefix="bench-remote-agents-")
    for i in range(AGENTS):
        agent = CampaignAgent(
            workdir=os.path.join(scratch, f"agent{i}"), name=f"bench{i}"
        )
        server = AgentServer(agent)
        host, port = server.start()
        servers.append(server)
        hosts.append(f"{host}:{port}*{CAP}")
    try:
        pairs = []
        reference = None
        for _ in range(rounds):
            with tempfile.TemporaryDirectory() as tmp:
                shard_s, local = _run(
                    ShardBackend(shards=SHARDS), sweep, tmp, "shard.jsonl"
                )
                remote_s, remote = _run(
                    RemoteBackend(hosts), sweep, tmp, "remote.jsonl"
                )
            if remote != local:
                raise RuntimeError(
                    "remote-merged records differ from the local shard run"
                )
            reference = local
            pairs.append((shard_s, remote_s))
    finally:
        for server in servers:
            server.stop()
        shutil.rmtree(scratch, ignore_errors=True)
    assert reference is not None
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    shard_s, remote_s = pairs[len(pairs) // 2]
    return {
        "runs": runs,
        "shard_s": shard_s,
        "remote_s": remote_s,
        "overhead": remote_s / shard_s,
    }


def check_ceiling(result: dict, quick: bool) -> None:
    """Raise if loopback remote dispatch costs more than the ceiling."""
    ceiling = SMOKE_OVERHEAD_CEILING if quick else OVERHEAD_CEILING
    if result["overhead"] > ceiling:
        raise RuntimeError(
            f"remote dispatch overhead {result['overhead']:.3f}x exceeds the "
            f"{ceiling}x ceiling ({result['shard_s']:.3f}s local shards vs "
            f"{result['remote_s']:.3f}s remote over {result['runs']} runs)"
        )


def main(argv: list) -> int:
    quick = "--quick" in argv
    runs = SMOKE_RUNS if quick else BENCH_RUNS
    result = measure_remote_overhead(runs)
    print(
        f"remote dispatch over {result['runs']} runs "
        f"({AGENTS} agents x {CAP} slots): local shards "
        f"{result['shard_s']:.3f}s, remote {result['remote_s']:.3f}s "
        f"-> {result['overhead']:.3f}x (records identical)"
    )
    check_ceiling(result, quick)
    print(
        f"OK: within the "
        f"{SMOKE_OVERHEAD_CEILING if quick else OVERHEAD_CEILING}x ceiling"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
