"""Seed-batch executor benchmark: lockstep lanes vs. per-seed serial runs.

The PR 7 batch engine advances N same-configuration seeds in one process
over one shared frozen artifact bundle, vectorising the per-tick QMA work
(clock advance, boundary evaluation, exploration draws, policy lookups)
across the ``(lane, node)`` plane.  This benchmark measures aggregate
simulation throughput — total ``events_executed`` across all lanes over
wall-clock — for per-seed serial execution and for batch sizes 1/8/32 on
the star-testbed QMA workload under fading (the propagation model with the
most per-boundary randomness), and reports ``batch_speedup`` = batched
events/s at the largest batch size over serial events/s.

Because batched execution is bit-identical to serial by construction, the
measure doubles as a determinism guard: the headline scalars of the first
seeds must match between every variant, or the benchmark aborts.

Run directly (``python benchmarks/bench_seed_batch.py [--quick]``) or let
``run_all.py`` fold the numbers into the tracked snapshot.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.testbed import prepare_star
from repro.scenario import ARTIFACT_CACHE
from repro.sim.batch import SeedBatchExecutor

#: Star-testbed QMA workload under fading; ``max_duration`` bounds the
#: simulated horizon so wall-clock scales with the seed count alone.
WORKLOAD = {"packets_per_node": 20, "warmup": 0.5, "delta": 50.0}

BENCH_SEEDS = 32
SMOKE_SEEDS = 8
BENCH_SIZES = (1, 8, 32)
SMOKE_SIZES = (1, 8)
BENCH_DURATION = 8.0
SMOKE_DURATION = 3.0

#: The PR 7 acceptance floor: batched aggregate events/s at the largest
#: full-mode batch size must be at least 3x serial.  The quick workload
#: runs shorter lanes at batch 8, where fixed per-boundary costs amortise
#: less — its floor only guards against the speedup collapsing entirely.
BATCH_SPEEDUP_FLOOR = 3.0
SMOKE_SPEEDUP_FLOOR = 1.2

#: Interleaved serial/batched rounds for the gated speedup ratio: pairing
#: cancels machine-load drift and the median resists outlier rounds (the
#: same discipline as the engine fast-vs-generic ratio in run_all.py).
ROUNDS = 3


def _lanes(num_seeds: int, duration: float):
    """Prepare one lane per seed; the artifact cache makes them share one
    frozen bundle, exactly as the campaign batch tier does."""
    with ARTIFACT_CACHE.override(enabled=True):
        return [
            prepare_star(
                mac="qma",
                seed=seed,
                propagation="fading",
                max_duration=duration,
                **WORKLOAD,
            )
            for seed in range(num_seeds)
        ]


def _run_variant(num_seeds: int, duration: float, batch_size: int, serial: bool):
    """Time one full pass over all seeds; return ``(events_per_s, reports)``."""
    lanes = _lanes(num_seeds, duration)
    executor = SeedBatchExecutor(force_serial=serial)
    start = time.perf_counter()
    reports = []
    for lo in range(0, len(lanes), batch_size):
        reports.extend(executor.run(lanes[lo : lo + batch_size]))
    wall = time.perf_counter() - start
    events = sum(lane.sim.events_executed for lane in lanes)
    return events / wall, reports


def _guard_identical(reports, reference, size: int) -> None:
    for seed, report in enumerate(reports):
        if report.scalars != reference[seed]:
            raise RuntimeError(f"batch={size} diverged from serial on seed {seed}")


def measure_batch_throughput(num_seeds: int, sizes, duration: float) -> dict:
    """Serial vs. batched aggregate events/s, with a bit-identicality guard.

    Absolute rates report the best round (noise only slows a run down);
    the headline ``batch_speedup`` is the median of ``ROUNDS`` interleaved
    serial/batched ratio measurements at the largest batch size.
    """
    largest = max(sizes)
    reference = None
    serial_best = largest_best = 0.0
    ratios = []
    for _ in range(ROUNDS):
        serial_rate, serial_reports = _run_variant(
            num_seeds, duration, batch_size=1, serial=True
        )
        if reference is None:
            reference = [report.scalars for report in serial_reports]
        rate, reports = _run_variant(num_seeds, duration, largest, serial=False)
        _guard_identical(reports, reference, largest)
        serial_best = max(serial_best, serial_rate)
        largest_best = max(largest_best, rate)
        ratios.append(rate / serial_rate)
    result = {
        "seeds": num_seeds,
        "serial_events_per_s": serial_best,
        f"batch{largest}_events_per_s": largest_best,
    }
    for size in sizes:
        if size == largest:
            continue
        rate, reports = _run_variant(num_seeds, duration, size, serial=False)
        _guard_identical(reports, reference, size)
        result[f"batch{size}_events_per_s"] = rate
    ratios.sort()
    result["batch_speedup"] = ratios[len(ratios) // 2]
    return result


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    num_seeds = SMOKE_SEEDS if quick else BENCH_SEEDS
    sizes = SMOKE_SIZES if quick else BENCH_SIZES
    duration = SMOKE_DURATION if quick else BENCH_DURATION
    floor = SMOKE_SPEEDUP_FLOOR if quick else BATCH_SPEEDUP_FLOOR

    result = measure_batch_throughput(num_seeds, sizes, duration)
    print(f"seed-batch throughput ({num_seeds} seeds, {duration:g}s horizon):")
    print(f"  serial     {result['serial_events_per_s']:>12,.0f} events/s")
    for size in sizes:
        print(f"  batch={size:<3}  {result[f'batch{size}_events_per_s']:>12,.0f} events/s")
    print(f"  speedup at batch={max(sizes)}: {result['batch_speedup']:.2f}x (floor {floor}x)")
    if result["batch_speedup"] < floor:
        print("FAIL: batch speedup below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
