"""SINR interference PHY benchmark: throughput vs. collision, plus physics.

Two claims are tracked for the PR 6 interference overhaul:

* **Throughput**: the SINR model on the static link-table fast path —
  per-receiver interference sums, capture re-evaluation at every
  transmission start, sensed-only carrier-sense rows — must stay within
  **25 %** of the legacy collision model's events/s on the same topology,
  traffic and seed (``SINR_THROUGHPUT_FLOOR = 0.75``).
* **Physics**: the ``sinr-hidden-node`` scenario reproduces the
  asymmetric-link regime — the hidden node *receives* frames (overheard
  relay traffic decodes) and *senses* undecodable ones, yet its own
  SINR-starved uplink never delivers a single packet to the sink.

Run under pytest-benchmark (``pytest benchmarks/bench_sinr_hidden_node.py``)
or directly (``python benchmarks/bench_sinr_hidden_node.py --quick``).
"""

from __future__ import annotations

import sys
import time

from repro.experiments.sinr_hidden_node import run_sinr_hidden_node
from repro.scenario import ScenarioBuilder, ScenarioConfig
from repro.topology.sinr_hidden_node import (
    CARRIER_SENSE_RANGE,
    COMMUNICATION_RANGE,
    HIDDEN,
    NEAR,
    RELAY,
)

#: SINR events/s may be at most 25 % below collision events/s.
SINR_THROUGHPUT_FLOOR = 0.75

#: Saturating workload on the 4-node line (sources: NEAR, RELAY, HIDDEN).
BENCH_PACKETS = 1500
SMOKE_PACKETS = 400

DELTA = 25.0
WARMUP = 5.0
REPEATS = 3

_SOURCES = (NEAR, RELAY, HIDDEN)


def _one_run(interference: str, packets: int, seed: int = 1):
    """Run one scenario and return ``(events_per_s, events_executed)``.

    Both interference models run the *same* topology, propagation
    parameters, traffic and seed — only the channel's loss model differs,
    so the events/s ratio isolates the SINR bookkeeping cost.
    """
    config = ScenarioConfig(
        topology="sinr-hidden-node",
        mac="unslotted-csma",
        propagation="unit-disk",
        propagation_params={
            "communication_range": COMMUNICATION_RANGE,
            "carrier_sense_range": CARRIER_SENSE_RANGE,
        },
        interference=interference,
        seed=seed,
    )
    built = ScenarioBuilder(config).build()
    for node_id in _SOURCES:
        built.poisson_source(
            node_id,
            rate=DELTA,
            start_time=WARMUP,
            max_packets=packets,
            rng_name=f"data-{node_id}",
            start_at=WARMUP,
        )
    built.network.start()
    horizon = WARMUP + packets / DELTA + 5.0
    start = time.perf_counter()
    built.sim.run_until(horizon)
    wall = time.perf_counter() - start
    executed = built.sim.events_executed
    return (executed / wall if wall > 0 else 0.0), executed


def measure_throughput(packets: int) -> dict:
    """Interleaved best-of-N events/s for both models and their ratio."""
    collision = sinr = 0.0
    collision_events = sinr_events = 0
    for _ in range(REPEATS):
        rate, events = _one_run("collision", packets)
        if rate > collision:
            collision, collision_events = rate, events
        rate, events = _one_run("sinr", packets)
        if rate > sinr:
            sinr, sinr_events = rate, events
    return {
        "collision_events_per_s": collision,
        "sinr_events_per_s": sinr,
        "sinr_throughput_ratio": sinr / collision if collision > 0 else 0.0,
        "collision_events": collision_events,
        "sinr_events": sinr_events,
    }


def measure_physics(packets: int = 60) -> dict:
    """The asymmetric-delivery scalars of a quick SINR hidden-node run.

    Raises if the regime is broken — the physics claim is deterministic,
    not a noisy perf number, so it is enforced wherever it is measured.
    """
    report = run_sinr_hidden_node(
        mac="unslotted-csma", delta=DELTA, packets_per_node=packets,
        warmup=WARMUP, seed=0,
    )
    scalars = report.scalars
    if scalars["hidden_delivered"] != 0.0:
        raise RuntimeError(
            f"SINR physics broken: hidden node delivered "
            f"{scalars['hidden_delivered']} packets (expected 0)"
        )
    if scalars["hidden_frames_received"] <= 0:
        raise RuntimeError("SINR physics broken: hidden node decoded nothing")
    if scalars["hidden_cca_sensed_only"] <= 0:
        raise RuntimeError("SINR physics broken: no sensed-only CCA at hidden node")
    return {
        "hidden_delivered": scalars["hidden_delivered"],
        "hidden_frames_received": scalars["hidden_frames_received"],
        "hidden_cca_sensed_only": scalars["hidden_cca_sensed_only"],
        "near_pdr": scalars["near_pdr"],
        "delivery_asymmetry": scalars["delivery_asymmetry"],
    }


def test_bench_sinr_hidden_node(benchmark):
    """SINR stays within 25 % of collision throughput; physics holds."""

    def run():
        return measure_throughput(BENCH_PACKETS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    physics = measure_physics()
    benchmark.extra_info.update(
        {
            "collision_events_per_s": round(result["collision_events_per_s"]),
            "sinr_events_per_s": round(result["sinr_events_per_s"]),
            "sinr_throughput_ratio": round(result["sinr_throughput_ratio"], 3),
            "delivery_asymmetry": round(physics["delivery_asymmetry"], 3),
        }
    )
    assert result["sinr_throughput_ratio"] >= SINR_THROUGHPUT_FLOOR, (
        f"SINR throughput ratio {result['sinr_throughput_ratio']:.2f} below "
        f"the {SINR_THROUGHPUT_FLOOR} floor"
    )


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    packets = SMOKE_PACKETS if quick else BENCH_PACKETS

    physics = measure_physics()
    print(
        "sinr physics: hidden_delivered=%g hidden_frames_received=%g "
        "hidden_cca_sensed_only=%g near_pdr=%.3f delivery_asymmetry=%.3f"
        % (
            physics["hidden_delivered"],
            physics["hidden_frames_received"],
            physics["hidden_cca_sensed_only"],
            physics["near_pdr"],
            physics["delivery_asymmetry"],
        )
    )
    result = measure_throughput(packets)
    print(
        f"sinr throughput ({packets} packets/node): collision "
        f"{result['collision_events_per_s']:,.0f} events/s, sinr "
        f"{result['sinr_events_per_s']:,.0f} events/s -> ratio "
        f"{result['sinr_throughput_ratio']:.3f} (floor {SINR_THROUGHPUT_FLOOR})"
    )
    if result["sinr_throughput_ratio"] < SINR_THROUGHPUT_FLOOR:
        print("FAIL: SINR throughput below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
