"""Campaign orchestration benchmark: warm worker pool vs. PR 3 dispatch.

Measures the wall-clock of a 500-run short-duration hidden-node sweep at
``--jobs 4`` under two dispatch regimes:

* **legacy** — the PR 3 behaviour, replicated inline: a fresh
  ``multiprocessing.Pool`` per ``run()`` call, every scenario shipped as a
  full pickle, ``chunksize=1``;
* **warm** — the current :class:`~repro.campaign.runner.CampaignRunner`:
  one persistent template-initialised pool reused across calls, per-run
  delta pickles, adaptive chunk size.

Two shapes are timed: the whole sweep in a single call, and the same 500
runs as 25 batches of 20 through one runner — the shape of
``repeat_scalar``-style adaptive campaigns (run a batch, look at the CI,
run another), where the legacy dispatch pays a pool fork per batch.

The runs are deliberately tiny (2 packets, 0.2 s warm-up) so that
orchestration, not simulation, dominates — exactly the regime the warm
pool targets.

Run under pytest-benchmark (``pytest benchmarks/bench_sweep_orchestration.py``)
or directly (``python benchmarks/bench_sweep_orchestration.py --quick``).
"""

from __future__ import annotations

import multiprocessing
import sys
import time

from repro.campaign.runner import CampaignRunner, execute_scenario
from repro.campaign.spec import Sweep

JOBS = 4

#: Full workload: 500 runs, also split as 25 batches of 20.
BENCH_RUNS = 500
BENCH_BATCHES = 25

#: Reduced workload for the CI smoke run.
SMOKE_RUNS = 100
SMOKE_BATCHES = 10


def short_sweep(base_seed: int, runs: int) -> Sweep:
    """A short-duration hidden-node sweep of ``runs`` seeds (~0.5 ms/run)."""
    return Sweep(
        experiment="hidden-node",
        macs=("unslotted-csma",),
        grid={"delta": [100.0]},
        fixed={
            "packets_per_node": 2,
            "warmup": 0.2,
            "drain_time": 0.1,
            "management_period": 0.5,
        },
        seeds=list(range(base_seed, base_seed + runs)),
    )


def _legacy_run(sweep: Sweep, jobs: int = JOBS) -> list:
    """PR 3 dispatch, replicated: fresh pool, full pickles, chunksize=1."""
    scenarios = sweep.scenarios()
    with multiprocessing.Pool(processes=min(jobs, len(scenarios))) as pool:
        return list(pool.imap(execute_scenario, scenarios, chunksize=1))


def measure_single(runs: int) -> dict:
    """One ``runs``-scenario sweep in a single call, legacy vs. warm."""
    sweep = short_sweep(0, runs)
    start = time.perf_counter()
    legacy_records = _legacy_run(sweep)
    legacy_s = time.perf_counter() - start

    with CampaignRunner(jobs=JOBS) as runner:
        start = time.perf_counter()
        warm_records = runner.run(sweep).records
        warm_s = time.perf_counter() - start

    assert warm_records == legacy_records, "warm pool changed the records"
    return {
        "runs": runs,
        "legacy_s": legacy_s,
        "warm_s": warm_s,
        "speedup": legacy_s / warm_s if warm_s > 0 else float("inf"),
    }


def measure_batched(batches: int, per_batch: int) -> dict:
    """The same total runs as ``batches`` sequential calls, legacy vs. warm."""
    start = time.perf_counter()
    for index in range(batches):
        _legacy_run(short_sweep(index * per_batch, per_batch))
    legacy_s = time.perf_counter() - start

    with CampaignRunner(jobs=JOBS) as runner:
        start = time.perf_counter()
        for index in range(batches):
            runner.run(short_sweep(index * per_batch, per_batch))
        warm_s = time.perf_counter() - start

    return {
        "runs": batches * per_batch,
        "batches": batches,
        "legacy_s": legacy_s,
        "warm_s": warm_s,
        "speedup": legacy_s / warm_s if warm_s > 0 else float("inf"),
    }


def test_bench_sweep_orchestration(benchmark):
    """Warm pool must beat the legacy dispatch on the batched shape."""

    def run():
        return measure_batched(SMOKE_BATCHES, SMOKE_RUNS // SMOKE_BATCHES)

    batched = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "runs": batched["runs"],
            "legacy_s": round(batched["legacy_s"], 3),
            "warm_s": round(batched["warm_s"], 3),
            "speedup": round(batched["speedup"], 2),
        }
    )
    assert batched["speedup"] > 1.0


def main(argv=None) -> int:
    quick = "--quick" in (argv if argv is not None else sys.argv[1:])
    runs = SMOKE_RUNS if quick else BENCH_RUNS
    batches = SMOKE_BATCHES if quick else BENCH_BATCHES

    single = measure_single(runs)
    batched = measure_batched(batches, runs // batches)
    print(
        f"single call ({runs} runs, jobs={JOBS}): "
        f"legacy {single['legacy_s']:.3f} s, warm {single['warm_s']:.3f} s "
        f"-> {single['speedup']:.2f}x"
    )
    print(
        f"batched ({batches} x {runs // batches} runs, jobs={JOBS}): "
        f"legacy {batched['legacy_s']:.3f} s, warm {batched['warm_s']:.3f} s "
        f"-> {batched['speedup']:.2f}x"
    )
    if batched["speedup"] <= 1.0:
        print("FAIL: warm pool is not faster than legacy dispatch", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
