"""Table 4: local and global rewards for all joint action combinations."""

from __future__ import annotations

from repro.core.actions import QAction
from repro.core.rewards import global_reward, reward_table

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND

PAPER_ROWS = {
    (B, S, B): 8,
    (B, C, B): 7,
    (C, S, C): 6,
    (B, B, B): 0,
    (C, B, C): -4,
    (S, B, S): -6,
    (C, C, C): -6,
    (S, C, S): -5,
    (S, S, S): -9,
}


def test_bench_table4(benchmark):
    table = benchmark(reward_table, 3)
    assert len(table) == 27
    for actions, expected_global in PAPER_ROWS.items():
        assert global_reward(actions) == expected_global
    benchmark.extra_info["rows"] = len(table)
    benchmark.extra_info["paper_rows_matched"] = len(PAPER_ROWS)
