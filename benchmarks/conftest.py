"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data behind one of the paper's tables or
figures on a *reduced* workload (fewer packets, fewer repetitions) so that
the full harness completes in minutes; use the ``qma-repro`` CLI or the
experiment runners directly for paper-scale workloads.  The reproduced
numbers are attached to each benchmark via ``benchmark.extra_info`` so that
``pytest benchmarks/ --benchmark-only`` prints a self-contained record.
"""

from __future__ import annotations

#: Reduced workload shared by the hidden-node benchmarks.
HIDDEN_NODE_PACKETS = 120
HIDDEN_NODE_WARMUP = 20.0

#: Reduced workload shared by the testbed benchmarks.
TESTBED_PACKETS = 60
TESTBED_WARMUP = 25.0

#: Reduced workload shared by the DSME scalability benchmarks.
SCALABILITY_DURATION = 90.0
SCALABILITY_WARMUP = 45.0
