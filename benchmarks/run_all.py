"""Run the perf suite and emit a machine-readable snapshot.

Collects the numbers the repository tracks across releases — engine
micro-benchmark events/s (deep-heap and steady-state, generic and fast
path), campaign sweep throughput (warm worker pool vs. the PR 3 dispatch),
the construction-cache speedup on a build-dominated batched sweep (cache
off vs. on, plus the construction share of a short run), metric-collector
overhead, checkpoint-journaling overhead and the 43-node scalability
wall-clock — into one JSON document::

    PYTHONPATH=src python benchmarks/run_all.py --json BENCH_<rev>.json

and optionally gates against a committed baseline snapshot::

    PYTHONPATH=src python benchmarks/run_all.py --quick \\
        --baseline BENCH_pr4.json --max-regression 0.10

The committed baseline is produced with ``--baseline-out``, which runs the
suite in *both* the full and the ``--quick`` workload and stores each
metric set — the gate then always compares like workload with like
(``--quick`` runs against the baseline's ``quick_metrics``, full runs
against ``metrics``) and refuses to gate when the baseline lacks a
matching workload, instead of producing apples-to-oranges failures.

The default gate compares only *ratio* metrics (fast-path speedup, warm
pool speedup, collector overhead).  Even ratios move with the interpreter
(bytecode specialisation differs per minor version) and with the
worker-to-core ratio, so they are gated only when the baseline was
recorded on the same Python major.minor and CPU count; on other
environments the gate falls back to the drift-tolerant percentage-point
metrics (collector overhead).  ``--strict-absolute`` gates every metric
unconditionally, which is only sound when baseline and current run on the
same machine.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys

import bench_build_cache as cache_bench
import bench_checkpoint_overhead as checkpoint_bench
import bench_engine_hotpath as engine_bench
import bench_metrics_overhead as metrics_bench
import bench_seed_batch as batch_bench
import bench_sinr_hidden_node as sinr_bench
import bench_sweep_orchestration as sweep_bench

#: Metric -> (kind, direction, tolerance factor).  ``ratio`` metrics are
#: machine-comparable and gated by default; ``absolute`` metrics only
#: under --strict-absolute; ``pct_points`` metrics are gated by absolute
#: percentage-point drift.  The tolerance factor scales --max-regression
#: per metric by its observed run-to-run noise: pool speedups are
#: fork/IPC-timing bound (~±10 % on a loaded machine, factor 2.5) and the
#: engine fast/generic ratio swings ~±6 % (factor 2.0) — wide enough to
#: ignore load noise, tight enough to catch the optimisation regressing
#: toward parity (speedup -> ~1).
METRIC_SPECS = {
    "engine_micro_deep_events_per_s": ("absolute", "higher", 1.0),
    "engine_steady_generic_events_per_s": ("absolute", "higher", 1.0),
    "engine_steady_fast_events_per_s": ("absolute", "higher", 1.0),
    "engine_fast_speedup": ("ratio", "higher", 2.0),
    "sweep_single_legacy_s": ("absolute", "lower", 1.0),
    "sweep_single_warm_s": ("absolute", "lower", 1.0),
    "sweep_single_speedup": ("ratio", "higher", 2.5),
    "sweep_batched_legacy_s": ("absolute", "lower", 1.0),
    "sweep_batched_warm_s": ("absolute", "lower", 1.0),
    "sweep_batched_speedup": ("ratio", "higher", 2.5),
    "sweep_cached_off_s": ("absolute", "lower", 1.0),
    "sweep_cached_on_s": ("absolute", "lower", 1.0),
    "sweep_cached_speedup": ("ratio", "higher", 2.5),
    "construction_overhead_pct": ("absolute", "lower", 1.0),
    "collector_overhead_pct": ("pct_points", "lower", 1.0),
    "seed_batch_serial_events_per_s": ("absolute", "higher", 1.0),
    "seed_batch_events_per_s": ("absolute", "higher", 1.0),
    "seed_batch_speedup": ("ratio", "higher", 2.5),
    "scalability_wall_s": ("absolute", "lower", 1.0),
    "checkpoint_plain_s": ("absolute", "lower", 1.0),
    "checkpoint_journal_s": ("absolute", "lower", 1.0),
    "checkpoint_overhead": ("ratio", "lower", 2.5),
    "sinr_events_per_s": ("absolute", "higher", 1.0),
    "sinr_collision_events_per_s": ("absolute", "higher", 1.0),
    "sinr_throughput_ratio": ("ratio", "higher", 2.0),
}

#: Collector overhead may drift this many percentage points before the
#: gate fails (relative comparison is meaningless near zero).
PCT_POINT_TOLERANCE = 3.0


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except Exception:
        return "unknown"


def collect(quick: bool) -> dict:
    """Run every benchmark once and return the snapshot document."""
    metrics = {}

    # Absolute micros report the best of several rounds (scheduler noise
    # only ever slows a run down); the gated fast-vs-generic ratio is the
    # *median of interleaved paired rounds* — pairing cancels machine-load
    # drift and the median resists the occasional outlier round, which a
    # max/max ratio would amplify.
    deep_n = 50_000 if quick else 200_000
    # The steady-state micro keeps its full size even in quick mode: it is
    # cheap (~0.5 s/round) and the gated fast-vs-generic ratio needs the
    # larger sample to stay within the regression tolerance run-to-run.
    steady_n = 300_000
    metrics["engine_micro_deep_events_per_s"] = round(
        max(engine_bench.engine_micro_deep(deep_n) for _ in range(3))
    )
    generic_best = fast_best = 0.0
    ratios = []
    for _ in range(5):
        generic = engine_bench.engine_micro_steady(steady_n, fast=False)
        fast = engine_bench.engine_micro_steady(steady_n, fast=True)
        generic_best = max(generic_best, generic)
        fast_best = max(fast_best, fast)
        ratios.append(fast / generic)
    ratios.sort()
    metrics["engine_steady_generic_events_per_s"] = round(generic_best)
    metrics["engine_steady_fast_events_per_s"] = round(fast_best)
    metrics["engine_fast_speedup"] = round(ratios[len(ratios) // 2], 3)

    runs = sweep_bench.SMOKE_RUNS if quick else sweep_bench.BENCH_RUNS
    batches = sweep_bench.SMOKE_BATCHES if quick else sweep_bench.BENCH_BATCHES
    singles = [sweep_bench.measure_single(runs) for _ in range(3)]
    batcheds = [sweep_bench.measure_batched(batches, runs // batches) for _ in range(3)]
    single = sorted(singles, key=lambda m: m["speedup"])[1]  # median round
    batched = sorted(batcheds, key=lambda m: m["speedup"])[1]
    metrics["sweep_runs"] = runs
    metrics["sweep_single_legacy_s"] = round(single["legacy_s"], 3)
    metrics["sweep_single_warm_s"] = round(single["warm_s"], 3)
    metrics["sweep_single_speedup"] = round(single["speedup"], 3)
    metrics["sweep_batched_legacy_s"] = round(batched["legacy_s"], 3)
    metrics["sweep_batched_warm_s"] = round(batched["warm_s"], 3)
    metrics["sweep_batched_speedup"] = round(batched["speedup"], 3)

    # Build-once/run-many: batched construction-heavy short sweep, cache
    # off vs. on (median of three rounds), plus the in-process share of a
    # run spent constructing — the cache's theoretical upper bound.
    cache_runs = cache_bench.SMOKE_RUNS if quick else cache_bench.BENCH_RUNS
    cache_batches = cache_bench.SMOKE_BATCHES if quick else cache_bench.BENCH_BATCHES
    cached_rounds = [
        cache_bench.measure_cached_sweep(cache_batches, cache_runs // cache_batches)
        for _ in range(3)
    ]
    cached = sorted(cached_rounds, key=lambda m: m["speedup"])[1]
    metrics["sweep_cached_runs"] = cache_runs
    metrics["sweep_cached_off_s"] = round(cached["off_s"], 3)
    metrics["sweep_cached_on_s"] = round(cached["on_s"], 3)
    metrics["sweep_cached_speedup"] = round(cached["speedup"], 3)
    overhead_split = cache_bench.measure_construction_overhead(
        rounds=10 if quick else 30
    )
    metrics["construction_overhead_pct"] = round(overhead_split["overhead_pct"], 1)

    packets = metrics_bench.SMOKE_PACKETS if quick else metrics_bench.BENCH_PACKETS
    _, _, overhead = metrics_bench.measure_overhead(packets)
    metrics["collector_overhead_pct"] = round(overhead * 100, 2)

    # Seed-batch engine: aggregate events/s over all seeds, per-seed serial
    # vs. lockstep batches; the measure itself raises if any batched lane's
    # scalars diverge from the serial reference.  The full-mode speedup at
    # batch=32 is the PR 7 acceptance metric (floor 3x).
    batch_seeds_n = batch_bench.SMOKE_SEEDS if quick else batch_bench.BENCH_SEEDS
    batch_sizes = batch_bench.SMOKE_SIZES if quick else batch_bench.BENCH_SIZES
    batch_duration = batch_bench.SMOKE_DURATION if quick else batch_bench.BENCH_DURATION
    batch_floor = batch_bench.SMOKE_SPEEDUP_FLOOR if quick else batch_bench.BATCH_SPEEDUP_FLOOR
    batch = batch_bench.measure_batch_throughput(batch_seeds_n, batch_sizes, batch_duration)
    if batch["batch_speedup"] < batch_floor:
        raise RuntimeError(
            f"seed-batch speedup {batch['batch_speedup']:.2f}x below the "
            f"{batch_floor}x floor"
        )
    metrics["seed_batch_seeds"] = batch_seeds_n
    metrics["seed_batch_size"] = max(batch_sizes)
    metrics["seed_batch_serial_events_per_s"] = round(batch["serial_events_per_s"])
    metrics["seed_batch_events_per_s"] = round(
        batch[f"batch{max(batch_sizes)}_events_per_s"]
    )
    metrics["seed_batch_speedup"] = round(batch["batch_speedup"], 3)

    # Checkpoint journaling overhead: the batched short sweep with and
    # without a journal, paired rounds, median ratio.  check_ceiling is
    # the PR 8 acceptance gate (≤5 % full, ≤15 % on the noisier smoke
    # workload) and raises instead of recording a bad number.
    ckpt_runs = checkpoint_bench.SMOKE_RUNS if quick else checkpoint_bench.BENCH_RUNS
    ckpt = checkpoint_bench.measure_checkpoint_overhead(ckpt_runs)
    checkpoint_bench.check_ceiling(ckpt, quick)
    metrics["checkpoint_runs"] = ckpt_runs
    metrics["checkpoint_plain_s"] = round(ckpt["plain_s"], 3)
    metrics["checkpoint_journal_s"] = round(ckpt["journal_s"], 3)
    metrics["checkpoint_overhead"] = round(ckpt["overhead"], 3)

    # SINR interference PHY: events/s on the static-table fast path vs.
    # the collision model on the same topology/traffic/seed, plus the
    # deterministic physics scalars of the hidden-node regime (the
    # measure itself raises if the hidden node ever delivers).
    sinr_packets = sinr_bench.SMOKE_PACKETS if quick else sinr_bench.BENCH_PACKETS
    sinr = sinr_bench.measure_throughput(sinr_packets)
    physics = sinr_bench.measure_physics()
    if sinr["sinr_throughput_ratio"] < sinr_bench.SINR_THROUGHPUT_FLOOR:
        raise RuntimeError(
            f"SINR throughput ratio {sinr['sinr_throughput_ratio']:.3f} below "
            f"the {sinr_bench.SINR_THROUGHPUT_FLOOR} floor"
        )
    metrics["sinr_collision_events_per_s"] = round(sinr["collision_events_per_s"])
    metrics["sinr_events_per_s"] = round(sinr["sinr_events_per_s"])
    metrics["sinr_throughput_ratio"] = round(sinr["sinr_throughput_ratio"], 3)
    metrics["sinr_hidden_delivered"] = physics["hidden_delivered"]
    metrics["sinr_delivery_asymmetry"] = round(physics["delivery_asymmetry"], 3)

    rings = engine_bench.SMOKE_RINGS if quick else engine_bench.BENCH_RINGS
    duration = engine_bench.SMOKE_DURATION if quick else engine_bench.BENCH_DURATION
    warmup = engine_bench.SMOKE_WARMUP if quick else engine_bench.BENCH_WARMUP
    _, wall = engine_bench._timed_scalability(rings, duration, warmup)
    metrics["scalability_rings"] = rings
    metrics["scalability_wall_s"] = round(wall, 3)

    return {
        "schema": 1,
        "rev": _git_rev(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "metrics": metrics,
        # Pre-overhaul numbers measured on the machine that produced the
        # committed BENCH_pr4.json, for the perf-trajectory record: the
        # PR 3 engine ran the deep-heap micro at ~336k events/s and the
        # 500-run batched short sweep (fresh pool per batch, chunksize=1)
        # in ~1.15 s.
        "reference": {
            "pr3_engine_micro_deep_events_per_s": 335_643,
            "pr3_sweep_batched_s": 1.153,
            "pr2_engine_micro_events_per_s_original_machine": 210_000,
            # PR 4's committed orchestration numbers on this machine, for
            # the trajectory record: 500-run batched hidden-node sweep in
            # 0.359 s warm (2.85x over legacy dispatch); PR 4 had no
            # construction cache, so its cached-sweep equivalent is the
            # cache-off regime of sweep_cached_off_s.
            "pr4_sweep_batched_warm_s": 0.359,
            "pr4_sweep_batched_speedup": 2.848,
        },
    }


def baseline_metrics_for(current: dict, baseline: dict) -> dict:
    """The baseline metric set matching the current run's workload.

    Quick runs compare against ``quick_metrics`` (or ``metrics`` of a
    baseline that was itself recorded quick); full runs against a full
    ``metrics`` set.  Empty when the baseline has no matching workload —
    a quick-vs-full comparison would gate noise, not regressions.
    """
    baseline_quick = bool(baseline.get("quick"))
    if current["quick"]:
        if "quick_metrics" in baseline:
            return baseline["quick_metrics"]
        return baseline.get("metrics", {}) if baseline_quick else {}
    return baseline.get("metrics", {}) if not baseline_quick else {}


def check_regression(
    current: dict, baseline: dict, max_regression: float, strict_absolute: bool
) -> list:
    """Compare snapshots; return a list of failure strings (empty = pass)."""
    failures = []
    base_metrics = baseline_metrics_for(current, baseline)
    if not base_metrics:
        print(
            "regression gate skipped: baseline has no metrics for this "
            f"workload (quick={current['quick']}) — regenerate it with --baseline-out"
        )
        return []
    def _minor(version: str) -> str:
        return ".".join(str(version).split(".")[:2])

    # Ratios drift with the interpreter (per-minor-version bytecode
    # specialisation) and with the worker-to-core ratio — gating them
    # across environments would flag noise, not regressions.
    same_env = (
        baseline.get("cpu_count") == current["cpu_count"]
        and _minor(baseline.get("python", "")) == _minor(current["python"])
    )
    cur_metrics = current["metrics"]
    for name, (kind, direction, factor) in METRIC_SPECS.items():
        if name not in base_metrics or name not in cur_metrics:
            continue
        if kind == "absolute" and not strict_absolute:
            continue
        if kind == "ratio" and not same_env and not strict_absolute:
            continue
        base = float(base_metrics[name])
        cur = float(cur_metrics[name])
        if kind == "pct_points":
            drift = cur - base if direction == "lower" else base - cur
            if drift > PCT_POINT_TOLERANCE:
                failures.append(
                    f"{name}: {base:.2f} -> {cur:.2f} "
                    f"(+{drift:.2f} points, tolerance {PCT_POINT_TOLERANCE})"
                )
            continue
        if base == 0:
            continue
        limit = max_regression * factor
        regression = (base - cur) / base if direction == "higher" else (cur - base) / base
        if regression > limit:
            failures.append(
                f"{name}: {base:g} -> {cur:g} "
                f"({regression:+.1%} regression, limit {limit:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI smoke workload")
    parser.add_argument("--json", metavar="PATH", help="write the snapshot JSON here")
    parser.add_argument(
        "--baseline-out", metavar="PATH",
        help="run BOTH the full and the quick workload and write a combined "
        "baseline snapshot (metrics + quick_metrics) for the gate",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="committed snapshot to gate against (see BENCH_*.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.10, metavar="FRACTION",
        help="fail when a gated metric regresses by more than this (default 0.10)",
    )
    parser.add_argument(
        "--strict-absolute", action="store_true",
        help="also gate absolute events/s and wall-clock metrics "
        "(baseline and current must be the same machine)",
    )
    args = parser.parse_args(argv)

    if args.baseline_out:
        snapshot = collect(quick=False)
        # Measure the quick workload in a fresh subprocess so the stored
        # quick_metrics come from the same conditions as a CI smoke run
        # (an in-process quick pass right after the full pass measures
        # systematically warmer and would make the gate trip on noise).
        import tempfile

        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run(
                [sys.executable, os.path.abspath(__file__), "--quick", "--json", tmp.name],
                check=True,
                env={**os.environ, "PYTHONPATH": os.environ.get("PYTHONPATH", "src")},
            )
            with open(tmp.name, "r", encoding="utf-8") as handle:
                snapshot["quick_metrics"] = json.load(handle)["metrics"]
        with open(args.baseline_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for name, value in sorted(snapshot["metrics"].items()):
            print(f"{name:<40} {value}")
        print(f"wrote combined baseline to {args.baseline_out}")
        return 0

    snapshot = collect(quick=args.quick)
    for name, value in sorted(snapshot["metrics"].items()):
        print(f"{name:<40} {value}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote snapshot to {args.json}")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regression(
            snapshot, baseline, args.max_regression, args.strict_absolute
        )
        if failures:
            print(f"\nPERF REGRESSION vs {args.baseline}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.baseline} (limit {args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
