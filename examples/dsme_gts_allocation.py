#!/usr/bin/env python3
"""DSME secondary traffic: GTS allocation over a QMA (or CSMA/CA) CAP.

Builds the paper's concentric data-collection topology (Sect. 6.3) with a
configurable number of rings, routes fluctuating primary traffic towards the
central sink over guaranteed time slots and carries the 3-way GTS
(de)allocation handshakes plus routing broadcasts over the contention
access period.  Prints the secondary-traffic PDR, the GTS-request success
ratio and the (de)allocation rate — the data behind Figs. 21 and 22 — and
the analytic handshake cost curve of Fig. 26.

Run with::

    python examples/dsme_gts_allocation.py [rings]
"""

from __future__ import annotations

import sys

from repro.experiments import handshake_expected_messages, run_scalability


def main() -> None:
    rings = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    duration, warmup = 150.0, 75.0
    print(f"DSME data collection with {rings} ring(s) around the sink\n")
    print(f"{'CAP access':<16} {'secondary PDR':>14} {'GTS-req success':>16} "
          f"{'(de)alloc/s':>12} {'primary PDR':>12}")
    print("-" * 75)
    for mac in ("qma", "unslotted-csma"):
        result = run_scalability(
            mac=mac, rings=rings, duration=duration, warmup=warmup, seed=1
        )
        print(
            f"{mac:<16} {result.secondary_pdr:>14.3f} {result.gts_request_success:>16.3f} "
            f"{result.allocation_rate:>12.2f} {result.primary_pdr:>12.3f}"
        )

    print("\nWhy the CAP reliability matters (Fig. 26): expected number of")
    print("messages to complete one 3-way GTS handshake as a function of the")
    print("per-message success probability p:")
    curve = handshake_expected_messages((0.3, 0.5, 0.7, 0.9, 1.0))
    for p, messages in sorted(curve.items()):
        print(f"  p = {p:.1f}  ->  {messages:6.2f} messages")


if __name__ == "__main__":
    main()
