#!/usr/bin/env python3
"""Watch QMA learn: Q-table convergence and the final subslot schedule.

Reproduces (in text form) the content of the paper's Figs. 10, 11 and 13-15:
the cumulative Q-value per frame, the exploration probability over time and
the subslot utilisation of the two hidden senders after convergence.

Run with::

    python examples/hidden_node_learning.py
"""

from __future__ import annotations

from repro.analysis.stats import rolling_average
from repro.experiments import run_convergence, run_slot_utilisation


def ascii_sparkline(values, width=60):
    """Render a list of numbers as a coarse ASCII sparkline."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = values[::step]
    low, high = min(sampled), max(sampled)
    span = (high - low) or 1.0
    chars = " .:-=+*#%@"
    return "".join(chars[int((v - low) / span * (len(chars) - 1))] for v in sampled)


def main() -> None:
    delta = 25
    print(f"Running the hidden-node scenario with QMA at delta = {delta} packets/s ...\n")
    result = run_convergence(delta=delta, duration=90.0, warmup=15.0, seed=3)

    for node_id, history in sorted(result.table("q_history").items()):
        values = [v for _, v in history]
        print(f"node {node_id}: cumulative Q-value per frame (Fig. 10)")
        print(f"  start {values[0]:8.1f}  ->  end {values[-1]:8.1f}")
        print(f"  [{ascii_sparkline(values)}]\n")

    for node_id, history in sorted(result.table("rho_history").items()):
        rhos = rolling_average([rho for _, rho in history], window=10)
        print(f"node {node_id}: exploration probability rho (rolling average, Fig. 11)")
        print(f"  max {max(rhos):.4f}  final {rhos[-1]:.4f}")
        print(f"  [{ascii_sparkline(rhos)}]\n")

    print("Final subslot schedule (Figs. 13-15):")
    _, final = run_slot_utilisation(delta=delta, snapshot_time=30.0, duration=90.0,
                                    warmup=15.0, seed=3)
    for node_id in sorted(final.assignments):
        slots = final.node_subslots(node_id)
        rendering = "".join(
            slots.get(m, None).short_name if m in slots else "."
            for m in range(final.num_subslots)
        )
        print(f"  node {node_id}: {rendering}")
    print(f"\n  collision free: {final.collision_free}")
    print("  (C = QCCA transmission, S = QSend transmission, '.' = QBackoff)")


if __name__ == "__main__":
    main()
