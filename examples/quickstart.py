#!/usr/bin/env python3
"""Quickstart: QMA vs. CSMA/CA in the paper's hidden-node scenario.

Two senders (A and C) that cannot hear each other transmit Poisson traffic
to the common sink B.  The script runs the scenario once with QMA and once
with unslotted CSMA/CA and prints PDR, queue level and end-to-end delay —
a miniature version of the paper's Fig. 7-9.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import run_hidden_node


def main() -> None:
    delta = 25            # packets per second and sender
    packets = 300         # packets per sender (the paper uses 1000)
    print(f"Hidden-node scenario, delta = {delta} packets/s, {packets} packets per node\n")
    print(f"{'scheme':<18} {'PDR':>6} {'avg queue':>10} {'avg delay':>12}")
    print("-" * 50)
    for mac in ("qma", "slotted-csma", "unslotted-csma"):
        result = run_hidden_node(
            mac=mac,
            delta=delta,
            packets_per_node=packets,
            warmup=30.0,
            seed=1,
        )
        print(
            f"{mac:<18} {result.pdr:>6.3f} {result.average_queue_level:>10.2f} "
            f"{result.average_delay * 1000:>10.1f} ms"
        )
    print(
        "\nQMA learns which subslots are safe for transmission and therefore "
        "sustains a much higher delivery ratio than CSMA/CA, whose CCA cannot "
        "see the hidden terminal."
    )


if __name__ == "__main__":
    main()
