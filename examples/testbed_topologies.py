#!/usr/bin/env python3
"""FIT IoT-LAB style verification: per-node PDR in the tree and star topologies.

A simulated stand-in for the paper's Sect. 6.2 testbed experiments (Figs. 18
and 19): every node sends Poisson traffic towards the sink; the script
prints the per-node packet delivery ratio for QMA and unslotted CSMA/CA and
the number of transmission attempts (the paper's energy proxy).

Run with::

    python examples/testbed_topologies.py
"""

from __future__ import annotations

from repro.experiments import run_star, run_tree


def report(title, results):
    print(f"\n=== {title} ===")
    macs = list(results)
    per_node = {mac: results[mac].table("pdr_per_node") for mac in macs}
    nodes = sorted(set().union(*per_node.values()))
    header = "node".ljust(8) + "".join(mac.rjust(18) for mac in macs)
    print(header)
    print("-" * len(header))
    for node in nodes:
        row = f"{node:<8}"
        for mac in macs:
            row += f"{per_node[mac].get(node, float('nan')):>18.3f}"
        print(row)
    print("-" * len(header))
    row = "overall".ljust(8)
    for mac in macs:
        row += f"{results[mac].scalar('overall_pdr'):>18.3f}"
    print(row)
    row = "tx att.".ljust(8)
    for mac in macs:
        row += f"{results[mac].scalar('transmission_attempts'):>18.0f}"
    print(row)


def main() -> None:
    delta, packets, warmup = 10, 200, 40.0
    tree = {
        mac: run_tree(mac=mac, delta=delta, packets_per_node=packets, warmup=warmup, seed=1)
        for mac in ("qma", "unslotted-csma")
    }
    report("Tree topology (Fig. 16 / Fig. 18)", tree)

    star = {
        mac: run_star(mac=mac, delta=5, packets_per_node=packets, warmup=warmup, seed=1)
        for mac in ("qma", "unslotted-csma")
    }
    report("Star topology (Fig. 17 / Fig. 19)", star)

    print(
        "\nThe tree contains several hidden-terminal constellations, which is "
        "where QMA's learned schedule pays off; in the dense star every node "
        "hears every other node, so CSMA/CA's CCA already avoids most "
        "collisions and the two schemes are much closer (Sect. 6.2.1)."
    )


if __name__ == "__main__":
    main()
