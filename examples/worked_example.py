#!/usr/bin/env python3
"""The worked example of Sect. 5 (Fig. 5): three nodes, four subslots.

Replays the scripted action sequence of the paper's example with α = 1,
γ = 1, ξ = 2 and prints the Q-tables after every frame, matching the values
shown in Fig. 5.

Run with::

    python examples/worked_example.py
"""

from __future__ import annotations

from repro.core.actions import QAction
from repro.core.qtable import QTable

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND


def print_tables(tables, title):
    print(f"--- {title} ---")
    for name, table in tables.items():
        rows = table.as_rows()
        cells = "  ".join(
            f"m{m}: B={b:6.1f} C={c:6.1f} S={s:6.1f} pi={policy}"
            for m, b, c, s, policy in rows
        )
        print(f"{name}: {cells}")
    print()


def main() -> None:
    tables = {
        name: QTable(num_states=4, learning_rate=1.0, discount_factor=1.0,
                     penalty=2.0, q_init=-10.0)
        for name in ("n1", "n2", "n3")
    }

    # Frame 1: n1 QSends successfully in subslot 0 (reward 4), n2's random QCCA
    # fails (reward 1), both collide with QSend in subslot 2 (reward -3, only
    # the penalty xi = 2 is applied), n2 QSends successfully in subslot 3 and
    # n3 (cautious startup) only observes, rewarding QBackoff where it
    # overhears traffic.
    tables["n1"].update(0, S, 4.0, 1)
    tables["n2"].update(0, C, 1.0, 1)
    tables["n3"].update(0, B, 2.0, 1)
    tables["n1"].update(2, S, -3.0, 3)
    tables["n2"].update(2, S, -3.0, 3)
    tables["n2"].update(3, S, 4.0, 0)
    tables["n1"].update(3, B, 2.0, 0)
    tables["n3"].update(3, B, 2.0, 0)
    print_tables(tables, "after frame 1")

    # Frame 2: the policies from frame 1 are followed; n3 randomly explores
    # QCCA in subslot 1 and transmits successfully (reward 3).
    tables["n1"].update(0, S, 4.0, 1)
    tables["n2"].update(3, S, 4.0, 0)
    tables["n3"].update(1, C, 3.0, 2)
    tables["n1"].update(3, B, 2.0, 0)
    tables["n3"].update(0, B, 2.0, 1)
    print_tables(tables, "after frame 2")

    # Frame 3: every node keeps its subslot; the schedule is collision free.
    tables["n1"].update(0, S, 4.0, 1)
    tables["n2"].update(3, S, 4.0, 0)
    tables["n3"].update(1, C, 3.0, 2)
    print_tables(tables, "after frame 3")

    print("Learned transmission subslots:")
    for name, table in tables.items():
        print(f"  {name}: {table.transmission_subslots()}")
    print("\nEvery node owns its own subslot -> no more collisions, exactly as in Fig. 5.")


if __name__ == "__main__":
    main()
