"""CI chaos smoke test: a supervised sweep survives injected faults.

Runs a 500-run checkpointed campaign through the public CLI with the
deterministic fault harness armed — two worker kills, one 60-second run
hang, and one torn journal line — and asserts the three supervision
guarantees end to end:

1. the campaign never hangs (a hard wall-clock bound kills the smoke);
2. it exits ``complete`` (0) or ``partial`` (4), never an unhandled
   traceback (any other exit status fails the smoke);
3. the merged record set is byte-for-byte identical to a fault-free run
   of the same sweep (after ``retry-quarantined`` if it went partial).

A second phase repeats the sweep over **remote dispatch**: two localhost
campaign agents, one SIGKILLed mid-campaign and one injected mid-stream
disconnect.  The same three guarantees must hold — the lost agent's
slice is reassigned, the dropped stream resumes at its byte offset, and
the merged output is again bit-identical to the fault-free baseline.

Exit status 0 means all held.  Run from the repository root::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

#: 1 MAC x 2 deltas x 250 seeds = 500 runs, ~2 ms each.
SWEEP_ARGS = [
    "hidden-node",
    "--macs", "unslotted-csma",
    "--grid", "delta=50,100",
    "--set", "packets_per_node=2",
    "--set", "warmup=0.2",
    "--set", "drain_time=0.1",
    "--set", "management_period=0.5",
    "--seeds", "250",
]
TOTAL_RUNS = 500

#: Two worker kills, one 60 s hang, one torn journal line — the worker
#: faults fire exactly once per campaign, the hang is bounded by the
#: run timeout's watchdog, the torn line by crash-tolerant replay.
FAULTS = "crash@seed=3;crash@seed=101;hang:60@seed=7;torn@after=120"

#: Per-run wall-clock budget: generous for a ~2 ms run, small enough to
#: keep each watchdog-recovered fault under ~10 s of smoke time.
RUN_TIMEOUT = "8.0"

#: Hard bound on any single CLI invocation — guarantee (1).
SMOKE_TIMEOUT_S = 420


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def cli(*args: str, timeout: float = SMOKE_TIMEOUT_S) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def fail(message: str, proc: subprocess.CompletedProcess = None) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    if proc is not None:
        print("--- stdout ---\n" + proc.stdout[-4000:], file=sys.stderr)
        print("--- stderr ---\n" + proc.stderr[-4000:], file=sys.stderr)
    sys.exit(1)


def spawn_agent(tmp: str, name: str) -> tuple:
    """Start a campaign agent subprocess; returns (proc, 'host:port')."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "agent", "--port", "0",
         "--workdir", os.path.join(tmp, name), "--name", name],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    if not match:
        proc.kill()
        fail(f"agent {name} printed no listening line: {line!r}")
    return proc, match.group(1)


def records_of(jsonl_path: str) -> list:
    """The record objects of a JSONL export (meta lines skipped)."""
    records = []
    with open(jsonl_path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            data = json.loads(line)
            if "scenario" in data:
                records.append(data)
    return records


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="qma-chaos-smoke-")
    base_journal = os.path.join(tmp, "base.jsonl")
    base_export = os.path.join(tmp, "base.records.jsonl")
    chaos_journal = os.path.join(tmp, "chaos.jsonl")
    chaos_export = os.path.join(tmp, "chaos.records.jsonl")

    # 1. Fault-free baseline.
    started = time.monotonic()
    proc = cli("sweep", *SWEEP_ARGS, "--jobs", "2",
               "--checkpoint", base_journal, "--jsonl", base_export)
    if proc.returncode != 0:
        fail("fault-free baseline sweep failed", proc)
    baseline = records_of(base_export)
    if len(baseline) != TOTAL_RUNS:
        fail(f"baseline exported {len(baseline)} records, expected {TOTAL_RUNS}", proc)
    print(f"baseline: {TOTAL_RUNS} runs in {time.monotonic() - started:.1f}s")

    # 2. The same sweep under injected chaos.
    started = time.monotonic()
    proc = cli("sweep", *SWEEP_ARGS, "--jobs", "2",
               "--checkpoint", chaos_journal,
               "--inject-faults", FAULTS, "--run-timeout", RUN_TIMEOUT)
    if proc.returncode not in (0, 4):
        fail(f"chaos sweep exited {proc.returncode}, expected 0 (complete) "
             "or 4 (partial)", proc)
    outcome = "complete" if proc.returncode == 0 else "partial"
    print(f"chaos sweep: {outcome} in {time.monotonic() - started:.1f}s")

    # 3. Partial campaigns must heal once the (one-shot) faults are spent.
    if proc.returncode == 4:
        proc = cli("retry-quarantined", chaos_journal)
        if proc.returncode != 0:
            fail("retry-quarantined did not complete the campaign", proc)
        print("retry-quarantined: campaign healed")

    # 4. Merged output must be bit-identical to the fault-free run.
    proc = cli("resume", chaos_journal, "--jsonl", chaos_export)
    if proc.returncode != 0:
        fail("replaying the chaos journal failed", proc)
    chaos = records_of(chaos_export)
    if chaos != baseline:
        for position, (expected, got) in enumerate(zip(baseline, chaos)):
            if expected != got:
                fail(f"record {position} differs after chaos recovery:\n"
                     f"  expected: {json.dumps(expected)[:300]}\n"
                     f"  got:      {json.dumps(got)[:300]}")
        fail(f"chaos run exported {len(chaos)} records, expected {len(baseline)}")
    print(f"merged output bit-identical across {len(chaos)} records")

    # 5. Remote dispatch: the same sweep across two localhost agents with
    #    one agent SIGKILLed mid-campaign and one mid-stream disconnect.
    remote_journal = os.path.join(tmp, "remote.jsonl")
    remote_export = os.path.join(tmp, "remote.records.jsonl")
    victim, victim_host = spawn_agent(tmp, "victim")
    survivor, survivor_host = spawn_agent(tmp, "survivor")
    try:
        started = time.monotonic()
        sweep_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep", *SWEEP_ARGS,
             "--checkpoint", remote_journal,
             "--hosts", f"{victim_host}*2", f"{survivor_host}*2",
             "--inject-faults", "drop-stream@after=150",
             "--run-timeout", RUN_TIMEOUT],
            env=_env(), cwd=REPO,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        time.sleep(1.5)
        victim.kill()  # SIGKILL one agent while its shards stream
        try:
            out, err = sweep_proc.communicate(timeout=SMOKE_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            sweep_proc.kill()
            fail("remote chaos sweep hung past the wall-clock bound")
        proc = subprocess.CompletedProcess(
            sweep_proc.args, sweep_proc.returncode, out, err
        )
        if proc.returncode not in (0, 4):
            fail(f"remote chaos sweep exited {proc.returncode}, expected 0 "
                 "(complete) or 4 (partial)", proc)
        outcome = "complete" if proc.returncode == 0 else "partial"
        print(f"remote chaos sweep: {outcome} in "
              f"{time.monotonic() - started:.1f}s (one agent SIGKILLed, "
              "one stream dropped)")

        if proc.returncode == 4:
            proc = cli("retry-quarantined", remote_journal)
            if proc.returncode != 0:
                fail("retry-quarantined did not heal the remote campaign", proc)
            print("retry-quarantined: remote campaign healed")

        proc = cli("resume", remote_journal, "--jsonl", remote_export)
        if proc.returncode != 0:
            fail("replaying the remote chaos journal failed", proc)
        remote = records_of(remote_export)
        if remote != baseline:
            for position, (expected, got) in enumerate(zip(baseline, remote)):
                if expected != got:
                    fail(f"record {position} differs after remote recovery:\n"
                         f"  expected: {json.dumps(expected)[:300]}\n"
                         f"  got:      {json.dumps(got)[:300]}")
            fail(f"remote run exported {len(remote)} records, "
                 f"expected {len(baseline)}")
        print(f"remote output bit-identical across {len(remote)} records")
    finally:
        for agent in (victim, survivor):
            if agent.poll() is None:
                agent.kill()
            agent.wait()

    print("chaos smoke passed")


if __name__ == "__main__":
    main()
