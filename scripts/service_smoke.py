"""CI smoke test for the campaign service: serve, submit, kill, resume.

Exercises the full stack the way an operator would, using only
subprocesses and the public CLI/HTTP surfaces:

1. start ``qma-repro serve`` on an ephemeral port, parse the bound port
   from its announcement line;
2. submit a tiny sweep over HTTP, poll ``/status`` to completion, check
   the live aggregates cover every run;
3. start a checkpointed ``qma-repro sweep --checkpoint``, ``kill -9`` it
   once the journal holds a few completion records, resume it with a
   different worker count, and diff the journal's record set against an
   uninterrupted cold run — byte-for-byte.

Exit status 0 means all three passed.  Run from the repository root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

SWEEP_ARGS = [
    "hidden-node",
    "--macs", "unslotted-csma",
    "--grid", "delta=50,100",
    "--set", "packets_per_node=2",
    "--set", "warmup=0.2",
    "--set", "drain_time=0.1",
    "--set", "management_period=0.5",
    "--seeds", "3",
]

#: Kill-resume victim: ~20 ms/run x 50 runs gives a ~1 s kill window on a
#: serial sweep, so SIGKILL reliably lands mid-campaign.
KILL_SWEEP_ARGS = [
    "hidden-node",
    "--macs", "unslotted-csma",
    "--grid", "delta=50,100",
    "--set", "packets_per_node=200",
    "--set", "warmup=0.2",
    "--seeds", "25",
]
KILL_SWEEP_RUNS = 50


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def cli(*args: str, **kwargs) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=_env(), **kwargs
    )


def run_cli(*args: str) -> str:
    proc = cli(*args, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    out, _ = proc.communicate(timeout=600)
    if proc.returncode != 0:
        raise SystemExit(f"command {args} failed ({proc.returncode}):\n{out}")
    return out


def wait_for(predicate, timeout: float, what: str):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def journal_record_set(path: str) -> dict:
    """index -> record dict of every completion line (header skipped)."""
    records = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.endswith("\n"):
                continue  # torn tail from the kill — resume re-runs it
            data = json.loads(line)
            if "checkpoint" in data or "event" in data:
                continue  # header / structured audit lines
            records[data["index"]] = data["record"]
    return records


def smoke_service(workdir: str) -> None:
    print("== service: serve / submit / status ==", flush=True)
    root = os.path.join(workdir, "campaigns")
    server = cli(
        "serve", "--port", "0", "--root", root,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        line = wait_for(
            lambda: server.stdout.readline(), 30, "the serve announcement"
        )
        match = re.search(r"http://([\d.]+):(\d+)", line)
        if not match:
            raise SystemExit(f"cannot parse serve announcement: {line!r}")
        host, port = match.group(1), match.group(2)
        print(f"service on {host}:{port}", flush=True)
        out = run_cli(
            "submit", *SWEEP_ARGS, "--host", host, "--port", port,
            "--wait", "--timeout", "300",
        )
        print(out, flush=True)
        if "state" in out and "failed" in out:
            raise SystemExit("service job failed")
        if not re.search(r"job job-1: done 6/6", out):
            raise SystemExit("submit --wait did not report a completed 6-run job")
        if not re.search(r"\bpdr\s+6\b", out):
            raise SystemExit("final aggregates do not cover all 6 runs")
        status = run_cli("status", "--host", host, "--port", port)
        print(status, flush=True)
        if "done" not in status:
            raise SystemExit("status does not list the finished job")
    finally:
        server.terminate()
        server.wait(timeout=10)


def smoke_kill_resume(workdir: str) -> None:
    print("== checkpoint: kill -9 mid-sweep, resume, diff vs cold ==", flush=True)
    total = KILL_SWEEP_RUNS
    cold_journal = os.path.join(workdir, "cold.journal.jsonl")
    run_cli("sweep", *KILL_SWEEP_ARGS, "--checkpoint", cold_journal, "--jobs", "4")
    cold = journal_record_set(cold_journal)
    if len(cold) != total:
        raise SystemExit(f"cold run journalled {len(cold)} of {total} records")

    killed_journal = os.path.join(workdir, "killed.journal.jsonl")
    # Serial victim: ~1 s of wall clock, so the kill lands mid-campaign.
    victim = cli(
        "sweep", *KILL_SWEEP_ARGS, "--checkpoint", killed_journal,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )

    def enough_progress():
        try:
            with open(killed_journal, "r", encoding="utf-8") as handle:
                return sum(1 for line in handle if '"index"' in line) >= 2
        except OSError:
            return False

    wait_for(enough_progress, 120, "2 journalled records before the kill")
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait(timeout=10)
    before = journal_record_set(killed_journal)
    if not 0 < len(before) < total:
        raise SystemExit(
            f"kill landed outside the campaign: {len(before)} records journalled"
        )
    print(f"killed with {len(before)}/{total} records journalled", flush=True)

    out = run_cli("resume", killed_journal, "--jobs", "2")
    print(out, flush=True)
    merged = journal_record_set(killed_journal)
    if merged != cold:
        diff = {i for i in set(merged) | set(cold) if merged.get(i) != cold.get(i)}
        raise SystemExit(f"resumed journal differs from cold run at indices {sorted(diff)}")
    for index, record in before.items():
        if merged[index] != record:
            raise SystemExit(f"resume rewrote pre-kill record {index}")
    print("resumed record set is bit-identical to the cold run", flush=True)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="qma-smoke-") as workdir:
        smoke_service(workdir)
        smoke_kill_resume(workdir)
    print("service smoke: OK", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
