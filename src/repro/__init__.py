"""Reproduction of *QMA: A Resource-efficient, Q-learning-based Multiple
Access Scheme for the IIoT* (Meyer & Turau, ICDCS 2021).

The package provides

* the QMA channel-access scheme itself (:mod:`repro.core`),
* the substrates it is evaluated on: a discrete-event simulator
  (:mod:`repro.sim`), an IEEE 802.15.4-style PHY and channel
  (:mod:`repro.phy`), CSMA/CA, ALOHA(-Q) and TDMA baselines
  (:mod:`repro.mac`), the DSME superframe / GTS machinery
  (:mod:`repro.dsme`), topologies, traffic and the network layer
  (:mod:`repro.topology`, :mod:`repro.traffic`, :mod:`repro.net`),
* name-resolved component registries for MAC protocols
  (:mod:`repro.mac.registry`) and propagation models
  (:mod:`repro.phy.registry`), plus the declarative scenario pipeline
  assembling them (:mod:`repro.scenario`),
* the unified metrics API — pluggable collectors and the typed
  :class:`~repro.metrics.report.SimReport` (:mod:`repro.metrics`),
* analysis utilities (:mod:`repro.analysis`), the parallel campaign layer
  with streaming results (:mod:`repro.campaign`), and
* experiment runners reproducing every figure of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart::

    from repro.experiments import run_hidden_node

    result = run_hidden_node(mac="qma", delta=25, packets_per_node=200)
    print(result.pdr)
"""

from repro.core import QAction, QmaConfig, QmaMac, QTable
from repro.mac import SlottedCsmaCa, UnslottedCsmaCa, create_mac, mac_kinds, register_mac
from repro.metrics import MetricCollector, SimReport, collector_kinds, register_collector
from repro.net import Network
from repro.phy import create_propagation, propagation_kinds, register_propagation
from repro.scenario import ScenarioBuilder, ScenarioConfig, build_scenario
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "MetricCollector",
    "Network",
    "QAction",
    "QTable",
    "QmaConfig",
    "QmaMac",
    "ScenarioBuilder",
    "ScenarioConfig",
    "SimReport",
    "Simulator",
    "SlottedCsmaCa",
    "UnslottedCsmaCa",
    "__version__",
    "build_scenario",
    "collector_kinds",
    "create_mac",
    "create_propagation",
    "mac_kinds",
    "propagation_kinds",
    "register_collector",
    "register_mac",
    "register_propagation",
]
