"""Analysis utilities: statistics, convergence metrics, slot utilisation and
the absorbing-Markov-chain model of the DSME GTS handshake."""

from repro.analysis.stats import (
    StreamingStats,
    confidence_interval_95,
    mean,
    rolling_average,
    standard_deviation,
)
from repro.analysis.convergence import (
    convergence_time,
    cumulative_q_series,
    is_stable,
)
from repro.analysis.slots import SlotUtilisation, slot_utilisation
from repro.analysis.markov import (
    AbsorbingMarkovChain,
    expected_handshake_messages,
    gts_handshake_chain,
)

__all__ = [
    "AbsorbingMarkovChain",
    "SlotUtilisation",
    "StreamingStats",
    "confidence_interval_95",
    "convergence_time",
    "cumulative_q_series",
    "expected_handshake_messages",
    "gts_handshake_chain",
    "is_stable",
    "mean",
    "rolling_average",
    "slot_utilisation",
    "standard_deviation",
]
