"""Convergence metrics based on the cumulative Q-value per frame.

The paper uses the sum of the Q-values of the policy actions over all
subslots (one sample per frame) as a stability indicator (Fig. 10 / 12):
a constant cumulative Q-value means the Q-table — and hence the learned
schedule — has stopped changing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

Sample = Tuple[float, float]  # (time, cumulative Q-value)


def cumulative_q_series(history: Sequence[Sample]) -> Tuple[List[float], List[float]]:
    """Split a ``(time, value)`` history into separate time and value lists."""
    times = [t for t, _ in history]
    values = [v for _, v in history]
    return times, values


def is_stable(
    history: Sequence[Sample],
    window: int = 10,
    tolerance: float = 1e-9,
) -> bool:
    """True if the last ``window`` samples vary by at most ``tolerance``."""
    if len(history) < window:
        return False
    values = [v for _, v in history[-window:]]
    return max(values) - min(values) <= tolerance


def convergence_time(
    history: Sequence[Sample],
    window: int = 10,
    tolerance: float = 1e-9,
) -> Optional[float]:
    """Earliest time after which the cumulative Q-value never changes by more
    than ``tolerance`` within any trailing ``window`` samples.

    Returns None if the series never stabilises.
    """
    if len(history) < window:
        return None
    values = [v for _, v in history]
    times = [t for t, _ in history]
    for start in range(len(values) - window + 1):
        tail = values[start:]
        if max(tail) - min(tail) <= tolerance:
            return times[start]
    return None
