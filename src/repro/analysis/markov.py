"""Absorbing Markov chain of the DSME GTS handshake (Appendix A.1, Fig. 25/26).

The 3-way handshake (GTS-request, GTS-response, GTS-notify, each with up to
``retries`` CSMA/CA retransmissions and a restart of the whole handshake
when a message is dropped) is modelled as an absorbing Markov chain with
``3 * (retries + 1)`` transient states and one absorbing state (Success).

From the fundamental matrix ``N = (I - Q)^{-1}`` the expected number of
messages until a GTS is allocated follows as ``S = N 1`` (Eq. 11-12 of the
paper).  :func:`expected_handshake_messages` reproduces Fig. 26.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class AbsorbingMarkovChain:
    """A generic absorbing Markov chain in canonical form."""

    def __init__(self, transient_matrix: Sequence[Sequence[float]]) -> None:
        q = np.asarray(transient_matrix, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError("the transient matrix Q must be square")
        row_sums = q.sum(axis=1)
        if np.any(q < -1e-12) or np.any(row_sums > 1.0 + 1e-9):
            raise ValueError("Q must contain probabilities with row sums <= 1")
        self.q = q
        self.num_transient = q.shape[0]

    def fundamental_matrix(self) -> np.ndarray:
        """N = (I - Q)^{-1}: expected visits to each transient state."""
        identity = np.eye(self.num_transient)
        return np.linalg.inv(identity - self.q)

    def expected_steps(self) -> np.ndarray:
        """S = N 1: expected number of steps until absorption per start state."""
        return self.fundamental_matrix() @ np.ones(self.num_transient)

    def absorption_probability(self) -> np.ndarray:
        """Probability of eventual absorption per start state (1 for a proper chain)."""
        return np.clip(self.fundamental_matrix() @ (1.0 - self.q.sum(axis=1)), 0.0, 1.0)


def gts_handshake_chain(p: float, retries: int = 3) -> AbsorbingMarkovChain:
    """Build the absorbing chain of the 3-way GTS handshake (Fig. 25).

    Parameters
    ----------
    p:
        Probability that a single CAP transmission succeeds.
    retries:
        Number of CSMA/CA retransmissions before a handshake message is
        dropped (3 in IEEE 802.15.4 and in the paper's figure).

    State layout: for each of the three handshake messages there is one
    initial-transmission state followed by ``retries`` retransmission
    states.  A successful transmission moves to the next message (or to the
    absorbing Success state after GTS-notify); a failure moves to the next
    retransmission state, and a failure of the last retransmission drops
    the message and restarts the whole handshake from the GTS-request.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError("p must lie in (0, 1]")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    attempts = retries + 1
    num_states = 3 * attempts
    q = [[0.0] * num_states for _ in range(num_states)]

    def state(message: int, attempt: int) -> int:
        return message * attempts + attempt

    for message in range(3):
        for attempt in range(attempts):
            current = state(message, attempt)
            # Success: move to the first attempt of the next message
            # (absorbing Success state after the GTS-notify, i.e. no entry in Q).
            if message < 2:
                q[current][state(message + 1, 0)] += p
            # Failure: next retransmission, or restart from the GTS-request.
            if attempt < retries:
                q[current][state(message, attempt + 1)] += 1.0 - p
            else:
                q[current][state(0, 0)] += 1.0 - p
    return AbsorbingMarkovChain(q)


def expected_handshake_messages(p: float, retries: int = 3) -> float:
    """Expected number of CAP messages until a GTS is successfully allocated."""
    chain = gts_handshake_chain(p, retries)
    return float(chain.expected_steps()[0])


def handshake_message_curve(
    probabilities: Sequence[float],
    retries: int = 3,
) -> List[float]:
    """Evaluate :func:`expected_handshake_messages` over a probability sweep (Fig. 26)."""
    return [expected_handshake_messages(p, retries) for p in probabilities]
