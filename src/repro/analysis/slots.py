"""Subslot-utilisation extraction (Figs. 13-15 of the paper).

Given the policy snapshots of several QMA agents, :func:`slot_utilisation`
reports which node uses which subslot for which action, whether the
schedule is collision free (no two nodes transmit in the same subslot) and
whether QSend actions appear in adjacent subslots (which the paper points
out must not happen because transmissions span up to three subslots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.actions import QAction


@dataclass
class SlotUtilisation:
    """Per-node transmission subslots plus schedule-level properties."""

    num_subslots: int
    assignments: Dict[int, Dict[int, QAction]] = field(default_factory=dict)

    def transmitting_nodes(self, subslot: int) -> List[int]:
        """Nodes whose policy transmits (QCCA or QSend) in the given subslot."""
        return sorted(
            node
            for node, slots in self.assignments.items()
            if slots.get(subslot) in (QAction.QCCA, QAction.QSEND)
        )

    @property
    def collision_free(self) -> bool:
        """True if no subslot is claimed by more than one transmitting node."""
        return all(
            len(self.transmitting_nodes(m)) <= 1 for m in range(self.num_subslots)
        )

    def adjacent_send_conflicts(self, span: int = 1) -> List[Tuple[int, int]]:
        """Pairs of subslots within ``span`` of each other that both hold QSend actions."""
        send_slots = sorted(
            m
            for m in range(self.num_subslots)
            for node, slots in self.assignments.items()
            if slots.get(m) is QAction.QSEND
        )
        conflicts = []
        for i, a in enumerate(send_slots):
            for b in send_slots[i + 1:]:
                if 0 < b - a <= span:
                    conflicts.append((a, b))
        return conflicts

    def utilised_subslots(self) -> int:
        """Number of subslots used for transmission by at least one node."""
        return sum(1 for m in range(self.num_subslots) if self.transmitting_nodes(m))

    def node_subslots(self, node: int) -> Dict[int, QAction]:
        """Transmission subslots (and their action) of a single node."""
        return {
            m: action
            for m, action in self.assignments.get(node, {}).items()
            if action in (QAction.QCCA, QAction.QSEND)
        }


def slot_utilisation(policies: Mapping[int, Sequence[QAction]]) -> SlotUtilisation:
    """Build a :class:`SlotUtilisation` from per-node policy snapshots."""
    if not policies:
        return SlotUtilisation(num_subslots=0)
    lengths = {len(policy) for policy in policies.values()}
    if len(lengths) != 1:
        raise ValueError("all policies must have the same number of subslots")
    (num_subslots,) = lengths
    utilisation = SlotUtilisation(num_subslots=num_subslots)
    for node, policy in policies.items():
        utilisation.assignments[node] = {m: action for m, action in enumerate(policy)}
    return utilisation
