"""Basic statistics: means, confidence intervals and rolling averages.

The paper presents every result with a 95 % confidence interval over 10-15
repetitions; :func:`confidence_interval_95` reproduces that, using the
Student-t quantile for small sample sizes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

#: Two-sided 97.5 % Student-t quantiles for 1..30 degrees of freedom.
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def standard_deviation(values: Sequence[float]) -> float:
    """Sample standard deviation (n - 1 in the denominator); 0.0 if n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def t_quantile_975(degrees_of_freedom: int) -> float:
    """Two-sided 95 % Student-t quantile, falling back to the normal quantile."""
    if degrees_of_freedom <= 0:
        return 0.0
    if degrees_of_freedom <= len(_T_975):
        return _T_975[degrees_of_freedom - 1]
    return 1.96


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of the 95 % confidence interval."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    m = mean(values)
    if n == 1:
        return m, 0.0
    half_width = t_quantile_975(n - 1) * standard_deviation(values) / math.sqrt(n)
    return m, half_width


class StreamingStats:
    """Constant-memory mean / 95 % CI over a stream of samples.

    The mean is a running sum divided by the count, which keeps it
    bit-identical to :func:`mean` over the same samples in the same order;
    the standard deviation uses Welford's online algorithm (numerically
    stable, may differ from the two-pass :func:`standard_deviation` in the
    last few ulps).  Used by the campaign layer to aggregate million-run
    sweeps without retaining the samples.
    """

    __slots__ = ("n", "_sum", "_mean", "_m2")

    def __init__(self) -> None:
        self.n = 0
        self._sum = 0.0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Add one sample."""
        self.n += 1
        self._sum += value
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples so far (0.0 before any sample)."""
        if self.n == 0:
            return 0.0
        return self._sum / self.n

    @property
    def sample_std(self) -> float:
        """Sample standard deviation (n - 1 in the denominator); 0.0 if n < 2."""
        if self.n < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.n - 1))

    def ci95(self) -> Tuple[float, float]:
        """``(mean, half_width)`` of the 95 % confidence interval."""
        if self.n == 0:
            return 0.0, 0.0
        if self.n == 1:
            return self.mean, 0.0
        half_width = t_quantile_975(self.n - 1) * self.sample_std / math.sqrt(self.n)
        return self.mean, half_width

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StreamingStats(n={self.n}, mean={self.mean:.6g})"


def rolling_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing rolling average with the given window (Fig. 11 uses 10 frames)."""
    if window <= 0:
        raise ValueError("window must be positive")
    result: List[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
        count = min(index + 1, window)
        result.append(running / count)
    return result
