"""Basic statistics: means, confidence intervals and rolling averages.

The paper presents every result with a 95 % confidence interval over 10-15
repetitions; :func:`confidence_interval_95` reproduces that, using the
Student-t quantile for small sample sizes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

#: Two-sided 97.5 % Student-t quantiles for 1..30 degrees of freedom.
_T_975 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def standard_deviation(values: Sequence[float]) -> float:
    """Sample standard deviation (n - 1 in the denominator); 0.0 if n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def t_quantile_975(degrees_of_freedom: int) -> float:
    """Two-sided 95 % Student-t quantile, falling back to the normal quantile."""
    if degrees_of_freedom <= 0:
        return 0.0
    if degrees_of_freedom <= len(_T_975):
        return _T_975[degrees_of_freedom - 1]
    return 1.96


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of the 95 % confidence interval."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    m = mean(values)
    if n == 1:
        return m, 0.0
    half_width = t_quantile_975(n - 1) * standard_deviation(values) / math.sqrt(n)
    return m, half_width


def rolling_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing rolling average with the given window (Fig. 11 uses 10 frames)."""
    if window <= 0:
        raise ValueError("window must be positive")
    result: List[float] = []
    running = 0.0
    for index, value in enumerate(values):
        running += value
        if index >= window:
            running -= values[index - window]
        count = min(index + 1, window)
        result.append(running / count)
    return result
