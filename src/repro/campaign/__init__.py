"""Campaign orchestration: declarative sweeps over scenarios, run in parallel.

The paper's evaluation is built from sweeps over MAC kind x topology x
traffic intensity x seed.  This package turns such sweeps into plain data
(:class:`~repro.campaign.spec.Scenario` / :class:`~repro.campaign.spec.Sweep`),
executes the cross-product over a ``multiprocessing`` worker pool
(:class:`~repro.campaign.runner.CampaignRunner`), and collects structured
:class:`~repro.campaign.records.RunRecord` results with JSON/CSV export and
confidence-interval aggregation.  Sweeps carry a ``metrics=`` axis naming
the collectors of :mod:`repro.metrics` that instrument every run, and
:meth:`~repro.campaign.runner.CampaignRunner.stream` pushes finished
records through :class:`~repro.campaign.frame.RecordSink` objects
(JSONL/CSV streaming, grouped aggregation) in constant memory — or
accumulates them into a columnar :class:`~repro.campaign.frame.ResultFrame`.

Because every simulation draws all randomness from named streams seeded by
a single master seed (see :mod:`repro.sim.rng`), each scenario is a pure
function of its spec — results are bit-identical regardless of worker
count or scheduling, which the campaign test suite asserts.
"""

from repro.campaign.frame import (
    CsvRecordSink,
    JsonDocumentSink,
    JsonlRecordSink,
    RecordSink,
    ResultFrame,
    TableAggregator,
    iter_jsonl,
    load_jsonl,
)
from repro.campaign.records import AmbiguousKeyError, CampaignResult, RunRecord, load_json
from repro.campaign.runner import (
    DEFAULT_TRACE_LIMIT,
    CampaignRunner,
    ScenarioTemplate,
    WorkerPool,
    execute_scenario,
    experiment_metric_names,
    is_known_metric,
    map_seeds,
    resolve_chunksize,
)
from repro.campaign.spec import EXPERIMENT_KINDS, Scenario, Sweep

__all__ = [
    "AmbiguousKeyError",
    "CampaignResult",
    "CampaignRunner",
    "CsvRecordSink",
    "DEFAULT_TRACE_LIMIT",
    "EXPERIMENT_KINDS",
    "JsonDocumentSink",
    "JsonlRecordSink",
    "RecordSink",
    "ResultFrame",
    "RunRecord",
    "Scenario",
    "ScenarioTemplate",
    "Sweep",
    "TableAggregator",
    "WorkerPool",
    "execute_scenario",
    "experiment_metric_names",
    "is_known_metric",
    "iter_jsonl",
    "load_json",
    "load_jsonl",
    "map_seeds",
    "resolve_chunksize",
]
