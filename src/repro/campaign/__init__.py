"""Campaign orchestration: declarative sweeps over scenarios, run in parallel.

The paper's evaluation is built from sweeps over MAC kind x topology x
traffic intensity x seed.  This package turns such sweeps into plain data
(:class:`~repro.campaign.spec.Scenario` / :class:`~repro.campaign.spec.Sweep`),
executes the cross-product over a ``multiprocessing`` worker pool
(:class:`~repro.campaign.runner.CampaignRunner`), and collects structured
:class:`~repro.campaign.records.RunRecord` results with JSON/CSV export and
confidence-interval aggregation.

Because every simulation draws all randomness from named streams seeded by
a single master seed (see :mod:`repro.sim.rng`), each scenario is a pure
function of its spec — results are bit-identical regardless of worker
count or scheduling, which the campaign test suite asserts.
"""

from repro.campaign.records import CampaignResult, RunRecord, load_json
from repro.campaign.runner import CampaignRunner, execute_scenario, map_seeds
from repro.campaign.spec import EXPERIMENT_KINDS, Scenario, Sweep

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "EXPERIMENT_KINDS",
    "RunRecord",
    "Scenario",
    "Sweep",
    "execute_scenario",
    "load_json",
    "map_seeds",
]
