"""Seed-batched campaign execution.

The campaign layer's dominant workload is "many seeds × one configuration".
:func:`execute_seed_batch` takes a *group* of scenarios that differ only in
their master seed, prepares each one as a lane (construction flows through
the artifact cache, so every lane of a group shares one frozen
``ScenarioArtifacts`` bundle) and hands the lanes to
:class:`~repro.sim.batch.SeedBatchExecutor`, which advances them in
lockstep with vectorized per-tick phases.  Results are bit-identical to
per-scenario :func:`~repro.campaign.runner.execute_scenario` calls — the
executor degrades to exact serial execution for configurations its kernel
does not support.

Only experiment families with a prepare/finish split can be batched
(currently the testbed topologies); any other group falls back to
per-scenario execution, so callers can group unconditionally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.campaign.records import RunRecord
from repro.campaign.spec import Scenario
from repro.experiments.testbed import prepare_star, prepare_tree
from repro.sim.batch import SeedBatchExecutor

__all__ = ["batchable_experiment", "execute_seed_batch", "iter_seed_groups"]

#: Experiment family -> lane preparer (same signature discipline as the
#: family's ``run_*`` adapter in :mod:`repro.campaign.runner`).
_PREPARERS = {
    "testbed-star": prepare_star,
    "testbed-tree": prepare_tree,
}


def batchable_experiment(experiment: str) -> bool:
    """Whether the experiment family supports seed-batched execution."""
    return experiment in _PREPARERS


def _same_config(a: Scenario, b: Scenario) -> bool:
    """True when the scenarios differ (at most) in their master seed."""
    return (
        a.experiment == b.experiment
        and a.mac == b.mac
        and a.propagation == b.propagation
        and a.params == b.params
        and a.metrics == b.metrics
    )


def iter_seed_groups(
    scenarios: Iterable[Scenario], batch_seeds: int
) -> Iterator[List[Scenario]]:
    """Group consecutive same-configuration scenarios, ``batch_seeds`` apiece.

    Grouping is strictly consecutive, so emitting the groups' records in
    order preserves the campaign's deterministic record order.  Scenarios
    of non-batchable experiments pass through as singleton groups.
    """
    group: List[Scenario] = []
    for scenario in scenarios:
        if (
            group
            and len(group) < batch_seeds
            and batchable_experiment(scenario.experiment)
            and _same_config(group[0], scenario)
        ):
            group.append(scenario)
            continue
        if group:
            yield group
        group = [scenario]
    if group:
        yield group


def _prepare_lane(scenario: Scenario):
    from repro.campaign.runner import _campaign_params

    return _PREPARERS[scenario.experiment](
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def execute_seed_batch(
    scenarios: Sequence[Scenario],
    keep_raw: bool = False,
    executor: Optional[SeedBatchExecutor] = None,
) -> List[RunRecord]:
    """Run a same-configuration seed group, batched; records keep input order.

    Scalar metrics (and raw reports, with ``keep_raw``) are bit-identical
    to running each scenario through ``execute_scenario`` on its own.
    """
    from repro.campaign import runner
    from repro.campaign.runner import _report_metrics, execute_scenario

    scenarios = list(scenarios)
    if not scenarios:
        return []
    if len(scenarios) == 1 or not batchable_experiment(scenarios[0].experiment):
        return [execute_scenario(s, keep_raw=keep_raw) for s in scenarios]
    if runner.FAULT_HOOK is not None:
        # The batched path bypasses execute_scenario; give the chaos
        # harness the same per-scenario injection point.
        for scenario in scenarios:
            runner.FAULT_HOOK(scenario)
    prepared = [_prepare_lane(scenario) for scenario in scenarios]
    reports = (executor if executor is not None else SeedBatchExecutor()).run(prepared)
    return [
        RunRecord(
            scenario=scenario,
            metrics=_report_metrics(report, traced=bool(scenario.params.get("trace"))),
            raw=report if keep_raw else None,
        )
        for scenario, report in zip(scenarios, reports)
    ]
