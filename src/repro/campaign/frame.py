"""Columnar campaign results and incremental record streaming.

A :class:`ResultFrame` stores campaign rows column-wise (one list per
column) — the natural layout for aggregating one metric over many runs —
and the record sinks stream results to disk *while a campaign runs*:

* :class:`JsonlRecordSink` — one JSON object per line (scenario +
  metrics), flushed per record; constant memory for arbitrarily long
  sweeps and trivially resumable/concatenable.
* :class:`CsvRecordSink` — one flat row per record; the header is fixed
  from the first record (plus optionally declared columns), later columns
  unknown to the header are dropped.
* :class:`JsonDocumentSink` — the legacy ``{"records": [...]}`` document
  written at :meth:`close`; retains all records in memory and exists only
  for compatibility with :func:`repro.campaign.records.load_json`.
* :class:`TableAggregator` — constant-memory grouped mean/CI aggregation
  (one :class:`~repro.analysis.stats.StreamingStats` per group × metric).

``iter_jsonl`` reads a JSONL stream back as records without loading the
whole file.
"""

from __future__ import annotations

import csv
import io
import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.stats import StreamingStats
from repro.campaign.records import RunRecord, _SCENARIO_COLUMNS
from repro.campaign.spec import Scenario


class ResultFrame:
    """Campaign rows stored column-wise.

    Rows are flat dictionaries as produced by :meth:`RunRecord.row`
    (scenario identity, parameters, metrics).  Columns appearing after the
    first row are backfilled with None; absent cells read as None.
    """

    def __init__(self) -> None:
        self._columns: Dict[str, List[Any]] = {}
        self._length = 0

    # ------------------------------------------------------------- building
    def append(self, row: Mapping[str, Any]) -> None:
        """Append one flat row, growing the column set as needed."""
        for name in row:
            if name not in self._columns:
                self._columns[name] = [None] * self._length
        for name, column in self._columns.items():
            column.append(row.get(name))
        self._length += 1

    def append_record(self, record: RunRecord) -> None:
        """Append a run record's flat row view."""
        self.append(record.row())

    @classmethod
    def from_records(cls, records: Sequence[RunRecord]) -> "ResultFrame":
        frame = cls()
        for record in records:
            frame.append_record(record)
        return frame

    # -------------------------------------------------------------- reading
    def __len__(self) -> int:
        return self._length

    def column_names(self) -> List[str]:
        """Column names in first-appearance order."""
        return list(self._columns)

    def column(self, name: str) -> List[Any]:
        """One column as a list (length == number of rows)."""
        try:
            return list(self._columns[name])
        except KeyError:
            known = ", ".join(self._columns) or "<none>"
            raise KeyError(f"frame has no column {name!r}; columns: {known}") from None

    def row(self, index: int) -> Dict[str, Any]:
        """One row as a dictionary (cells absent at append time are None)."""
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        for index in range(self._length):
            yield self.row(index)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.iter_rows()

    # ---------------------------------------------------------- aggregation
    def aggregate(
        self,
        metric: str,
        by: Sequence[str] = ("mac",),
    ) -> Dict[Tuple[Any, ...], Dict[str, float]]:
        """Group rows and compute ``{"mean", "ci95", "n"}`` per group.

        Same semantics as :meth:`CampaignResult.aggregate`; rows whose
        metric cell is None (heterogeneous collector sets) are skipped.
        """
        metric_column = self.column(metric)
        key_columns = [self.column(name) for name in by]
        groups: Dict[Tuple[Any, ...], StreamingStats] = {}
        for index in range(self._length):
            value = metric_column[index]
            if value is None:
                continue
            key = tuple(column[index] for column in key_columns)
            groups.setdefault(key, StreamingStats()).push(float(value))
        result: Dict[Tuple[Any, ...], Dict[str, float]] = {}
        for key, stats in groups.items():
            mean, half_width = stats.ci95()
            result[key] = {"mean": mean, "ci95": half_width, "n": float(stats.n)}
        return result

    # --------------------------------------------------------------- export
    def to_jsonl(self, path: Union[str, Any]) -> int:
        """Write one JSON object per row; returns the row count."""
        handle, owned = _open_for_write(path)
        try:
            for row in self.iter_rows():
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        finally:
            if owned:
                handle.close()
        return self._length

    def to_csv(self, path: Union[str, Any]) -> int:
        """Write a flat CSV (all columns, None cells empty); returns the row count."""
        handle, owned = _open_for_write(path)
        try:
            writer = csv.DictWriter(handle, fieldnames=self.column_names(), restval="")
            writer.writeheader()
            for row in self.iter_rows():
                writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
        finally:
            if owned:
                handle.close()
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultFrame(rows={self._length}, columns={len(self._columns)})"


def _open_for_write(path: Union[str, Any]):
    """Return ``(handle, owned)`` for a path or an already-open file."""
    if hasattr(path, "write"):
        return path, False
    return open(path, "w", encoding="utf-8", newline=""), True


# --------------------------------------------------------------------- sinks
class RecordSink:
    """Base class of streaming record consumers.

    :meth:`write` is called once per finished record, in deterministic
    sweep-expansion order; :meth:`close` once after the campaign.
    ``written`` counts the records seen.
    """

    def __init__(self) -> None:
        self.written = 0

    def write(self, record: RunRecord) -> None:
        self.written += 1

    def close(self) -> None:
        """Release resources; safe to call more than once."""


class JsonlRecordSink(RecordSink):
    """Stream records to a JSONL file, one flushed line per record.

    ``meta`` optionally writes a leading ``{"_meta": {...}}`` line (e.g.
    the effective pool configuration of the producing sweep);
    :func:`iter_jsonl` skips such lines, so annotated streams stay
    readable and concatenable.
    """

    def __init__(self, path: Union[str, Any], meta: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__()
        self.path = path
        self._handle, self._owned = _open_for_write(path)
        if meta:
            self._handle.write(json.dumps({"_meta": dict(meta)}, sort_keys=True) + "\n")
            self._handle.flush()

    def write(self, record: RunRecord) -> None:
        super().write(record)
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._owned and self._handle is not None:
            # fsync before closing so a crash *after* a clean close can
            # never lose flushed records — the checkpoint journal (and any
            # resume logic reading this stream back) relies on closed
            # files being durably complete.
            self._handle.flush()
            _fsync_handle(self._handle)
            self._handle.close()
            self._handle = None


def _fsync_handle(handle: Any) -> None:
    """Force a file handle's buffers to stable storage; no-op for
    pseudo-files (StringIO and friends) that have no file descriptor."""
    try:
        os.fsync(handle.fileno())
    except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
        pass


class CsvRecordSink(RecordSink):
    """Stream records to CSV with a header fixed at the first record.

    ``columns`` optionally pre-declares metric/parameter columns (useful
    when later records may carry cells the first record lacks); anything
    not in the header when it finally appears is dropped, which is the
    price of not buffering the whole campaign.
    """

    def __init__(self, path: Union[str, Any], columns: Sequence[str] = ()) -> None:
        super().__init__()
        self.path = path
        self._declared = list(columns)
        self._handle, self._owned = _open_for_write(path)
        self._writer: Optional[csv.DictWriter] = None

    def write(self, record: RunRecord) -> None:
        super().write(record)
        row = record.row()
        if self._writer is None:
            header = list(_SCENARIO_COLUMNS)
            for name in sorted(record.scenario.params) + sorted(record.metrics):
                if name not in header:
                    header.append(name)
            for name in self._declared:
                if name not in header:
                    header.append(name)
            self._writer = csv.DictWriter(
                self._handle, fieldnames=header, restval="", extrasaction="ignore"
            )
            self._writer.writeheader()
        self._writer.writerow(row)
        self._handle.flush()

    def close(self) -> None:
        if self._owned and self._handle is not None:
            self._handle.close()
            self._handle = None


class JsonDocumentSink(RecordSink):
    """Accumulate records and write the legacy ``{"records": [...]}`` JSON.

    Unlike the JSONL sink this retains every record dictionary until
    :meth:`close` — use it only when a consumer needs the old document
    format (:func:`repro.campaign.records.load_json` reads it back).
    ``meta`` optionally adds a top-level ``"meta"`` object to the document
    (ignored by ``load_json``).
    """

    def __init__(self, path: Union[str, Any], meta: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__()
        self.path = path
        self.meta = dict(meta) if meta else None
        self._records: List[Dict[str, Any]] = []

    def write(self, record: RunRecord) -> None:
        super().write(record)
        self._records.append(record.to_dict())

    def close(self) -> None:
        if self._records is None:
            return
        document: Dict[str, Any] = {"records": self._records}
        if self.meta is not None:
            document["meta"] = self.meta
        handle, owned = _open_for_write(self.path)
        try:
            handle.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
        finally:
            if owned:
                handle.close()
        self._records = None


class TableAggregator(RecordSink):
    """Constant-memory grouped aggregation over a record stream.

    Groups by scenario fields and parameters (never by metrics, so a
    colliding name cannot shadow an axis) and keeps one
    :class:`StreamingStats` per ``(metric, group)`` — memory is bounded by
    the grid size, not the seed count.
    """

    def __init__(self, by: Sequence[str] = ("mac",)) -> None:
        super().__init__()
        self.by = tuple(by)
        self._stats: Dict[str, Dict[Tuple[Any, ...], StreamingStats]] = {}

    def _group_key(self, scenario: Scenario) -> Tuple[Any, ...]:
        key = []
        for name in self.by:
            if name == "experiment":
                key.append(scenario.experiment)
            elif name == "mac":
                key.append(scenario.mac)
            elif name == "propagation":
                key.append(scenario.propagation)
            elif name == "seed":
                key.append(scenario.seed)
            else:
                key.append(scenario.params.get(name))
        return tuple(key)

    def write(self, record: RunRecord) -> None:
        super().write(record)
        key = self._group_key(record.scenario)
        for metric, value in record.metrics.items():
            self._stats.setdefault(metric, {}).setdefault(key, StreamingStats()).push(
                float(value)
            )

    def metric_names(self) -> List[str]:
        """Metric names seen so far, sorted."""
        return sorted(self._stats)

    def groups(self, metric: str) -> Dict[Tuple[Any, ...], Dict[str, float]]:
        """``{"mean", "ci95", "n"}`` per group, in first-appearance order."""
        result: Dict[Tuple[Any, ...], Dict[str, float]] = {}
        for key, stats in self._stats.get(metric, {}).items():
            mean, half_width = stats.ci95()
            result[key] = {"mean": mean, "ci95": half_width, "n": float(stats.n)}
        return result


def iter_jsonl_objects(handle: Any, source: str = "<stream>") -> Iterator[Any]:
    """Yield parsed JSON objects from a line-delimited stream.

    A final line that fails to parse — the signature of a crash mid-write
    (the producing process died between ``write`` and the newline hitting
    disk) — is skipped with a :class:`RuntimeWarning` instead of raising,
    so a truncated stream reads back as its complete prefix.  A malformed
    line anywhere *before* the tail still raises: that is corruption, not
    truncation.  Blank lines are ignored.  The checkpoint journal builds
    on this exact behaviour.
    """
    previous: Optional[str] = None
    for line in handle:
        if previous is not None and previous.strip():
            yield json.loads(previous)
        previous = line
    if previous is None or not previous.strip():
        return
    try:
        yield json.loads(previous)
    except json.JSONDecodeError:
        warnings.warn(
            f"{source}: skipping truncated trailing line "
            f"({len(previous)} bytes) — likely a crash mid-write",
            RuntimeWarning,
            stacklevel=2,
        )


def iter_jsonl(source: Union[str, Any]) -> Iterator[RunRecord]:
    """Yield records from a JSONL stream without loading the whole file.

    ``{"_meta": ...}`` annotation lines (see :class:`JsonlRecordSink`) are
    skipped, so annotated and plain streams read back identically.  A
    crash-truncated final line is skipped with a warning (see
    :func:`iter_jsonl_objects`) instead of raising, so the stream of an
    interrupted sweep stays loadable.
    """

    def records(handle, name: str) -> Iterator[RunRecord]:
        for data in iter_jsonl_objects(handle, source=name):
            if "_meta" in data and "scenario" not in data:
                continue
            yield RunRecord.from_dict(data)

    if hasattr(source, "read"):
        yield from records(source, "<stream>")
        return
    with open(source, "r", encoding="utf-8") as handle:
        yield from records(handle, str(source))


def load_jsonl(source: Union[str, Any]) -> ResultFrame:
    """Load a JSONL record stream into a :class:`ResultFrame`."""
    frame = ResultFrame()
    for record in iter_jsonl(source):
        frame.append_record(record)
    return frame
