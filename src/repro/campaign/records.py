"""Structured campaign results: records, export and aggregation.

A :class:`RunRecord` pairs a scenario with the scalar metrics its run
produced (and optionally the raw experiment result object for callers that
need time series or per-node detail).  A :class:`CampaignResult` is the
ordered record list of one campaign with JSON/CSV export and
confidence-interval aggregation on top.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.stats import confidence_interval_95
from repro.campaign.spec import Scenario

#: Keys of :meth:`RunRecord.row` that name the scenario rather than a metric.
_SCENARIO_COLUMNS = ("experiment", "mac", "propagation", "seed")


class AmbiguousKeyError(KeyError):
    """A looked-up key names both a metric and a scenario field/parameter.

    The built-in experiment adapters never collide (the test suite pins
    that down), but a custom collector is free to emit a scalar named like
    a sweep axis — :meth:`RunRecord.value` then refuses to guess instead of
    silently preferring one side.
    """


@dataclass
class RunRecord:
    """The outcome of one scenario: scalar metrics keyed by name.

    ``raw`` optionally holds the full experiment result object (histories,
    per-node dictionaries, ...).  It is excluded from JSON/CSV export, which
    covers the scalar metrics only.
    """

    scenario: Scenario
    metrics: Dict[str, float] = field(default_factory=dict)
    raw: Any = None

    def metric(self, key: str) -> float:
        """Look up a metric by name (unambiguous accessor)."""
        return self.metrics[key]

    def param(self, key: str) -> Any:
        """Look up a scenario parameter by name (unambiguous accessor)."""
        return self.scenario.params[key]

    def value(self, key: str) -> Any:
        """Look up ``key`` among the metrics, scenario fields and parameters.

        A key naming both a metric and a scenario field or parameter raises
        :class:`AmbiguousKeyError` — use :meth:`metric` / :meth:`param` (or
        ``scenario.<field>``) to pick a side explicitly.  Earlier releases
        silently preferred the metric, which made a collector scalar named
        like a sweep axis shadow the axis in ``aggregate(by=...)``.
        """
        in_metrics = key in self.metrics
        shadowed = key in _SCENARIO_COLUMNS or key in self.scenario.params
        if in_metrics and shadowed:
            raise AmbiguousKeyError(
                f"{key!r} names both a metric and a scenario field/parameter; "
                f"use record.metric({key!r}) or record.param({key!r}) instead"
            )
        if in_metrics:
            return self.metrics[key]
        if key == "experiment":
            return self.scenario.experiment
        if key == "mac":
            return self.scenario.mac
        if key == "propagation":
            return self.scenario.propagation
        if key == "seed":
            return self.scenario.seed
        if key in self.scenario.params:
            return self.scenario.params[key]
        raise KeyError(f"record has no metric or scenario field {key!r}")

    def row(self) -> Dict[str, Any]:
        """Flat dictionary view: scenario identity, parameters and metrics."""
        row: Dict[str, Any] = {
            "experiment": self.scenario.experiment,
            "mac": self.scenario.mac,
            "propagation": self.scenario.propagation or "",
            "seed": self.scenario.seed,
        }
        row.update(self.scenario.params)
        row.update(self.metrics)
        return row

    def to_dict(self) -> Dict[str, Any]:
        return {"scenario": self.scenario.to_dict(), "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            metrics=dict(data.get("metrics", {})),
        )


@dataclass
class CampaignResult:
    """All records of one campaign, in sweep-expansion order."""

    records: List[RunRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def metric_names(self) -> List[str]:
        """Union of metric names over all records, sorted."""
        names = set()
        for record in self.records:
            names.update(record.metrics)
        return sorted(names)

    def param_names(self) -> List[str]:
        """Union of scenario parameter names over all records, sorted."""
        names = set()
        for record in self.records:
            names.update(record.scenario.params)
        return sorted(names)

    # ---------------------------------------------------------------- export
    def to_json(self, path: Optional[Union[str, "io.TextIOBase"]] = None) -> str:
        """Serialise the records (scenario + metrics) to JSON.

        Returns the JSON text; when ``path`` is given it is also written
        there (a file path or an open text file).
        """
        payload = {"records": [record.to_dict() for record in self.records]}
        text = json.dumps(payload, indent=2, sort_keys=True)
        _write_text(text + "\n", path)
        return text

    def to_csv(self, path: Optional[Union[str, "io.TextIOBase"]] = None) -> str:
        """Serialise the records to CSV (one flat row per run).

        Columns are the scenario identity, then all parameter names, then
        all metric names; cells missing for a record stay empty.
        """
        # A name used both as parameter and metric yields one column holding
        # the metric (metrics shadow parameters in ``row()``); the built-in
        # experiment adapters avoid such collisions.
        columns: List[str] = []
        for name in list(_SCENARIO_COLUMNS) + self.param_names() + self.metric_names():
            if name not in columns:
                columns.append(name)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
        writer.writeheader()
        for record in self.records:
            writer.writerow(record.row())
        text = buffer.getvalue()
        _write_text(text, path)
        return text

    # ----------------------------------------------------------- aggregation
    def aggregate(
        self,
        metric: str,
        by: Sequence[str] = ("mac",),
    ) -> Dict[Tuple[Any, ...], Dict[str, float]]:
        """Group records and compute ``{"mean", "ci95", "n"}`` per group.

        ``by`` names scenario fields ("experiment", "mac", "seed") or
        parameter axes; ``metric`` names a scalar metric.  Groups are
        returned in first-appearance order (which, for sweep output, is the
        deterministic expansion order).
        """
        groups: Dict[Tuple[Any, ...], List[float]] = {}
        for record in self.records:
            key = tuple(record.value(field_name) for field_name in by)
            groups.setdefault(key, []).append(float(record.value(metric)))
        result: Dict[Tuple[Any, ...], Dict[str, float]] = {}
        for key, samples in groups.items():
            mean, half_width = confidence_interval_95(samples)
            result[key] = {"mean": mean, "ci95": half_width, "n": float(len(samples))}
        return result


def load_json(source: Union[str, "io.TextIOBase"]) -> CampaignResult:
    """Load a :class:`CampaignResult` previously written by :meth:`to_json`."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    return CampaignResult(
        records=[RunRecord.from_dict(entry) for entry in data.get("records", [])]
    )


def _write_text(text: str, path: Optional[Union[str, "io.TextIOBase"]]) -> None:
    if path is None:
        return
    if hasattr(path, "write"):
        path.write(text)
        return
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)
