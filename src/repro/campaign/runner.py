"""Campaign execution over a multiprocessing worker pool.

Every scenario is an independent simulation seeded from its own master
seed, so scenarios can run in any order on any number of workers and still
produce bit-identical results — :class:`CampaignRunner` only has to keep
the *record* order deterministic, which ``Pool.map`` over the sweep's
deterministic expansion order guarantees.

The worker entry point :func:`execute_scenario` is a module-level function
(picklable) dispatching on the scenario's experiment family.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple, Union

from repro.campaign.records import CampaignResult, RunRecord
from repro.campaign.spec import Scenario, Sweep
from repro.experiments.hidden_node import HiddenNodeResult, run_hidden_node
from repro.experiments.scalability import ScalabilityResult, run_scalability
from repro.experiments.testbed import TestbedResult, run_star, run_tree


def _hidden_node_metrics(result: HiddenNodeResult) -> Dict[str, float]:
    return {
        "pdr": result.pdr,
        "average_queue_level": result.average_queue_level,
        "average_delay": result.average_delay,
        "packets_generated": float(result.packets_generated),
        "packets_delivered": float(result.packets_delivered),
        "transmission_attempts": float(result.transmission_attempts),
        "sim_time": result.duration,
    }


def _testbed_metrics(result: TestbedResult) -> Dict[str, float]:
    metrics = {
        "overall_pdr": result.overall_pdr,
        "packets_generated": float(result.packets_generated),
        "packets_delivered": float(result.packets_delivered),
        "transmission_attempts": float(result.transmission_attempts),
        "sim_time": result.duration,
    }
    for node_id, pdr in sorted(result.per_node_pdr.items()):
        metrics[f"pdr_node_{node_id}"] = pdr
    return metrics


def _scalability_metrics(result: ScalabilityResult) -> Dict[str, float]:
    return {
        "num_nodes": float(result.num_nodes),
        "secondary_pdr": result.secondary_pdr,
        "gts_request_success": result.gts_request_success,
        "allocation_rate": result.allocation_rate,
        "primary_pdr": result.primary_pdr,
        "sim_time": result.duration,
    }


def _run_hidden_node(scenario: Scenario) -> Tuple[Dict[str, float], Any]:
    result = run_hidden_node(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        **scenario.params,
    )
    return _hidden_node_metrics(result), result


def _run_testbed_tree(scenario: Scenario) -> Tuple[Dict[str, float], Any]:
    result = run_tree(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        **scenario.params,
    )
    return _testbed_metrics(result), result


def _run_testbed_star(scenario: Scenario) -> Tuple[Dict[str, float], Any]:
    result = run_star(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        **scenario.params,
    )
    return _testbed_metrics(result), result


def _run_scalability(scenario: Scenario) -> Tuple[Dict[str, float], Any]:
    result = run_scalability(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        **scenario.params,
    )
    return _scalability_metrics(result), result


#: Experiment family -> adapter returning ``(metrics, raw result)``.
_ADAPTERS: Dict[str, Callable[[Scenario], Tuple[Dict[str, float], Any]]] = {
    "hidden-node": _run_hidden_node,
    "testbed-tree": _run_testbed_tree,
    "testbed-star": _run_testbed_star,
    "scalability": _run_scalability,
}

#: Metric names each experiment family emits (testbed families additionally
#: emit one dynamic ``pdr_node_<id>`` metric per source node).
EXPERIMENT_METRICS: Dict[str, Tuple[str, ...]] = {
    "hidden-node": (
        "pdr",
        "average_queue_level",
        "average_delay",
        "packets_generated",
        "packets_delivered",
        "transmission_attempts",
        "sim_time",
    ),
    "testbed-tree": (
        "overall_pdr",
        "packets_generated",
        "packets_delivered",
        "transmission_attempts",
        "sim_time",
    ),
    "testbed-star": (
        "overall_pdr",
        "packets_generated",
        "packets_delivered",
        "transmission_attempts",
        "sim_time",
    ),
    "scalability": (
        "num_nodes",
        "secondary_pdr",
        "gts_request_success",
        "allocation_rate",
        "primary_pdr",
        "sim_time",
    ),
}


def is_known_metric(experiment: str, metric: str) -> bool:
    """Whether ``metric`` can occur in records of the given experiment family."""
    if metric in EXPERIMENT_METRICS.get(experiment, ()):
        return True
    return experiment.startswith("testbed-") and metric.startswith("pdr_node_")


def execute_scenario(scenario: Scenario, keep_raw: bool = False) -> RunRecord:
    """Run one scenario and return its :class:`RunRecord`.

    With ``keep_raw`` the record also carries the full experiment result
    object (histories, per-node detail); the scalar metrics are identical
    either way.
    """
    adapter = _ADAPTERS[scenario.experiment]
    metrics, raw = adapter(scenario)
    return RunRecord(scenario=scenario, metrics=metrics, raw=raw if keep_raw else None)


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 or negative means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_map(func: Callable[[Any], Any], items: Sequence[Any], jobs: int) -> List[Any]:
    """Map ``func`` over ``items`` serially or over a pool; order is kept."""
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(func, items, chunksize=1)


def map_seeds(
    run: Callable[[int], Any],
    seeds: Sequence[int],
    jobs: int = 1,
) -> List[Any]:
    """Run ``run(seed)`` for every seed, optionally over a worker pool.

    With ``jobs == 1`` any callable works; with more workers ``run`` must be
    picklable (a module-level function or :func:`functools.partial` of one).
    Result order always matches ``seeds`` order.
    """
    return _pool_map(run, seeds, jobs)


class CampaignRunner:
    """Execute sweeps (or explicit scenario lists) over a worker pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (the default) runs serially in-process,
        ``0`` means one worker per CPU.
    keep_raw:
        Attach the full experiment result object to every record.
    """

    def __init__(self, jobs: int = 1, keep_raw: bool = False) -> None:
        self.jobs = resolve_jobs(jobs)
        self.keep_raw = keep_raw

    def run(self, sweep: Union[Sweep, Iterable[Scenario]]) -> CampaignResult:
        """Run every scenario of the sweep; records keep expansion order."""
        scenarios = sweep.scenarios() if isinstance(sweep, Sweep) else list(sweep)
        worker = functools.partial(execute_scenario, keep_raw=self.keep_raw)
        return CampaignResult(records=_pool_map(worker, scenarios, self.jobs))
