"""Campaign execution over a persistent multiprocessing worker pool.

Every scenario is an independent simulation seeded from its own master
seed, so scenarios can run in any order on any number of workers and still
produce bit-identical results — :class:`CampaignRunner` only has to keep
the *record* order deterministic, which mapping over the sweep's
deterministic expansion order guarantees.

The worker entry point :func:`execute_scenario` is a module-level function
(picklable) dispatching on the scenario's experiment family; each family's
runner instruments the simulation with the scenario's ``metrics``
collectors (default: the experiment's :data:`DEFAULT_COLLECTORS`) and the
record's scalar metrics are the resulting report's scalars plus
``sim_time``.

:meth:`CampaignRunner.stream` consumes records as they finish (in order)
and hands them to :class:`~repro.campaign.frame.RecordSink` objects —
JSONL/CSV export and grouped aggregation then run in constant memory, so a
million-run sweep never materialises its record list.

Warm workers
------------
Earlier releases forked a fresh ``multiprocessing.Pool`` per ``run`` /
``iter_records`` / ``stream`` call and shipped every run as a fully
pickled :class:`Scenario` with ``chunksize=1`` — for short runs the sweep
was dominated by orchestration, not simulation.  The runner now owns one
:class:`WorkerPool` for its lifetime: workers are created once (and reused
across calls), the sweep's shared *scenario template* (experiment, fixed
parameters, collector set) is shipped once through the pool initializer,
and each run crosses the pipe as just its ``(mac, propagation, seed,
axis-values)`` delta, in adaptively sized chunks
(``max(1, n // (jobs * 8))`` by default, overridable via ``chunksize``).
Call :meth:`CampaignRunner.close` (or use the runner as a context
manager) to release the workers early; they are also reclaimed when the
runner is garbage collected.

Build-once / run-many
---------------------
Per-run *construction* (topology factory, O(n²) propagation-derived links,
routing tree, PER rows) depends only on the configuration half of a
scenario, never on the master seed or the MAC — so every worker keeps a
small LRU of construction-artifact bundles
(:data:`repro.scenario.artifacts.ARTIFACT_CACHE`, configured through the
pool initializer) and sweeps are dispatched in *configuration-affinity
order*: runs sharing a cache key are sorted consecutively (stable, so each
group keeps expansion order) and land in the same chunk, while records are
re-emitted in the original deterministic expansion order.  Results are
bit-identical with the cache on and off; ``build_cache=False``
(``--no-build-cache``) restores plain per-run construction and pure
expansion-order dispatch.
"""

from __future__ import annotations

import fnmatch
import multiprocessing
import os
import pickle
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.campaign.frame import RecordSink, ResultFrame
from repro.campaign.records import CampaignResult, RunRecord
from repro.campaign.spec import (
    EXPERIMENT_KINDS,
    Scenario,
    Sweep,
    construction_affinity_key,
    construction_seed_dependent,
    construction_values,
)
from repro.experiments import hidden_node, scalability, sinr_hidden_node, testbed
from repro.experiments.hidden_node import run_hidden_node
from repro.experiments.scalability import run_scalability
from repro.experiments.sinr_hidden_node import run_sinr_hidden_node
from repro.experiments.testbed import run_star, run_tree
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.artifacts import ARTIFACT_CACHE

#: Default bound on retained trace records for traced campaign runs; long
#: sweeps with ``trace=True`` then drop (and count) the excess instead of
#: exhausting memory silently.  Pass ``trace_limit`` explicitly to change.
DEFAULT_TRACE_LIMIT = 250_000

#: Affinity-ordered dispatch materialises the sweep's delta list (to sort
#: it) and may buffer out-of-order records while re-emitting them in
#: expansion order; above this sweep size the runner keeps plain expansion
#: order so arbitrarily large sweeps stay constant-memory (workers still
#: cache by key, they just see fewer consecutive same-key runs).
AFFINITY_REORDER_LIMIT = 100_000

#: The re-emission buffer holds at most as many records as the dispatch
#: permutation displaces any single run; permutations displacing more than
#: this are not worth the memory (e.g. seed-grouped fading sweeps over
#: multiple MACs, where the displacement grows with the sweep) and fall
#: back to expansion-order dispatch.
AFFINITY_MAX_DISPLACEMENT = 10_000


def _report_metrics(report: SimReport, traced: bool) -> Dict[str, float]:
    """Flatten a report into the record's scalar metric dictionary.

    Traced runs always carry ``trace_dropped`` (even when 0) so that every
    record of a traced sweep has the same metric set — streaming CSV fixes
    its header from the first record.
    """
    metrics = {name: float(value) for name, value in report.scalars.items()}
    metrics["sim_time"] = report.duration
    if traced or report.trace_dropped:
        metrics["trace_dropped"] = float(report.trace_dropped)
    return metrics


def _campaign_params(scenario: Scenario) -> Dict[str, Any]:
    """Runner kwargs for a scenario, with the campaign trace bound applied."""
    params = dict(scenario.params)
    if params.get("trace") and "trace_limit" not in params:
        params["trace_limit"] = DEFAULT_TRACE_LIMIT
    return params


def _run_hidden_node(scenario: Scenario) -> SimReport:
    return run_hidden_node(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_sinr_hidden_node(scenario: Scenario) -> SimReport:
    kwargs = _campaign_params(scenario)
    if scenario.propagation is not None:
        # The runner's own default ("unit-disk" with a decoupled
        # carrier-sense range) applies when the sweep leaves the
        # propagation axis at None — SINR always needs a model.
        kwargs["propagation"] = scenario.propagation
    return run_sinr_hidden_node(
        mac=scenario.mac,
        seed=scenario.seed,
        collectors=scenario.metrics,
        **kwargs,
    )


def _run_testbed_tree(scenario: Scenario) -> SimReport:
    return run_tree(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_testbed_star(scenario: Scenario) -> SimReport:
    return run_star(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_scalability(scenario: Scenario) -> SimReport:
    return run_scalability(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


#: Experiment family -> runner returning the scenario's :class:`SimReport`.
_ADAPTERS: Dict[str, Callable[[Scenario], SimReport]] = {
    "hidden-node": _run_hidden_node,
    "sinr-hidden-node": _run_sinr_hidden_node,
    "testbed-tree": _run_testbed_tree,
    "testbed-star": _run_testbed_star,
    "scalability": _run_scalability,
}

#: Experiment family -> (default collector names, per-collector overrides).
_EXPERIMENT_COLLECTORS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Dict[str, Any]]]] = {
    "hidden-node": (hidden_node.DEFAULT_COLLECTORS, hidden_node.COLLECTOR_OVERRIDES),
    "sinr-hidden-node": (
        sinr_hidden_node.DEFAULT_COLLECTORS,
        sinr_hidden_node.COLLECTOR_OVERRIDES,
    ),
    "testbed-tree": (testbed.DEFAULT_COLLECTORS, testbed.COLLECTOR_OVERRIDES),
    "testbed-star": (testbed.DEFAULT_COLLECTORS, testbed.COLLECTOR_OVERRIDES),
    "scalability": (scalability.DEFAULT_COLLECTORS, scalability.COLLECTOR_OVERRIDES),
}

#: Metrics every record can carry regardless of the collector set.
_IMPLICIT_METRICS = ("sim_time", "trace_dropped")


def experiment_metric_names(
    experiment: str,
    collectors: Optional[Sequence[str]] = None,
) -> Tuple[str, ...]:
    """Scalar names (patterns included, e.g. ``pdr_node_*``) the given
    experiment emits with the given collector set (None: its defaults).

    Derived from the collector registry's ``provides`` declarations, so a
    newly registered collector is validated with zero campaign changes.
    """
    try:
        defaults, overrides = _EXPERIMENT_COLLECTORS[experiment]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment!r}; expected one of {EXPERIMENT_KINDS}"
        ) from None
    names: List[str] = []
    for collector in build_collectors(defaults if collectors is None else collectors, overrides):
        for name in collector.provides():
            if name not in names:
                names.append(name)
    names.extend(_IMPLICIT_METRICS)
    return tuple(names)


#: Concrete metric names of every experiment family's *default* collector
#: set (wildcard families like ``pdr_node_*`` excluded); kept for display
#: and as the compatibility view of earlier releases' static table.
EXPERIMENT_METRICS: Dict[str, Tuple[str, ...]] = {
    experiment: tuple(
        name
        for name in experiment_metric_names(experiment)
        if "*" not in name and name != "trace_dropped"
    )
    for experiment in EXPERIMENT_KINDS
}


def is_known_metric(
    experiment: str,
    metric: str,
    collectors: Optional[Sequence[str]] = None,
) -> bool:
    """Whether ``metric`` can occur in records of the given experiment family
    when instrumented with the given collector set (None: its defaults).

    False (not an error) for unknown experiment families, matching the
    pre-redesign lookup-table behaviour.
    """
    if experiment not in _EXPERIMENT_COLLECTORS:
        return False
    for name in experiment_metric_names(experiment, collectors):
        if name == metric or ("*" in name and fnmatch.fnmatchcase(metric, name)):
            return True
    return False


#: Opt-in fault-injection hook (installed by :func:`repro.service.faults.
#: install`): called with each scenario about to execute, in the executing
#: process.  A module-level callable rather than an import so the campaign
#: layer carries zero dependency on (and zero overhead from) the service's
#: chaos-testing harness when no plan is active.
FAULT_HOOK: Optional[Callable[[Scenario], None]] = None


def execute_scenario(scenario: Scenario, keep_raw: bool = False) -> RunRecord:
    """Run one scenario and return its :class:`RunRecord`.

    With ``keep_raw`` the record also carries the full
    :class:`~repro.metrics.report.SimReport` (series, tables, details); the
    scalar metrics are identical either way.
    """
    if FAULT_HOOK is not None:
        FAULT_HOOK(scenario)
    adapter = _ADAPTERS[scenario.experiment]
    report = adapter(scenario)
    return RunRecord(
        scenario=scenario,
        metrics=_report_metrics(report, traced=bool(scenario.params.get("trace"))),
        raw=report if keep_raw else None,
    )


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 or negative means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def resolve_chunksize(chunksize: Union[int, str], n: int, jobs: int) -> int:
    """Effective pool chunk size for ``n`` tasks over ``jobs`` workers.

    ``"auto"`` (the default) balances pipe round-trips against tail
    latency: ``max(1, n // (jobs * 8))`` gives every worker about eight
    chunks, so short runs amortise the per-task IPC while the last chunks
    still load-balance.  An integer pins the chunk size explicitly.
    """
    if chunksize == "auto":
        return max(1, n // (jobs * 8))
    size = int(chunksize)
    if size < 1:
        raise ValueError(f"chunksize must be positive or 'auto', got {chunksize!r}")
    return size


def _pool_map(func: Callable[[Any], Any], items: Sequence[Any], jobs: int) -> List[Any]:
    """Map ``func`` over ``items`` serially or over a transient pool.

    Legacy helper kept for :func:`map_seeds` (arbitrary callables, no
    template); order is kept, and an empty item list never touches the
    pool machinery.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(func, items, chunksize=1)


def map_seeds(
    run: Callable[[int], Any],
    seeds: Sequence[int],
    jobs: int = 1,
) -> List[Any]:
    """Run ``run(seed)`` for every seed, optionally over a worker pool.

    With ``jobs == 1`` any callable works; with more workers ``run`` must be
    picklable (a module-level function or :func:`functools.partial` of one).
    Result order always matches ``seeds`` order.
    """
    return _pool_map(run, seeds, jobs)


# ------------------------------------------------------------- worker pool
@dataclass(frozen=True)
class ScenarioTemplate:
    """The per-sweep constants shipped to every worker once.

    A sweep's scenarios share the experiment family, the fixed parameters
    and the collector set; only ``(mac, propagation, seed, axis-values)``
    vary.  Shipping the shared part through the pool initializer shrinks
    every task to that delta.
    """

    experiment: str
    fixed: Tuple[Tuple[str, Any], ...]
    metrics: Optional[Tuple[str, ...]]

    @classmethod
    def of(cls, sweep: Sweep) -> "ScenarioTemplate":
        return cls(
            experiment=sweep.experiment,
            fixed=tuple(sorted(sweep.fixed.items())),
            metrics=tuple(sweep.metrics) if sweep.metrics is not None else None,
        )


#: Per-worker state installed by :func:`_worker_init` (fork-safe module
#: global; each worker process has its own copy).
_WORKER_STATE: Dict[str, Any] = {"template": None, "keep_raw": False}


def _worker_init(blob: bytes) -> None:
    """Pool initializer: install the shared scenario template once per worker
    and configure the worker's construction-artifact cache."""
    template, keep_raw, build_cache, cache_size, fault_plan = pickle.loads(blob)
    _WORKER_STATE["template"] = template
    _WORKER_STATE["keep_raw"] = keep_raw
    ARTIFACT_CACHE.configure(enabled=build_cache, maxsize=cache_size)
    if fault_plan is not None:
        from repro.service import faults

        faults.mark_worker_process()
        faults.install(fault_plan)
    elif FAULT_HOOK is not None:
        # Forked workers inherit the parent's process-wide hook; a plan-free
        # campaign must actively uninstall it or stale faults keep firing.
        from repro.service import faults

        faults.install(None)


def _execute_scenario_task(scenario: Scenario) -> RunRecord:
    """Worker entry for explicit scenario lists (no shared template)."""
    return execute_scenario(scenario, keep_raw=_WORKER_STATE["keep_raw"])


def _scenario_from_delta(
    template: ScenarioTemplate, delta: Tuple[str, Optional[str], int, Dict[str, Any]]
) -> Scenario:
    mac, propagation, seed, axis_params = delta
    params = dict(template.fixed)
    params.update(axis_params)
    return Scenario(
        experiment=template.experiment,
        mac=mac,
        seed=seed,
        params=params,
        propagation=propagation,
        metrics=template.metrics,
    )


def _execute_delta_task(delta: Tuple[str, Optional[str], int, Dict[str, Any]]) -> RunRecord:
    """Worker entry for sweep deltas: rebuild the scenario from the
    initializer-shipped template plus ``(mac, propagation, seed, axes)``."""
    scenario = _scenario_from_delta(_WORKER_STATE["template"], delta)
    return execute_scenario(scenario, keep_raw=_WORKER_STATE["keep_raw"])


def _execute_batch_task(
    deltas: Sequence[Tuple[str, Optional[str], int, Dict[str, Any]]]
) -> List[RunRecord]:
    """Worker entry for a same-configuration seed group: run the group's
    scenarios through the lockstep seed-batch executor."""
    from repro.campaign.batch_runner import execute_seed_batch

    template: ScenarioTemplate = _WORKER_STATE["template"]
    scenarios = [_scenario_from_delta(template, delta) for delta in deltas]
    return execute_seed_batch(scenarios, keep_raw=_WORKER_STATE["keep_raw"])


def _iter_delta_groups(
    deltas: Iterable[Tuple[str, Optional[str], int, Dict[str, Any]]],
    batch_seeds: int,
) -> Iterator[List[Tuple[str, Optional[str], int, Dict[str, Any]]]]:
    """Group consecutive deltas that differ only in the seed, ``batch_seeds``
    apiece (the affinity sort already clusters same-configuration seeds)."""
    group: List[Tuple[str, Optional[str], int, Dict[str, Any]]] = []
    for delta in deltas:
        if (
            group
            and len(group) < batch_seeds
            and group[0][0] == delta[0]
            and group[0][1] == delta[1]
            and group[0][3] == delta[3]
        ):
            group.append(delta)
            continue
        if group:
            yield group
        group = [delta]
    if group:
        yield group


def _check_indices(indices: Sequence[int], size: int) -> List[int]:
    """Validate a subset of expansion indices: sorted, unique, in range."""
    checked = [int(index) for index in indices]
    if checked != sorted(set(checked)):
        raise ValueError("indices must be sorted and unique")
    if checked and (checked[0] < 0 or checked[-1] >= size):
        raise ValueError(
            f"indices must lie in [0, {size}); got range "
            f"[{checked[0]}, {checked[-1]}]"
        )
    return checked


def _iter_subset(sweep: Sweep, indices: Sequence[int]) -> Iterator[Scenario]:
    """Scenarios of the sweep at the given (sorted) expansion indices.

    Walks the lazy expansion once and stops at the last requested index,
    so a small subset of a huge sweep never expands the tail.
    """
    index_set = frozenset(indices)
    last = indices[-1]
    for position, scenario in enumerate(sweep):
        if position in index_set:
            yield scenario
        if position >= last:
            return


def _shutdown_pool(pool: "multiprocessing.pool.Pool") -> None:
    """Finalizer target: release a raw pool's worker processes."""
    pool.terminate()
    pool.join()


class WorkerPool:
    """A persistent multiprocessing pool with warm, template-initialised workers.

    The raw ``multiprocessing.Pool`` is (re)created only when the
    initializer payload — the pickled ``(template, keep_raw)`` pair —
    changes; successive campaigns over the same sweep shape reuse the warm
    workers.  The pool is released by :meth:`close` or, failing that, by a
    garbage-collection finalizer.
    """

    def __init__(self, processes: int) -> None:
        self.processes = processes
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._blob: Optional[bytes] = None
        self._finalizer = None

    def ensure(
        self,
        template: Optional[ScenarioTemplate],
        keep_raw: bool,
        build_cache: bool = True,
        cache_size: Optional[int] = None,
        fault_plan: Optional[Any] = None,
    ):
        """Return a pool whose workers carry the given template and cache config."""
        blob = pickle.dumps(
            (template, keep_raw, build_cache, cache_size, fault_plan),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        if self._pool is None or blob != self._blob:
            self.close()
            self._pool = multiprocessing.Pool(
                processes=self.processes, initializer=_worker_init, initargs=(blob,)
            )
            self._blob = blob
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    @property
    def alive(self) -> bool:
        """True while worker processes exist."""
        return self._pool is not None

    def close(self) -> None:
        """Release the worker processes; safe to call repeatedly."""
        if self._pool is not None:
            self._finalizer.detach()
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._blob = None


class CampaignRunner:
    """Execute sweeps (or explicit scenario lists) over a worker pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (the default) runs serially in-process,
        ``0`` means one worker per CPU.
    keep_raw:
        Attach the full :class:`SimReport` to every record.
    chunksize:
        Tasks per pool chunk: ``"auto"`` (default) uses
        ``max(1, n // (jobs * 8))``, an integer pins it.  Larger chunks
        amortise IPC for short runs; ``1`` reproduces the pre-warm-pool
        dispatch behaviour.
    build_cache:
        Reuse construction artifacts (topology, O(n²) link derivation, PER
        rows) across runs sharing a configuration cache key (default on;
        ``--no-build-cache`` on the CLI).  Sweeps are additionally
        dispatched in configuration-affinity order — runs sharing a key
        land consecutively in the same worker chunk — while records are
        re-emitted in the original deterministic expansion order.
        Results are bit-identical with the cache on and off.
    cache_size:
        Per-process LRU capacity of the artifact cache (each worker keeps
        its own).  None (the default) keeps each process's current
        capacity — in particular a serial run never shrinks (and thereby
        evicts from) a cache the caller enlarged via
        ``configure_artifact_cache``.
    batch_seeds:
        Run up to this many consecutive same-configuration seeds as one
        lockstep batch through :class:`~repro.sim.batch.SeedBatchExecutor`
        (``--batch-seeds`` on the CLI; default 1 = per-seed execution).
        The affinity sort already clusters a sweep's same-configuration
        seeds adjacently, so groups form naturally; records are re-emitted
        in expansion order and stay bit-identical to per-seed runs —
        configurations the batch kernel does not support fall back to
        serial execution inside the executor.

    With ``jobs > 1`` the runner owns a persistent :class:`WorkerPool`
    created on first use and reused across ``run`` / ``iter_records`` /
    ``stream`` calls; :meth:`close` (or ``with CampaignRunner(...) as r:``)
    releases it.  Results are bit-identical for every worker count and
    chunk size.
    """

    def __init__(
        self,
        jobs: int = 1,
        keep_raw: bool = False,
        chunksize: Union[int, str] = "auto",
        build_cache: bool = True,
        cache_size: Optional[int] = None,
        batch_seeds: int = 1,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.keep_raw = keep_raw
        resolve_chunksize(chunksize, 0, self.jobs)  # validate eagerly
        self.chunksize = chunksize
        self.build_cache = bool(build_cache)
        if cache_size is not None and cache_size < 1:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        self.cache_size = cache_size
        if batch_seeds < 1:
            raise ValueError(f"batch_seeds must be positive, got {batch_seeds}")
        self.batch_seeds = batch_seeds
        self.fault_plan = fault_plan
        if fault_plan is not None:
            # Opt-in chaos harness: the plan is active process-wide (the
            # serial path runs in this process; crash faults still only
            # fire in marked worker processes).
            from repro.service import faults

            faults.install(fault_plan)
        elif FAULT_HOOK is not None:
            # A previous campaign's plan is still installed process-wide;
            # clear it so this (and any forked workers) run fault-free.
            from repro.service import faults

            faults.install(None)
        self._pool: Optional[WorkerPool] = None

    # ---------------------------------------------------------------- pool
    def close(self) -> None:
        """Release the persistent worker pool (if one was created)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _worker_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.jobs)
        return self._pool

    def pool_config(self, size: int) -> Dict[str, Any]:
        """The effective pool configuration for a campaign of ``size`` runs
        (surfaced in sweep exports for post-hoc debugging)."""
        parallel = self.jobs > 1 and size > 1
        return {
            "jobs": self.jobs,
            "chunksize": resolve_chunksize(self.chunksize, size, self.jobs) if parallel else 1,
            "pool": "persistent" if parallel else "serial",
            "build_cache": self.build_cache,
            "batch_seeds": self.batch_seeds,
        }

    def _scenarios(self, sweep: Union[Sweep, Iterable[Scenario]]) -> List[Scenario]:
        return sweep.scenarios() if isinstance(sweep, Sweep) else list(sweep)

    def _affinity_order(self, sweep: Sweep, deltas: List[Tuple]) -> Optional[List[int]]:
        """Dispatch permutation grouping runs that share construction artifacts.

        A stable sort by :func:`construction_affinity_key`, so runs sharing
        a key become consecutive (and land in the same worker chunk) while
        each group keeps expansion order.  None when the expansion order is
        already affine — the common case (seeds innermost) costs nothing —
        or when the permutation would displace a run by more than
        :data:`AFFINITY_MAX_DISPLACEMENT` positions, which bounds the
        re-emission buffer of :meth:`_reorder`.
        """
        fixed = dict(sweep.fixed)
        # Seed-dependence is a function of (propagation, construction
        # values) — a handful of distinct pairs per sweep — so memoise it
        # instead of re-resolving registries for every run.
        seed_dependent: Dict[Tuple, bool] = {}
        keys = []
        for mac, propagation, seed, axis_params in deltas:
            params = {**fixed, **axis_params}
            values = construction_values(sweep.experiment, params)
            memo_key = (propagation, values)
            dependent = seed_dependent.get(memo_key)
            if dependent is None:
                dependent = construction_seed_dependent(
                    sweep.experiment, propagation, params
                )
                seed_dependent[memo_key] = dependent
            keys.append(
                construction_affinity_key(
                    sweep.experiment,
                    propagation,
                    seed,
                    params,
                    values=values,
                    seed_dependent=dependent,
                )
            )
        order = sorted(range(len(deltas)), key=keys.__getitem__)
        if order == list(range(len(deltas))):
            return None
        if max(
            abs(original - position) for position, original in enumerate(order)
        ) > AFFINITY_MAX_DISPLACEMENT:
            return None
        return order

    @staticmethod
    def _reorder(results: Iterable[RunRecord], order: List[int]) -> Iterator[RunRecord]:
        """Re-emit affinity-dispatched results in original expansion order.

        Buffers records that finish ahead of their expansion position; the
        buffer is bounded by the dispatch permutation's maximum
        displacement, which :meth:`_affinity_order` caps at
        :data:`AFFINITY_MAX_DISPLACEMENT`.
        """
        pending: Dict[int, RunRecord] = {}
        next_index = 0
        for position, record in enumerate(results):
            pending[order[position]] = record
            while next_index in pending:
                yield pending.pop(next_index)
                next_index += 1

    def iter_records(
        self,
        sweep: Union[Sweep, Iterable[Scenario]],
        indices: Optional[Sequence[int]] = None,
    ) -> Iterator[RunRecord]:
        """Yield records in deterministic expansion order as they finish.

        Sweeps are expanded lazily: with ``jobs > 1`` their scenarios cross
        the pipe as ``(mac, propagation, seed, axis-values)`` deltas against
        the initializer-shipped template, so a million-run sweep is never
        materialised in the parent.  An empty sweep (or scenario list)
        yields nothing.

        ``indices`` optionally restricts execution to a sorted subset of
        the sweep's expansion indices — the seam the campaign service uses
        for checkpoint resume (run only the pending set) and shard dispatch
        (run one shard's slice).  The subset flows through the same
        template/affinity/seed-batch machinery as a full sweep, and records
        are yielded in the subset's expansion order.  Results per scenario
        are bit-identical to a full-sweep run.

        With the build cache enabled, sweeps up to
        :data:`AFFINITY_REORDER_LIMIT` runs are dispatched in
        configuration-affinity order (runs sharing construction artifacts
        consecutively, so each worker's artifact LRU sees same-key
        streaks); records are still yielded in expansion order.  Larger
        sweeps keep lazy expansion-order dispatch.

        Exhaust the iterator (or let :meth:`run` / :meth:`stream` do so):
        abandoning it mid-sweep terminates the worker pool — ``imap``'s
        feeder thread would otherwise keep executing the remaining
        scenarios in the background — and the next campaign re-warms it.
        """
        if isinstance(sweep, Sweep):
            scenarios: Optional[List[Scenario]] = None
            if indices is not None:
                indices = _check_indices(indices, sweep.size)
                size = len(indices)
            else:
                size = sweep.size
        else:
            scenarios = list(sweep)
            if indices is not None:
                indices = _check_indices(indices, len(scenarios))
                scenarios = [scenarios[index] for index in indices]
            size = len(scenarios)
        if size == 0:
            return

        def expand() -> Iterator[Scenario]:
            if scenarios is not None:
                return iter(scenarios)
            if indices is None:
                return iter(sweep)
            return _iter_subset(sweep, indices)

        if self.jobs == 1 or size == 1:
            if self.batch_seeds > 1:
                from repro.campaign.batch_runner import execute_seed_batch, iter_seed_groups

                for group in iter_seed_groups(expand(), self.batch_seeds):
                    with ARTIFACT_CACHE.override(
                        enabled=self.build_cache, maxsize=self.cache_size
                    ):
                        records = execute_seed_batch(group, keep_raw=self.keep_raw)
                    yield from records
                return
            for scenario in expand():
                # Scope the runner's cache configuration to the execution
                # itself (not the yield) so caller code running between
                # records sees the process-wide defaults.
                with ARTIFACT_CACHE.override(
                    enabled=self.build_cache, maxsize=self.cache_size
                ):
                    record = execute_scenario(scenario, keep_raw=self.keep_raw)
                yield record
            return
        chunk = resolve_chunksize(self.chunksize, size, self.jobs)
        if scenarios is None:
            template = ScenarioTemplate.of(sweep)
            pool = self._worker_pool().ensure(
                template, self.keep_raw, self.build_cache, self.cache_size,
                self.fault_plan,
            )
            axes = sweep.axes

            def delta_of(s: Scenario) -> Tuple:
                return (s.mac, s.propagation, s.seed, {name: s.params[name] for name in axes})

            from repro.campaign.batch_runner import batchable_experiment

            batching = self.batch_seeds > 1 and batchable_experiment(sweep.experiment)

            def dispatch(deltas: Iterable[Tuple]) -> Iterable[RunRecord]:
                """imap the deltas, grouped into seed batches when enabled.

                Flattening the groups' record lists restores one record per
                delta in dispatch order, so the expansion-order re-emission
                below is oblivious to batching.
                """
                if not batching:
                    return pool.imap(_execute_delta_task, deltas, chunksize=chunk)
                groups = _iter_delta_groups(deltas, self.batch_seeds)
                group_chunk = resolve_chunksize(
                    self.chunksize, max(1, size // self.batch_seeds), self.jobs
                )
                return (
                    record
                    for group in pool.imap(_execute_batch_task, groups, chunksize=group_chunk)
                    for record in group
                )

            order: Optional[List[int]] = None
            if self.build_cache and size <= AFFINITY_REORDER_LIMIT:
                delta_list = [delta_of(s) for s in expand()]
                order = self._affinity_order(sweep, delta_list)
                if order is not None:
                    dispatched = [delta_list[index] for index in order]
                else:
                    dispatched = delta_list
                results: Iterable[RunRecord] = dispatch(dispatched)
                if order is not None:
                    results = self._reorder(results, order)
            else:
                results = dispatch(delta_of(s) for s in expand())
        else:
            pool = self._worker_pool().ensure(
                None, self.keep_raw, self.build_cache, self.cache_size,
                self.fault_plan,
            )
            results = pool.imap(_execute_scenario_task, scenarios, chunksize=chunk)
        completed = False
        try:
            yield from results
            completed = True
        finally:
            if not completed:
                # Closed early (caller stopped consuming, or a worker/sink
                # raised): drop the pool so the outstanding tasks die with
                # it instead of burning CPU behind the caller's back.
                self.close()

    def run(self, sweep: Union[Sweep, Iterable[Scenario]]) -> CampaignResult:
        """Run every scenario of the sweep; records keep expansion order.

        Materialises the full record list — use :meth:`stream` for sweeps
        too large to hold in memory.
        """
        return CampaignResult(records=list(self.iter_records(sweep)))

    def stream(
        self,
        sweep: Union[Sweep, Iterable[Scenario]],
        sinks: Sequence[RecordSink] = (),
        collect: bool = True,
    ) -> ResultFrame:
        """Run the sweep, pushing each record through the sinks as it finishes.

        Memory stays constant when ``collect`` is False (records are
        dropped after the sinks have seen them — pair with a
        :class:`~repro.campaign.frame.JsonlRecordSink` and/or
        :class:`~repro.campaign.frame.TableAggregator`); with ``collect``
        the scalar rows are additionally accumulated into the returned
        columnar :class:`ResultFrame`.  Sinks are closed on return, also
        on error — including ``KeyboardInterrupt``, so an interrupted
        checkpointed sweep always leaves readable (flushed and closed)
        output files and no orphan worker processes.
        """
        frame = ResultFrame()
        try:
            for record in self.iter_records(sweep):
                for sink in sinks:
                    sink.write(record)
                if collect:
                    frame.append_record(record)
        except BaseException:
            # BaseException on purpose: Ctrl-C raises KeyboardInterrupt in
            # the consumer loop (e.g. inside a sink write), which abandons
            # the iter_records generator without running its cleanup —
            # terminate the pool explicitly so no workers outlive the
            # interrupt.  close() is idempotent with the generator's own
            # finally block.
            self.close()
            raise
        finally:
            for sink in sinks:
                sink.close()
        return frame
