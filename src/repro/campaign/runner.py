"""Campaign execution over a multiprocessing worker pool.

Every scenario is an independent simulation seeded from its own master
seed, so scenarios can run in any order on any number of workers and still
produce bit-identical results — :class:`CampaignRunner` only has to keep
the *record* order deterministic, which mapping over the sweep's
deterministic expansion order guarantees.

The worker entry point :func:`execute_scenario` is a module-level function
(picklable) dispatching on the scenario's experiment family; each family's
runner instruments the simulation with the scenario's ``metrics``
collectors (default: the experiment's :data:`DEFAULT_COLLECTORS`) and the
record's scalar metrics are the resulting report's scalars plus
``sim_time``.

:meth:`CampaignRunner.stream` consumes records as they finish (in order)
and hands them to :class:`~repro.campaign.frame.RecordSink` objects —
JSONL/CSV export and grouped aggregation then run in constant memory, so a
million-run sweep never materialises its record list.
"""

from __future__ import annotations

import fnmatch
import functools
import multiprocessing
import os
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.campaign.frame import RecordSink, ResultFrame
from repro.campaign.records import CampaignResult, RunRecord
from repro.campaign.spec import EXPERIMENT_KINDS, Scenario, Sweep
from repro.experiments import hidden_node, scalability, testbed
from repro.experiments.hidden_node import run_hidden_node
from repro.experiments.scalability import run_scalability
from repro.experiments.testbed import run_star, run_tree
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport

#: Default bound on retained trace records for traced campaign runs; long
#: sweeps with ``trace=True`` then drop (and count) the excess instead of
#: exhausting memory silently.  Pass ``trace_limit`` explicitly to change.
DEFAULT_TRACE_LIMIT = 250_000


def _report_metrics(report: SimReport, traced: bool) -> Dict[str, float]:
    """Flatten a report into the record's scalar metric dictionary.

    Traced runs always carry ``trace_dropped`` (even when 0) so that every
    record of a traced sweep has the same metric set — streaming CSV fixes
    its header from the first record.
    """
    metrics = {name: float(value) for name, value in report.scalars.items()}
    metrics["sim_time"] = report.duration
    if traced or report.trace_dropped:
        metrics["trace_dropped"] = float(report.trace_dropped)
    return metrics


def _campaign_params(scenario: Scenario) -> Dict[str, Any]:
    """Runner kwargs for a scenario, with the campaign trace bound applied."""
    params = dict(scenario.params)
    if params.get("trace") and "trace_limit" not in params:
        params["trace_limit"] = DEFAULT_TRACE_LIMIT
    return params


def _run_hidden_node(scenario: Scenario) -> SimReport:
    return run_hidden_node(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_testbed_tree(scenario: Scenario) -> SimReport:
    return run_tree(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_testbed_star(scenario: Scenario) -> SimReport:
    return run_star(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


def _run_scalability(scenario: Scenario) -> SimReport:
    return run_scalability(
        mac=scenario.mac,
        seed=scenario.seed,
        propagation=scenario.propagation,
        collectors=scenario.metrics,
        **_campaign_params(scenario),
    )


#: Experiment family -> runner returning the scenario's :class:`SimReport`.
_ADAPTERS: Dict[str, Callable[[Scenario], SimReport]] = {
    "hidden-node": _run_hidden_node,
    "testbed-tree": _run_testbed_tree,
    "testbed-star": _run_testbed_star,
    "scalability": _run_scalability,
}

#: Experiment family -> (default collector names, per-collector overrides).
_EXPERIMENT_COLLECTORS: Dict[str, Tuple[Tuple[str, ...], Dict[str, Dict[str, Any]]]] = {
    "hidden-node": (hidden_node.DEFAULT_COLLECTORS, hidden_node.COLLECTOR_OVERRIDES),
    "testbed-tree": (testbed.DEFAULT_COLLECTORS, testbed.COLLECTOR_OVERRIDES),
    "testbed-star": (testbed.DEFAULT_COLLECTORS, testbed.COLLECTOR_OVERRIDES),
    "scalability": (scalability.DEFAULT_COLLECTORS, scalability.COLLECTOR_OVERRIDES),
}

#: Metrics every record can carry regardless of the collector set.
_IMPLICIT_METRICS = ("sim_time", "trace_dropped")


def experiment_metric_names(
    experiment: str,
    collectors: Optional[Sequence[str]] = None,
) -> Tuple[str, ...]:
    """Scalar names (patterns included, e.g. ``pdr_node_*``) the given
    experiment emits with the given collector set (None: its defaults).

    Derived from the collector registry's ``provides`` declarations, so a
    newly registered collector is validated with zero campaign changes.
    """
    try:
        defaults, overrides = _EXPERIMENT_COLLECTORS[experiment]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment!r}; expected one of {EXPERIMENT_KINDS}"
        ) from None
    names: List[str] = []
    for collector in build_collectors(defaults if collectors is None else collectors, overrides):
        for name in collector.provides():
            if name not in names:
                names.append(name)
    names.extend(_IMPLICIT_METRICS)
    return tuple(names)


#: Concrete metric names of every experiment family's *default* collector
#: set (wildcard families like ``pdr_node_*`` excluded); kept for display
#: and as the compatibility view of earlier releases' static table.
EXPERIMENT_METRICS: Dict[str, Tuple[str, ...]] = {
    experiment: tuple(
        name
        for name in experiment_metric_names(experiment)
        if "*" not in name and name != "trace_dropped"
    )
    for experiment in EXPERIMENT_KINDS
}


def is_known_metric(
    experiment: str,
    metric: str,
    collectors: Optional[Sequence[str]] = None,
) -> bool:
    """Whether ``metric`` can occur in records of the given experiment family
    when instrumented with the given collector set (None: its defaults).

    False (not an error) for unknown experiment families, matching the
    pre-redesign lookup-table behaviour.
    """
    if experiment not in _EXPERIMENT_COLLECTORS:
        return False
    for name in experiment_metric_names(experiment, collectors):
        if name == metric or ("*" in name and fnmatch.fnmatchcase(metric, name)):
            return True
    return False


def execute_scenario(scenario: Scenario, keep_raw: bool = False) -> RunRecord:
    """Run one scenario and return its :class:`RunRecord`.

    With ``keep_raw`` the record also carries the full
    :class:`~repro.metrics.report.SimReport` (series, tables, details); the
    scalar metrics are identical either way.
    """
    adapter = _ADAPTERS[scenario.experiment]
    report = adapter(scenario)
    return RunRecord(
        scenario=scenario,
        metrics=_report_metrics(report, traced=bool(scenario.params.get("trace"))),
        raw=report if keep_raw else None,
    )


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value: 0 or negative means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_map(func: Callable[[Any], Any], items: Sequence[Any], jobs: int) -> List[Any]:
    """Map ``func`` over ``items`` serially or over a pool; order is kept."""
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with multiprocessing.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(func, items, chunksize=1)


def map_seeds(
    run: Callable[[int], Any],
    seeds: Sequence[int],
    jobs: int = 1,
) -> List[Any]:
    """Run ``run(seed)`` for every seed, optionally over a worker pool.

    With ``jobs == 1`` any callable works; with more workers ``run`` must be
    picklable (a module-level function or :func:`functools.partial` of one).
    Result order always matches ``seeds`` order.
    """
    return _pool_map(run, seeds, jobs)


class CampaignRunner:
    """Execute sweeps (or explicit scenario lists) over a worker pool.

    Parameters
    ----------
    jobs:
        Worker-process count; ``1`` (the default) runs serially in-process,
        ``0`` means one worker per CPU.
    keep_raw:
        Attach the full :class:`SimReport` to every record.
    """

    def __init__(self, jobs: int = 1, keep_raw: bool = False) -> None:
        self.jobs = resolve_jobs(jobs)
        self.keep_raw = keep_raw

    def _scenarios(self, sweep: Union[Sweep, Iterable[Scenario]]) -> List[Scenario]:
        return sweep.scenarios() if isinstance(sweep, Sweep) else list(sweep)

    def iter_records(self, sweep: Union[Sweep, Iterable[Scenario]]) -> Iterator[RunRecord]:
        """Yield records in deterministic expansion order as they finish.

        With ``jobs > 1`` the pool stays open while the caller consumes the
        iterator — exhaust it (or let :meth:`stream` / :meth:`run` do so).
        """
        scenarios = self._scenarios(sweep)
        worker = functools.partial(execute_scenario, keep_raw=self.keep_raw)
        if self.jobs == 1 or len(scenarios) <= 1:
            for scenario in scenarios:
                yield worker(scenario)
            return
        with multiprocessing.Pool(processes=min(self.jobs, len(scenarios))) as pool:
            yield from pool.imap(worker, scenarios, chunksize=1)

    def run(self, sweep: Union[Sweep, Iterable[Scenario]]) -> CampaignResult:
        """Run every scenario of the sweep; records keep expansion order.

        Materialises the full record list — use :meth:`stream` for sweeps
        too large to hold in memory.
        """
        scenarios = self._scenarios(sweep)
        worker = functools.partial(execute_scenario, keep_raw=self.keep_raw)
        return CampaignResult(records=_pool_map(worker, scenarios, self.jobs))

    def stream(
        self,
        sweep: Union[Sweep, Iterable[Scenario]],
        sinks: Sequence[RecordSink] = (),
        collect: bool = True,
    ) -> ResultFrame:
        """Run the sweep, pushing each record through the sinks as it finishes.

        Memory stays constant when ``collect`` is False (records are
        dropped after the sinks have seen them — pair with a
        :class:`~repro.campaign.frame.JsonlRecordSink` and/or
        :class:`~repro.campaign.frame.TableAggregator`); with ``collect``
        the scalar rows are additionally accumulated into the returned
        columnar :class:`ResultFrame`.  Sinks are closed on return, also
        on error.
        """
        frame = ResultFrame()
        try:
            for record in self.iter_records(sweep):
                for sink in sinks:
                    sink.write(record)
                if collect:
                    frame.append_record(record)
        finally:
            for sink in sinks:
                sink.close()
        return frame
