"""Declarative scenario and sweep specifications.

A :class:`Scenario` captures everything needed to run one simulation — the
experiment family (which fixes the topology and traffic model), the
channel-access scheme, the propagation model, the per-run parameters, and
the master seed — as plain data, so it can be pickled to a worker process,
serialised to JSON, and compared for equality in determinism tests.

A :class:`Sweep` is the declarative form of the loops previously
hand-rolled in ``cli.py`` and ``experiments/*``: a grid of swept axes, a
set of fixed parameters, a list of MAC kinds / propagation models and a
seed list, expanded to the cross-product of scenarios in a deterministic
order.  MAC and propagation names are validated against the registries
(:mod:`repro.mac.registry`, :mod:`repro.phy.registry`), so a newly
registered protocol or channel model is sweepable with zero campaign-layer
changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.mac.registry import MAC_REGISTRY, mac_kinds
from repro.metrics.registry import COLLECTOR_REGISTRY, collector_kinds
from repro.phy.registry import PROPAGATION_REGISTRY, get_propagation_spec, propagation_kinds
from repro.scenario.builder import topology_accepts_seed

#: Experiment families runnable by the campaign layer.  Each fixes a
#: topology and traffic model; see :mod:`repro.campaign.runner` for the
#: mapping onto the experiment runners.
EXPERIMENT_KINDS = (
    "hidden-node",
    "sinr-hidden-node",
    "testbed-tree",
    "testbed-star",
    "scalability",
)

#: Scenario fields that cannot double as sweep parameters.
_RESERVED_PARAMS = ("mac", "seed", "propagation", "metrics")

#: Runner parameters that shape *construction* (topology, link set, PER
#: rows) per experiment family.  The campaign runner groups runs sharing
#: these values — plus the propagation axis and, where construction is
#: seeded, the seed — consecutively, so each warm worker's artifact LRU
#: sees long same-key streaks (configuration-affinity dispatch).  Traffic
#: parameters (``delta``, ``packets_per_node``, durations, ...) are
#: deliberately absent: they never split an artifact group.
CONSTRUCTION_PARAMS: Dict[str, Tuple[str, ...]] = {
    "hidden-node": (
        "link_distance", "propagation_params", "interference", "sinr_threshold_db",
    ),
    "sinr-hidden-node": ("propagation_params", "sinr_threshold_db"),
    "testbed-tree": (
        "link_error_rate", "propagation_params", "interference", "sinr_threshold_db",
    ),
    "testbed-star": (
        "link_error_rate", "propagation_params", "interference", "sinr_threshold_db",
    ),
    "scalability": (
        "topology", "nodes", "rings", "propagation_params",
        "interference", "sinr_threshold_db",
    ),
}

#: The topology each experiment family builds when no ``topology``
#: parameter overrides it (used to decide seed-dependence below).
_DEFAULT_TOPOLOGY: Dict[str, str] = {
    "hidden-node": "hidden-node",
    "sinr-hidden-node": "sinr-hidden-node",
    "testbed-tree": "iotlab-tree",
    "testbed-star": "iotlab-star",
    "scalability": "concentric",
}


def construction_seed_dependent(
    experiment: str, propagation: Optional[str], params: Mapping[str, Any]
) -> bool:
    """Whether this run's construction artifacts depend on the master seed.

    True when the propagation model is seeded and the run does not pin a
    seed via ``propagation_params``, or when the (possibly overridden)
    topology factory is seeded — the builder injects the scenario seed in
    both cases, so runs with different seeds build different artifacts.
    """
    if propagation is not None:
        propagation_params = params.get("propagation_params") or {}
        if "seed" not in propagation_params:
            if get_propagation_spec(propagation).accepts_seed():
                return True
    topology = params.get("topology") or _DEFAULT_TOPOLOGY.get(experiment)
    if topology is None:
        return False
    try:
        return topology_accepts_seed(str(topology))
    except KeyError:
        # Unknown topology name: assume seeded so affinity grouping never
        # merges runs that might build different artifacts.
        return True


def construction_values(experiment: str, params: Mapping[str, Any]) -> Tuple[str, ...]:
    """The construction-relevant parameter values of one run, repr-rendered
    (sortable across heterogeneous axes)."""
    names = CONSTRUCTION_PARAMS.get(experiment, ())
    return tuple(repr(params.get(name)) for name in names)


def construction_affinity_key(
    experiment: str,
    propagation: Optional[str],
    seed: int,
    params: Mapping[str, Any],
    *,
    values: Optional[Tuple[str, ...]] = None,
    seed_dependent: Optional[bool] = None,
) -> Tuple[Any, ...]:
    """Sortable grouping key: runs with equal keys share construction artifacts.

    A conservative over-approximation of
    :meth:`repro.scenario.config.ScenarioConfig.cache_key` computed from
    campaign-level data alone: equal keys are guaranteed to share
    artifacts, unequal keys merely *may* differ.

    Seed-dependence is fully determined by ``(propagation, values)``, so
    batch callers (``CampaignRunner._affinity_order``) may pass
    precomputed ``values`` / ``seed_dependent`` to memoise the registry
    lookups per distinct pair instead of per run — the key assembly
    itself lives only here.
    """
    if values is None:
        values = construction_values(experiment, params)
    if seed_dependent is None:
        seed_dependent = construction_seed_dependent(experiment, propagation, params)
    seed_part: Tuple[int, int] = (1, seed) if seed_dependent else (0, 0)
    return (propagation or "", values, seed_part)


def _check_mac(mac: str) -> None:
    if mac not in MAC_REGISTRY:
        raise ValueError(f"unknown MAC kind {mac!r}; expected one of {mac_kinds()}")


def _check_propagation(propagation: Optional[str]) -> None:
    if propagation is not None and propagation not in PROPAGATION_REGISTRY:
        raise ValueError(
            f"unknown propagation model {propagation!r}; expected one of "
            f"{propagation_kinds()} (or None for the topology's explicit links)"
        )


def _check_metrics(metrics: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
    """Validate collector names against the registry; normalise to a tuple."""
    if metrics is None:
        return None
    names = tuple(metrics)
    if not names:
        raise ValueError("metrics must name at least one collector (or be None for defaults)")
    for name in names:
        if name not in COLLECTOR_REGISTRY:
            raise ValueError(
                f"unknown metric collector {name!r}; expected one of {collector_kinds()} "
                "(or None for the experiment's default collectors)"
            )
    return names


@dataclass
class Scenario:
    """One fully specified simulation run.

    ``params`` holds keyword arguments forwarded verbatim to the underlying
    experiment runner (e.g. ``delta``/``packets_per_node``/``warmup`` for
    ``hidden-node``, ``rings``/``duration`` for ``scalability``).
    ``propagation`` optionally names a registered propagation model that
    re-derives the topology's links; None keeps the explicit links.
    ``metrics`` optionally names the metric collectors instrumenting the
    run (validated against :mod:`repro.metrics.registry`); None uses the
    experiment's default collector set.
    """

    experiment: str
    mac: str = "qma"
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    propagation: Optional[str] = None
    metrics: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENT_KINDS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; expected one of {EXPERIMENT_KINDS}"
            )
        _check_mac(self.mac)
        _check_propagation(self.propagation)
        self.metrics = _check_metrics(self.metrics)

    @property
    def label(self) -> str:
        """Compact human-readable identifier used in tables and logs."""
        parts = [self.experiment, self.mac]
        if self.propagation is not None:
            parts.append(f"propagation={self.propagation}")
        if self.metrics is not None:
            parts.append(f"metrics={','.join(self.metrics)}")
        parts += [f"{key}={self.params[key]}" for key in sorted(self.params)]
        parts.append(f"seed={self.seed}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "mac": self.mac,
            "seed": self.seed,
            "params": dict(self.params),
            "propagation": self.propagation,
            "metrics": list(self.metrics) if self.metrics is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        metrics = data.get("metrics")
        return cls(
            experiment=data["experiment"],
            mac=data.get("mac", "qma"),
            seed=int(data.get("seed", 0)),
            params=dict(data.get("params", {})),
            propagation=data.get("propagation"),
            metrics=tuple(metrics) if metrics is not None else None,
        )


@dataclass
class Sweep:
    """A cross-product of scenarios over MACs, propagation models, axes and seeds.

    ``grid`` maps parameter names to the values swept over; ``fixed`` maps
    parameter names to constants shared by every scenario.  Expansion order
    is deterministic: MAC kinds in the given order, then propagation models
    in the given order, then grid axes sorted by name (values in the given
    order), then seeds — so two equal sweeps always expand to the same
    scenario list.

    ``metrics`` optionally names the metric collectors instrumenting every
    scenario of the sweep (validated against the collector registry); None
    uses each experiment's default collector set.
    """

    experiment: str
    macs: Sequence[str] = ("qma",)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    fixed: Mapping[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    propagations: Sequence[Optional[str]] = (None,)
    metrics: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        self.metrics = _check_metrics(self.metrics)
        if self.experiment not in EXPERIMENT_KINDS:
            raise ValueError(
                f"unknown experiment {self.experiment!r}; expected one of {EXPERIMENT_KINDS}"
            )
        if not self.macs:
            raise ValueError("macs must not be empty")
        for mac in self.macs:
            _check_mac(mac)
        if not self.propagations:
            raise ValueError("propagations must not be empty")
        for propagation in self.propagations:
            _check_propagation(propagation)
        if not self.seeds:
            raise ValueError("seeds must not be empty")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ValueError(f"parameters swept and fixed at once: {sorted(overlap)}")
        reserved = set(_RESERVED_PARAMS) & (set(self.grid) | set(self.fixed))
        if reserved:
            raise ValueError(
                f"reserved parameter names {sorted(reserved)}: use the "
                "macs/seeds/propagations/metrics fields of the sweep instead"
            )
        for key, values in self.grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")

    @property
    def axes(self) -> Tuple[str, ...]:
        """Names of the swept parameter axes, sorted for deterministic order."""
        return tuple(sorted(self.grid))

    @property
    def size(self) -> int:
        """Number of scenarios the sweep expands to."""
        count = len(self.macs) * len(self.propagations) * len(self.seeds)
        for values in self.grid.values():
            count *= len(values)
        return count

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (JSON-serialisable, round-trips via :meth:`from_dict`).

        Sequences are normalised to lists, so ``from_dict(to_dict())``
        produces an equal dictionary — the campaign service hashes this
        canonical form into the sweep's spec digest.
        """
        return {
            "experiment": self.experiment,
            "macs": list(self.macs),
            "grid": {name: list(values) for name, values in self.grid.items()},
            "fixed": dict(self.fixed),
            "seeds": [int(seed) for seed in self.seeds],
            "propagations": list(self.propagations),
            "metrics": list(self.metrics) if self.metrics is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        metrics = data.get("metrics")
        return cls(
            experiment=data["experiment"],
            macs=list(data.get("macs", ("qma",))),
            grid={name: list(values) for name, values in data.get("grid", {}).items()},
            fixed=dict(data.get("fixed", {})),
            seeds=[int(seed) for seed in data.get("seeds", (0,))],
            propagations=list(data.get("propagations", (None,))),
            metrics=list(metrics) if metrics is not None else None,
        )

    def scenarios(self) -> List[Scenario]:
        """Expand the sweep to its scenario list (deterministic order)."""
        return list(self)

    def __iter__(self) -> Iterator[Scenario]:
        axis_names = self.axes
        axis_values = [self.grid[name] for name in axis_names]
        for mac in self.macs:
            for propagation in self.propagations:
                for combo in itertools.product(*axis_values):
                    params = dict(self.fixed)
                    params.update(zip(axis_names, combo))
                    for seed in self.seeds:
                        yield Scenario(
                            experiment=self.experiment,
                            mac=mac,
                            seed=seed,
                            params=params.copy(),
                            propagation=propagation,
                            metrics=self.metrics,
                        )

    def __len__(self) -> int:
        return self.size
