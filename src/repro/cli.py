"""Command-line interface: regenerate the data behind any figure of the paper.

Examples::

    qma-repro table4
    qma-repro fig7 --deltas 10 25 50 --packets 200 --repetitions 3
    qma-repro fig21 --rings 1 2 --duration 230
    qma-repro fig26
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.stats import confidence_interval_95
from repro.core.rewards import format_reward_table
from repro.experiments.handshake import PAPER_PROBABILITIES, handshake_expected_messages
from repro.experiments.hidden_node import run_fluctuating, run_hidden_node, run_slot_utilisation
from repro.experiments.scalability import run_scalability
from repro.experiments.testbed import run_star, run_tree


def _print_table(header: List[str], rows: List[List[str]]) -> None:
    widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def cmd_table4(args: argparse.Namespace) -> None:
    print(format_reward_table(num_agents=args.agents))


def cmd_fig7(args: argparse.Namespace) -> None:
    macs = args.macs
    rows = []
    for delta in args.deltas:
        for mac in macs:
            samples = [
                run_hidden_node(
                    mac=mac,
                    delta=delta,
                    packets_per_node=args.packets,
                    warmup=args.warmup,
                    seed=seed,
                )
                for seed in range(args.repetitions)
            ]
            pdr, ci = confidence_interval_95([s.pdr for s in samples])
            queue, _ = confidence_interval_95([s.average_queue_level for s in samples])
            delay, _ = confidence_interval_95([s.average_delay for s in samples])
            rows.append(
                [delta, mac, f"{pdr:.3f}", f"±{ci:.3f}", f"{queue:.2f}", f"{delay * 1000:.1f} ms"]
            )
    _print_table(["delta", "mac", "pdr", "ci95", "avg queue", "avg delay"], rows)


def cmd_fig12(args: argparse.Namespace) -> None:
    histories = run_fluctuating(duration=args.duration)
    for node_id, history in histories.items():
        print(f"node {node_id}: {len(history)} frames")
        step = max(1, len(history) // 20)
        for time, value in history[::step]:
            print(f"  t={time:8.1f}s  cumulative Q = {value:8.1f}")


def cmd_slots(args: argparse.Namespace) -> None:
    snapshot, final = run_slot_utilisation(
        delta=args.delta, snapshot_time=args.snapshot, duration=args.duration
    )
    print(f"collision free (snapshot): {snapshot.collision_free}")
    print(f"collision free (final):    {final.collision_free}")
    for node, slots in sorted(final.assignments.items()):
        used = {m: a.short_name for m, a in sorted(final.node_subslots(node).items())}
        print(f"node {node}: {used}")


def cmd_testbed(args: argparse.Namespace) -> None:
    runner = run_tree if args.scenario == "tree" else run_star
    rows = []
    for mac in args.macs:
        result = runner(
            mac=mac, delta=args.delta, packets_per_node=args.packets, seed=args.seed
        )
        for node_id, pdr in sorted(result.per_node_pdr.items()):
            rows.append([args.scenario, mac, node_id, f"{pdr:.3f}"])
        rows.append([args.scenario, mac, "overall", f"{result.overall_pdr:.3f}"])
    _print_table(["topology", "mac", "node", "pdr"], rows)


def cmd_fig21(args: argparse.Namespace) -> None:
    rows = []
    for rings in args.rings:
        for mac in args.macs:
            result = run_scalability(
                mac=mac, rings=rings, duration=args.duration, warmup=args.warmup, seed=args.seed
            )
            rows.append(
                [
                    result.num_nodes,
                    mac,
                    f"{result.secondary_pdr:.3f}",
                    f"{result.gts_request_success:.3f}",
                    f"{result.allocation_rate:.2f}/s",
                    f"{result.primary_pdr:.3f}",
                ]
            )
    _print_table(
        ["nodes", "mac", "secondary pdr", "gts-req success", "(de)alloc rate", "primary pdr"],
        rows,
    )


def cmd_fig26(args: argparse.Namespace) -> None:
    curve = handshake_expected_messages(args.probabilities, retries=args.retries)
    rows = [[f"{p:.1f}", f"{messages:.2f}"] for p, messages in sorted(curve.items())]
    _print_table(["p", "expected messages"], rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qma-repro",
        description="Regenerate the evaluation data of the QMA paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table4", help="local/global reward table")
    p.add_argument("--agents", type=int, default=3)
    p.set_defaults(func=cmd_table4)

    p = sub.add_parser("fig7", help="hidden-node PDR / queue / delay sweep (Figs. 7-9)")
    p.add_argument("--macs", nargs="+", default=["qma", "slotted-csma", "unslotted-csma"])
    p.add_argument("--deltas", nargs="+", type=float, default=[1, 10, 25, 50, 100])
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--warmup", type=float, default=100.0)
    p.add_argument("--repetitions", type=int, default=3)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig12", help="fluctuating-traffic convergence (Fig. 12)")
    p.add_argument("--duration", type=float, default=1500.0)
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser("slots", help="subslot utilisation (Figs. 13-15)")
    p.add_argument("--delta", type=float, default=10.0)
    p.add_argument("--snapshot", type=float, default=150.0)
    p.add_argument("--duration", type=float, default=400.0)
    p.set_defaults(func=cmd_slots)

    p = sub.add_parser("testbed", help="tree / star per-node PDR (Figs. 18-19)")
    p.add_argument("scenario", choices=["tree", "star"])
    p.add_argument("--macs", nargs="+", default=["qma", "unslotted-csma"])
    p.add_argument("--delta", type=float, default=10.0)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_testbed)

    p = sub.add_parser("fig21", help="DSME secondary-traffic scalability (Figs. 21-22)")
    p.add_argument("--macs", nargs="+", default=["qma", "slotted-csma", "unslotted-csma"])
    p.add_argument("--rings", nargs="+", type=int, default=[1, 2, 3, 4])
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--warmup", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig21)

    p = sub.add_parser("fig26", help="expected handshake messages (Fig. 26)")
    p.add_argument("--probabilities", nargs="+", type=float, default=list(PAPER_PROBABILITIES))
    p.add_argument("--retries", type=int, default=3)
    p.set_defaults(func=cmd_fig26)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
