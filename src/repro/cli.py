"""Command-line interface: regenerate the data behind any figure of the paper.

The figure commands and the generic ``sweep`` command run through the
campaign layer (:mod:`repro.campaign`), so every sweep accepts ``--jobs N``
to fan the MAC x parameter x seed cross-product out over a process pool;
results are independent of the worker count.

Examples::

    qma-repro table4
    qma-repro fig7 --deltas 10 25 50 --packets 200 --repetitions 3 --jobs 4
    qma-repro fig21 --rings 1 2 --duration 230
    qma-repro sweep hidden-node --grid delta=5,25 --set packets_per_node=200 \\
        --seeds 5 --jobs 4 --csv out.csv
    qma-repro sweep hidden-node --grid metrics=pdr,delay --grid delta=10,25 \\
        --jsonl out.jsonl
    qma-repro fig26
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List, Optional

from repro.campaign.frame import (
    CsvRecordSink,
    JsonDocumentSink,
    JsonlRecordSink,
    TableAggregator,
)
from repro.campaign.records import CampaignResult
from repro.campaign.runner import (
    CampaignRunner,
    experiment_metric_names,
    is_known_metric,
)
from repro.campaign.spec import EXPERIMENT_KINDS, Sweep
from repro.core.rewards import format_reward_table
from repro.experiments.handshake import PAPER_PROBABILITIES, handshake_expected_messages
from repro.experiments.hidden_node import run_fluctuating, run_slot_utilisation
from repro.mac.registry import MAC_REGISTRY, mac_kinds
from repro.metrics.registry import COLLECTOR_REGISTRY, collector_kinds
from repro.phy.registry import PROPAGATION_REGISTRY, propagation_kinds
from repro.scenario.builder import TOPOLOGY_REGISTRY, topology_kinds


def _print_table(header: List[str], rows: List[List[str]]) -> None:
    widths = [max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def _export(campaign: CampaignResult, args: argparse.Namespace) -> None:
    """Write the per-run records behind a table to JSON/CSV when requested."""
    if getattr(args, "json_path", None):
        campaign.to_json(args.json_path)
        print(f"wrote {len(campaign)} records to {args.json_path} (json)")
    if getattr(args, "csv_path", None):
        campaign.to_csv(args.csv_path)
        print(f"wrote {len(campaign)} records to {args.csv_path} (csv)")


def _add_propagation_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--propagation",
        default=None,
        help="registered propagation model deriving connectivity from node "
        "positions (default: the topology's explicit links); see 'qma-repro list'",
    )


def _add_collectors_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--collectors",
        nargs="+",
        default=None,
        metavar="NAME",
        help="metric collectors instrumenting every run (default: the "
        "experiment's standard set); see 'qma-repro list'",
    )


def _parse_chunksize(text: str) -> Any:
    """Parse a ``--chunksize`` value: ``auto`` or a positive integer."""
    if text == "auto":
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected 'auto' or a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"chunksize must be positive, got {value}")
    return value


def _add_campaign_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = one per CPU)"
    )
    parser.add_argument(
        "--chunksize",
        type=_parse_chunksize,
        default="auto",
        help="scenarios per worker-pool chunk ('auto' = n // (jobs * 8), "
        "min 1; larger chunks amortise IPC for short runs)",
    )
    parser.add_argument(
        "--no-build-cache",
        dest="build_cache",
        action="store_false",
        default=True,
        help="rebuild topology/links/PER rows for every run instead of "
        "reusing cached construction artifacts across runs that share a "
        "configuration (results are bit-identical either way)",
    )
    parser.add_argument(
        "--batch-seeds",
        type=int,
        default=1,
        metavar="N",
        help="run up to N consecutive same-configuration seeds as one "
        "lockstep vectorized batch (testbed experiments; results are "
        "bit-identical to per-seed execution; 1 disables batching)",
    )
    parser.add_argument(
        "--json", dest="json_path", metavar="PATH", help="export per-run records as JSON"
    )
    parser.add_argument(
        "--csv", dest="csv_path", metavar="PATH", help="export per-run records as CSV"
    )


def _add_sweep_spec_options(parser: argparse.ArgumentParser) -> None:
    """Arguments describing *what* to run (shared by ``sweep`` and ``submit``)."""
    parser.add_argument("experiment", choices=EXPERIMENT_KINDS)
    parser.add_argument(
        "--macs", nargs="+", default=None,
        help="MAC kinds to sweep (default: qma; or use --grid mac=...)",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep a parameter over comma-separated values (repeatable)",
    )
    parser.add_argument(
        "--set",
        dest="fixed",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="fix a parameter for every scenario (repeatable)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, help="number of seeds per grid point"
    )
    parser.add_argument("--base-seed", type=int, default=0)
    _add_propagation_option(parser)
    _add_collectors_option(parser)


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    """Supervision flags shared by checkpointed execution verbs."""
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="per-run attempt budget before a persistently failing run is "
        "quarantined instead of aborting the campaign (default: 3)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per run; a stalled backend attempt is "
        "aborted and the pending runs retried (default: no timeout)",
    )
    parser.add_argument(
        "--no-supervise",
        action="store_true",
        help="dispatch directly without the supervision layer: any worker "
        "failure aborts the whole campaign (pre-supervision behaviour)",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="deterministic chaos harness (testing aid): semicolon-separated "
        "faults, e.g. 'crash@seed=1;hang:30@seed=2;torn@after=10'",
    )


def _add_service_address_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="service address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8765,
        help="service port (default: 8765; 0 picks an ephemeral port when serving)",
    )


def _add_hosts_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--hosts",
        nargs="+",
        default=None,
        metavar="HOST:PORT[*CAP]",
        help="dispatch shards to remote campaign agents (see 'qma-repro "
        "agent'); each entry is HOST:PORT with an optional per-host "
        "concurrent-shard cap (HOST:PORT*CAP), @FILE or a plain path "
        "reads a hosts file (one entry per line, # comments)",
    )


def _parse_value(text: str) -> Any:
    """Parse a grid/fixed parameter value: int, then float, then string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _parse_assignments(pairs: List[str], split_values: bool) -> Dict[str, Any]:
    parsed: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise SystemExit(f"expected KEY=VALUE, got {pair!r}")
        if split_values:
            parsed[key] = [_parse_value(item) for item in value.split(",") if item]
        else:
            parsed[key] = _parse_value(value)
    return parsed


def cmd_table4(args: argparse.Namespace) -> None:
    print(format_reward_table(num_agents=args.agents))


def _format_defaults(defaults: Dict[str, Any]) -> str:
    if not defaults:
        return "(no config)"
    return ", ".join(
        f"{key}={'<required>' if value is ... else value}"
        for key, value in defaults.items()
    )


def cmd_list(args: argparse.Namespace) -> None:
    """Print the registered MAC kinds, propagation models and topologies."""
    print("MAC protocols (repro.mac.registry):")
    for name in mac_kinds():
        spec = MAC_REGISTRY.get(name)
        config_name = spec.config_cls.__name__ if spec.config_cls else "-"
        print(f"  {name:<16} {spec.protocol.__name__:<16} {spec.description}")
        print(f"  {'':<16} {config_name}: {_format_defaults(spec.config_defaults())}")
    print()
    print("propagation models (repro.phy.registry):")
    for name in propagation_kinds():
        spec = PROPAGATION_REGISTRY.get(name)
        print(f"  {name:<16} {spec.model.__name__:<24} {spec.description}")
        print(f"  {'':<16} defaults: {_format_defaults(spec.config_defaults())}")
    print()
    print("topologies (repro.scenario.builder):")
    for name in topology_kinds():
        factory = TOPOLOGY_REGISTRY.get(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        print(f"  {name:<16} {doc[0] if doc else ''}")
    print()
    print("metric collectors (repro.metrics.registry):")
    for name in collector_kinds():
        spec = COLLECTOR_REGISTRY.get(name)
        provides = ", ".join(spec.provides()) or "-"
        print(f"  {name:<16} {spec.collector_cls.__name__:<24} {spec.description}")
        print(f"  {'':<16} scalars: {provides}")


def cmd_fig7(args: argparse.Namespace) -> None:
    sweep = Sweep(
        experiment="hidden-node",
        macs=args.macs,
        propagations=[args.propagation],
        grid={"delta": args.deltas},
        fixed={"packets_per_node": args.packets, "warmup": args.warmup},
        seeds=list(range(args.repetitions)),
        metrics=args.collectors,
    )
    with CampaignRunner(
        jobs=args.jobs,
        chunksize=args.chunksize,
        build_cache=args.build_cache,
        batch_seeds=args.batch_seeds,
    ) as runner:
        campaign = runner.run(sweep)
    by = ("delta", "mac")
    try:
        pdr = campaign.aggregate("pdr", by=by)
        queue = campaign.aggregate("average_queue_level", by=by)
        delay = campaign.aggregate("average_delay", by=by)
    except KeyError as exc:
        raise SystemExit(
            f"qma-repro fig7: error: {exc.args[0]} — the chosen --collectors "
            "must include pdr, queue and delay"
        )
    rows = []
    for delta in args.deltas:
        for mac in args.macs:
            key = (delta, mac)
            rows.append(
                [
                    delta,
                    mac,
                    f"{pdr[key]['mean']:.3f}",
                    f"±{pdr[key]['ci95']:.3f}",
                    f"{queue[key]['mean']:.2f}",
                    f"{delay[key]['mean'] * 1000:.1f} ms",
                ]
            )
    _print_table(["delta", "mac", "pdr", "ci95", "avg queue", "avg delay"], rows)
    _export(campaign, args)


def cmd_fig12(args: argparse.Namespace) -> None:
    histories = run_fluctuating(duration=args.duration)
    for node_id, history in histories.items():
        print(f"node {node_id}: {len(history)} frames")
        step = max(1, len(history) // 20)
        for time, value in history[::step]:
            print(f"  t={time:8.1f}s  cumulative Q = {value:8.1f}")


def cmd_slots(args: argparse.Namespace) -> None:
    snapshot, final = run_slot_utilisation(
        delta=args.delta, snapshot_time=args.snapshot, duration=args.duration
    )
    print(f"collision free (snapshot): {snapshot.collision_free}")
    print(f"collision free (final):    {final.collision_free}")
    for node, slots in sorted(final.assignments.items()):
        used = {m: a.short_name for m, a in sorted(final.node_subslots(node).items())}
        print(f"node {node}: {used}")


def cmd_testbed(args: argparse.Namespace) -> None:
    sweep = Sweep(
        experiment=f"testbed-{args.scenario}",
        macs=args.macs,
        propagations=[args.propagation],
        fixed={"delta": args.delta, "packets_per_node": args.packets},
        seeds=[args.seed],
        metrics=args.collectors,
    )
    with CampaignRunner(
        jobs=args.jobs,
        keep_raw=True,
        chunksize=args.chunksize,
        build_cache=args.build_cache,
        batch_seeds=args.batch_seeds,
    ) as runner:
        campaign = runner.run(sweep)
    rows = []
    for record in campaign:
        report = record.raw
        for node_id, pdr in sorted(report.tables.get("pdr_per_node", {}).items()):
            rows.append([args.scenario, record.scenario.mac, node_id, f"{pdr:.3f}"])
        if "overall_pdr" in report.scalars:
            rows.append(
                [args.scenario, record.scenario.mac, "overall", f"{report.scalars['overall_pdr']:.3f}"]
            )
    _print_table(["topology", "mac", "node", "pdr"], rows)
    _export(campaign, args)


def cmd_fig21(args: argparse.Namespace) -> None:
    sweep = Sweep(
        experiment="scalability",
        macs=args.macs,
        propagations=[args.propagation],
        grid={"rings": args.rings},
        fixed={"duration": args.duration, "warmup": args.warmup},
        seeds=[args.seed],
        metrics=args.collectors,
    )
    with CampaignRunner(
        jobs=args.jobs,
        chunksize=args.chunksize,
        build_cache=args.build_cache,
        batch_seeds=args.batch_seeds,
    ) as runner:
        campaign = runner.run(sweep)
    records = {
        (record.scenario.params["rings"], record.scenario.mac): record for record in campaign
    }
    rows = []
    for rings in args.rings:
        for mac in args.macs:
            metrics = records[(rings, mac)].metrics
            try:
                rows.append(
                    [
                        int(metrics["num_nodes"]),
                        mac,
                        f"{metrics['secondary_pdr']:.3f}",
                        f"{metrics['gts_request_success']:.3f}",
                        f"{metrics['allocation_rate']:.2f}/s",
                        f"{metrics['primary_pdr']:.3f}",
                    ]
                )
            except KeyError as exc:
                raise SystemExit(
                    f"qma-repro fig21: error: metric {exc.args[0]!r} missing — "
                    "the chosen --collectors must include dsme"
                )
    _print_table(
        ["nodes", "mac", "secondary pdr", "gts-req success", "(de)alloc rate", "primary pdr"],
        rows,
    )
    _export(campaign, args)


def _sweep_from_args(args: argparse.Namespace) -> Sweep:
    """Build the :class:`Sweep` described by sweep/submit command arguments."""
    try:
        grid = _parse_assignments(args.grid, split_values=True)
        # ``mac``, ``propagation`` and ``metrics`` are registry axes, not
        # runner parameters: lift them out of the grid so that e.g.
        # ``--grid mac=qma,tdma propagation=unit-disk,fading metrics=pdr,delay``
        # resolves through the registries with zero per-component code.
        # Giving the same axis through both a flag and the grid is ambiguous.
        if "mac" in grid and args.macs is not None:
            raise SystemExit(
                "qma-repro sweep: error: give the MAC axis either via --macs "
                "or via --grid mac=..., not both"
            )
        if "propagation" in grid and args.propagation is not None:
            raise SystemExit(
                "qma-repro sweep: error: give the propagation axis either via "
                "--propagation or via --grid propagation=..., not both"
            )
        if "metrics" in grid and args.collectors is not None:
            raise SystemExit(
                "qma-repro sweep: error: give the collector set either via "
                "--collectors or via --grid metrics=..., not both"
            )
        if "mac" in grid:
            macs = [str(m) for m in grid.pop("mac")]
        else:
            macs = args.macs if args.macs is not None else ["qma"]
        propagations: List[Optional[str]] = (
            [str(p) for p in grid.pop("propagation")]
            if "propagation" in grid
            else [args.propagation]
        )
        collectors: Optional[List[str]] = (
            [str(c) for c in grid.pop("metrics")] if "metrics" in grid else args.collectors
        )
        sweep = Sweep(
            experiment=args.experiment,
            macs=macs,
            propagations=propagations,
            grid=grid,
            fixed=_parse_assignments(args.fixed, split_values=False),
            seeds=[args.base_seed + i for i in range(args.seeds)],
            metrics=collectors,
        )
    except ValueError as exc:
        raise SystemExit(f"qma-repro sweep: error: {exc}")
    # Fail fast on metric-name typos before spending hours on the sweep.
    for metric in getattr(args, "metrics", None) or ():
        if not is_known_metric(args.experiment, metric, collectors=sweep.metrics):
            names = experiment_metric_names(args.experiment, collectors=sweep.metrics)
            raise SystemExit(
                f"qma-repro sweep: error: unknown metric {metric!r} for "
                f"{args.experiment}; available: {', '.join(names)}"
            )
    return sweep


def _by_axes(sweep: Sweep) -> tuple:
    """Grouping columns of the sweep's aggregate table."""
    by = ("mac",)
    if any(propagation is not None for propagation in sweep.propagations):
        by += ("propagation",)
    return by + sweep.axes


def _print_aggregate(
    aggregator: TableAggregator, by: tuple, metrics: Optional[List[str]], verb: str
) -> None:
    """Print the mean/CI table of the finished campaign."""
    available = aggregator.metric_names()
    for metric in metrics or ():
        if metric not in available:  # e.g. pdr_node_<id> for an absent node
            raise SystemExit(
                f"qma-repro {verb}: error: metric {metric!r} not present in the "
                f"results; available: {', '.join(available)}"
            )
    rows = []
    for metric in metrics or available:
        for key, stats in aggregator.groups(metric).items():
            rows.append(
                list(key)
                + [metric, f"{stats['mean']:.4f}", f"±{stats['ci95']:.4f}", int(stats["n"])]
            )
    _print_table(list(by) + ["metric", "mean", "ci95", "n"], rows)


def _print_sink_lines(sinks: List[Any]) -> None:
    for sink in sinks[1:]:
        kind = {
            JsonlRecordSink: "jsonl",
            CsvRecordSink: "csv",
            JsonDocumentSink: "json",
        }[type(sink)]
        print(f"wrote {sink.written} records to {sink.path} ({kind})")


def _supervision_options(args: argparse.Namespace) -> Dict[str, Any]:
    """Flat backend+supervision options of a checkpointed CLI campaign."""
    options: Dict[str, Any] = {
        "jobs": getattr(args, "jobs", 1),
        "chunksize": getattr(args, "chunksize", "auto"),
        "build_cache": getattr(args, "build_cache", True),
        "batch_seeds": getattr(args, "batch_seeds", 1),
    }
    if getattr(args, "hosts", None):
        options["backend"] = "remote"
        options["hosts"] = list(args.hosts)
    elif getattr(args, "shards", None):
        options["backend"] = "shard"
        options["shards"] = args.shards
    if getattr(args, "no_supervise", False):
        options["supervise"] = False
    if getattr(args, "retries", None) is not None:
        options["max_attempts"] = args.retries
    if getattr(args, "run_timeout", None) is not None:
        options["run_timeout"] = args.run_timeout
    if getattr(args, "inject_faults", None):
        options["faults"] = args.inject_faults
    return options


def _print_supervision_event(event: Dict[str, Any]) -> None:
    """Narrate retry/degrade/quarantine events on stderr as they happen."""
    kind = event.get("kind")
    if kind == "retry":
        line = (
            f"supervisor: attempt {event['attempt']} on {event['backend']} "
            f"left {event['pending']} run(s) pending"
        )
        if event.get("timed_out"):
            line += " (run timeout)"
        if event.get("error"):
            line += f": {str(event['error']).splitlines()[0]}"
    elif kind == "degrade":
        line = (
            f"supervisor: degrading {event['from_backend']} -> "
            f"{event['to_backend']} after {event['after_failures']} failed attempt(s)"
        )
    elif kind == "quarantine":
        line = (
            f"supervisor: quarantined run {event['index']} (seed {event['seed']}) "
            f"after {event['attempts']} attempt(s): {event['failure']}"
        )
    else:
        return
    print(line, file=sys.stderr, flush=True)


def _backend_from_args(args: argparse.Namespace) -> "DispatchBackend":
    """Supervised dispatch backend of a checkpointed CLI campaign."""
    from repro.service.supervisor import make_supervised

    try:
        return make_supervised(
            _supervision_options(args), on_event=_print_supervision_event
        )
    except ValueError as exc:
        raise SystemExit(f"qma-repro: error: {exc}")


def cmd_sweep(args: argparse.Namespace) -> None:
    sweep = _sweep_from_args(args)
    by = _by_axes(sweep)
    if args.checkpoint:
        _run_checkpointed_sweep(args, sweep, by)
        return

    runner = CampaignRunner(
        jobs=args.jobs,
        chunksize=args.chunksize,
        build_cache=args.build_cache,
        batch_seeds=args.batch_seeds,
    )
    # The effective pool configuration rides along in --json/--jsonl output
    # so throughput anomalies can be traced to their dispatch settings.
    pool_config = runner.pool_config(sweep.size)

    # Stream records through sinks: aggregation, JSONL and CSV run in
    # constant memory; only the legacy --json document buffers records.
    sinks = _sweep_sinks(args, sweep, by, meta={"pool": pool_config})
    aggregator = sinks[0]

    print(
        f"running {sweep.size} scenarios ({args.experiment}) with "
        f"jobs={pool_config['jobs']} chunksize={pool_config['chunksize']} "
        f"pool={pool_config['pool']}"
    )
    try:
        with runner:
            runner.stream(sweep, sinks=sinks, collect=False)
    except TypeError as exc:
        # Unknown --grid/--set keys surface as unexpected-keyword errors from
        # the experiment runner (possibly re-raised by the pool); anything
        # else is a real bug whose traceback must be kept.
        if "unexpected keyword argument" not in str(exc):
            raise
        raise SystemExit(f"qma-repro sweep: error: {exc}")

    _print_aggregate(aggregator, by, args.metrics, "sweep")
    _print_sink_lines(sinks)


def _sweep_sinks(
    args: argparse.Namespace, sweep: Sweep, by: tuple, meta: Dict[str, Any]
) -> List[Any]:
    """Record sinks of a sweep-style command: aggregator first, exports after."""
    aggregator = TableAggregator(by=by)
    sinks: List[Any] = [aggregator]
    if getattr(args, "jsonl_path", None):
        sinks.append(JsonlRecordSink(args.jsonl_path, meta=meta))
    if getattr(args, "csv_path", None):
        # Pre-declare the collector-provided columns: the streaming CSV
        # header is fixed at the first record, so metrics that only appear
        # later (e.g. trace_dropped) must be announced up front.
        declared = [
            name
            for name in experiment_metric_names(sweep.experiment, collectors=sweep.metrics)
            if "*" not in name
        ]
        sinks.append(CsvRecordSink(args.csv_path, columns=declared))
    if getattr(args, "json_path", None):
        sinks.append(JsonDocumentSink(args.json_path, meta=meta))
    return sinks


def _run_checkpointed_sweep(args: argparse.Namespace, sweep: Sweep, by: tuple) -> None:
    """The ``sweep --checkpoint`` / ``resume`` execution path."""
    from repro.service.checkpoint import run_checkpointed
    from repro.service.journal import JournalError
    from repro.service.manifest import sweep_digest

    backend = _backend_from_args(args)
    sinks = _sweep_sinks(
        args, sweep, by, meta={"checkpoint": {"journal": args.checkpoint}}
    )
    aggregator = sinks[0]
    print(
        f"running {sweep.size} scenarios ({sweep.experiment}) under checkpoint "
        f"{args.checkpoint} (spec {sweep_digest(sweep)[:12]}, "
        f"backend {backend.name})",
        flush=True,
    )
    try:
        outcome = run_checkpointed(
            sweep,
            args.checkpoint,
            backend=backend,
            sinks=sinks,
            meta={"cli": "sweep"},
        )
    except JournalError as exc:
        raise SystemExit(f"qma-repro sweep: error: {exc}")
    except TypeError as exc:
        if "unexpected keyword argument" not in str(exc):
            raise
        raise SystemExit(f"qma-repro sweep: error: {exc}")
    finally:
        backend.close()
    print(
        f"resumed {outcome.resumed} completed run(s) from the journal, "
        f"executed {outcome.executed}"
    )
    _print_aggregate(aggregator, by, getattr(args, "metrics", None), "sweep")
    _print_sink_lines(sinks)
    if outcome.status == "partial":
        from repro.service.supervisor import quarantine_path

        print(
            f"campaign PARTIAL: {len(outcome.quarantined)} run(s) quarantined "
            f"(indices {outcome.quarantined}); details in "
            f"{quarantine_path(args.checkpoint)}; re-dispatch with "
            f"'qma-repro retry-quarantined {args.checkpoint}'",
            file=sys.stderr,
        )
        raise SystemExit(4)
    if outcome.status == "cancelled":
        print("campaign CANCELLED before completion", file=sys.stderr)
        raise SystemExit(1)


def cmd_serve(args: argparse.Namespace) -> None:
    """Run the long-lived campaign service until interrupted."""
    import asyncio

    from repro.service.server import CampaignServer, CampaignService

    options: Dict[str, Any] = {
        "backend": args.backend,
        "jobs": args.jobs,
        "chunksize": args.chunksize,
        "build_cache": args.build_cache,
        "batch_seeds": args.batch_seeds,
    }
    if args.backend == "remote" and not args.hosts:
        raise SystemExit(
            "qma-repro serve: error: --backend remote requires --hosts"
        )
    if args.hosts:
        options["backend"] = "remote"
        options["hosts"] = list(args.hosts)
        from repro.service.remote import parse_hosts

        try:
            specs = parse_hosts(args.hosts, source="--hosts")
        except ValueError as exc:
            raise SystemExit(f"qma-repro serve: error: {exc}")
        print(
            "remote dispatch to "
            + ", ".join(f"{spec.key}*{spec.cap}" for spec in specs),
            file=sys.stderr,
        )
    elif args.backend == "shard":
        options["shards"] = args.shards
    elif args.backend == "pool" and args.throttle:
        options["throttle"] = args.throttle
    if args.no_supervise:
        options["supervise"] = False
    if args.retries is not None:
        options["max_attempts"] = args.retries
    if args.run_timeout is not None:
        options["run_timeout"] = args.run_timeout
    fault_plan = None
    if args.inject_faults:
        from repro.service.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_spec(args.inject_faults)
        except ValueError as exc:
            raise SystemExit(f"qma-repro serve: error: {exc}")
        options["faults"] = args.inject_faults
        print(f"fault injection active: {args.inject_faults}", file=sys.stderr)
    service = CampaignService(args.root, backend_options=options)

    async def _run() -> None:
        server = CampaignServer(service, args.host, args.port, fault_plan=fault_plan)
        host, port = await server.start()
        # The smoke harness parses this line to find an ephemeral port.
        print(f"campaign service listening on http://{host}:{port} (root: {args.root})", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("campaign service stopped")


def _service_client(args: argparse.Namespace) -> "ServiceClient":
    from repro.service.client import ServiceClient

    return ServiceClient(args.host, args.port)


def _submit_options(args: argparse.Namespace) -> Dict[str, Any]:
    """Backend overrides the submit verb sends along (only flags given)."""
    options: Dict[str, Any] = {}
    for key, name in (
        ("backend", "backend"),
        ("jobs", "jobs"),
        ("batch_seeds", "batch_seeds"),
        ("shards", "shards"),
        ("hosts", "hosts"),
    ):
        value = getattr(args, key, None)
        if value is not None:
            options[name] = value
    if options.get("hosts") and "backend" not in options:
        options["backend"] = "remote"
    return options


def _print_job_snapshot(snapshot: Dict[str, Any]) -> None:
    print(
        f"job {snapshot['job']}: {snapshot['state']} "
        f"{snapshot['completed']}/{snapshot['total']} "
        f"({snapshot['experiment']}, spec {snapshot['digest'][:12]})"
    )
    if snapshot.get("error"):
        print(f"  error: {snapshot['error']}")
    if snapshot.get("quarantined"):
        print(f"  quarantined: {snapshot['quarantined']} run(s)")
    for event in (snapshot.get("events") or [])[-5:]:
        detail = " ".join(
            f"{key}={str(value)[:80]}"
            for key, value in sorted(event.items())
            if key != "kind" and value not in (None, "", False)
        )
        print(f"  [{event.get('kind')}] {detail}")
    rows = [
        [name, stats["n"], f"{stats['mean']:.4f}", f"±{stats['ci95']:.4f}"]
        for name, stats in sorted(snapshot.get("metrics", {}).items())
    ]
    if rows:
        _print_table(["metric", "n", "mean", "ci95"], rows)


def cmd_submit(args: argparse.Namespace) -> None:
    """Submit a sweep to a running campaign service."""
    from repro.service.client import ServiceError

    sweep = _sweep_from_args(args)
    client = _service_client(args)
    try:
        ack = client.submit(sweep.to_dict(), options=_submit_options(args) or None)
    except (ServiceError, ConnectionError, OSError) as exc:
        raise SystemExit(f"qma-repro submit: error: {exc}")
    print(
        f"submitted {ack['job']}: {ack['total']} runs, spec {ack['digest'][:12]}, "
        f"journal {ack['journal']}"
    )
    if args.wait:
        try:
            snapshot = client.wait(ack["job"], timeout=args.timeout)
        except (ServiceError, TimeoutError) as exc:
            raise SystemExit(f"qma-repro submit: error: {exc}")
        _print_job_snapshot(snapshot)


def cmd_status(args: argparse.Namespace) -> None:
    """Show job progress and live metric aggregates of a running service."""
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        if args.job:
            _print_job_snapshot(client.status(args.job)[0])
            return
        snapshots = client.status()
    except (ServiceError, ConnectionError, OSError) as exc:
        raise SystemExit(f"qma-repro status: error: {exc}")
    if not snapshots:
        print("no jobs submitted")
        return
    rows = [
        [
            snap["job"],
            snap["state"],
            f"{snap['completed']}/{snap['total']}",
            snap.get("quarantined") or "",
            snap["experiment"],
            snap["digest"][:12],
            # Errors carry the shard's multi-line stderr tail; the table
            # keeps the first line, `status --job` prints it whole.
            (snap.get("error") or "").splitlines()[0] if snap.get("error") else "",
        ]
        for snap in snapshots
    ]
    _print_table(["job", "state", "done", "quar", "experiment", "spec", "error"], rows)
    try:
        host_rows = client.hosts()
    except (ServiceError, ConnectionError, OSError):
        host_rows = []  # pre-remote server, or it went away mid-status
    if host_rows:
        print()
        _print_hosts_rows(host_rows)


def _format_beat_age(age: Any) -> str:
    return "-" if age is None else f"{float(age):.1f}s"


def _print_hosts_rows(host_rows: List[Dict[str, Any]]) -> None:
    rows = [
        [
            host["key"],
            host["state"],
            host["cap"],
            host["shards"],
            host["failures"],
            _format_beat_age(host.get("last_beat_age")),
        ]
        for host in host_rows
    ]
    _print_table(["host", "state", "cap", "shards", "fails", "beat"], rows)


def cmd_hosts(args: argparse.Namespace) -> None:
    """List remote dispatch agents, their health and recent failure events."""
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        host_rows = client.hosts()
    except (ServiceError, ConnectionError, OSError) as exc:
        raise SystemExit(f"qma-repro hosts: error: {exc}")
    if not host_rows:
        print("no remote hosts registered (service runs a local backend)")
        return
    _print_hosts_rows(host_rows)
    for host in host_rows:
        for event in (host.get("events") or [])[-5:]:
            stamp = time.strftime(
                "%H:%M:%S", time.localtime(float(event.get("time", 0)))
            )
            print(
                f"  {host['key']} [{event.get('kind')}] {stamp} "
                f"{event.get('detail', '')}"
            )


def cmd_agent(args: argparse.Namespace) -> None:
    """Run a campaign agent executing shard jobs for remote dispatchers."""
    from repro.service.agent import CampaignAgent, AgentServer

    agent = CampaignAgent(
        workdir=args.workdir, max_jobs=args.max_jobs, name=args.name
    )
    server = AgentServer(agent, args.host, args.port)
    host, port = server.start()
    # Harnesses parse this line to find an ephemeral port.
    print(
        f"campaign agent {agent.name} listening on {host}:{port} "
        f"(workdir: {agent.workdir})",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        print("campaign agent stopped")
    finally:
        server.stop()


def cmd_resume(args: argparse.Namespace) -> None:
    """Resume a checkpointed sweep from its journal (sweep comes from the header)."""
    from repro.service.journal import CheckpointJournal, JournalError

    try:
        journal = CheckpointJournal.open(args.journal)
    except (OSError, JournalError) as exc:
        raise SystemExit(f"qma-repro resume: error: {exc}")
    try:
        sweep = journal.sweep
        pending = len(journal.pending_indices())
    finally:
        journal.close()
    print(
        f"journal {args.journal}: {journal.total - pending}/{journal.total} "
        f"complete, resuming {pending} run(s)"
    )
    args.checkpoint = args.journal
    _run_checkpointed_sweep(args, sweep, _by_axes(sweep))


def cmd_cancel(args: argparse.Namespace) -> None:
    """Cancel a queued or running campaign-service job."""
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        snapshot = client.cancel(args.job)
    except (ServiceError, ConnectionError, OSError) as exc:
        raise SystemExit(f"qma-repro cancel: error: {exc}")
    note = " (cancelling, draining in-flight runs)" if snapshot.get("cancelling") else ""
    print(
        f"job {snapshot['job']}: {snapshot['state']}{note} "
        f"{snapshot['completed']}/{snapshot['total']}"
    )


def cmd_retry_quarantined(args: argparse.Namespace) -> None:
    """Re-dispatch a journal's quarantined runs with a fresh attempt budget."""
    from repro.service.journal import JournalError
    from repro.service.supervisor import (
        load_quarantine,
        quarantine_path,
        retry_quarantined,
    )

    qpath = quarantine_path(args.journal)
    entries = load_quarantine(qpath)
    if not entries:
        print(f"{args.journal}: no quarantined runs")
        return
    for entry in entries:
        print(
            f"retrying run {entry['index']} (seed {entry['seed']}, "
            f"{len(entry['attempts'])} failed attempt(s))"
        )
    try:
        count, outcome = retry_quarantined(
            args.journal,
            _supervision_options(args),
            on_event=_print_supervision_event,
        )
    except (OSError, JournalError) as exc:
        raise SystemExit(f"qma-repro retry-quarantined: error: {exc}")
    done = outcome.total - len(outcome.quarantined)
    print(f"retried {count} run(s): campaign {outcome.status} ({done}/{outcome.total})")
    if outcome.status == "partial":
        print(
            f"{len(outcome.quarantined)} run(s) quarantined again "
            f"(indices {outcome.quarantined}); details in {qpath}",
            file=sys.stderr,
        )
        raise SystemExit(4)


def cmd_compact(args: argparse.Namespace) -> None:
    """Seal a journal's completed prefix into an immutable segment file."""
    import os

    from repro.service.journal import CheckpointJournal, JournalError

    try:
        journal = CheckpointJournal.open(args.journal)
    except (OSError, JournalError) as exc:
        raise SystemExit(f"qma-repro compact: error: {exc}")
    try:
        before = os.path.getsize(args.journal)
        segment = journal.compact(min_runs=args.min_runs)
        after = os.path.getsize(args.journal)
    finally:
        journal.close()
    if segment is None:
        print(
            f"{args.journal}: nothing to compact "
            f"(fewer than {args.min_runs} newly sealable run(s))"
        )
        return
    print(f"sealed segment {segment}; journal {before} -> {after} bytes")


def cmd_fig26(args: argparse.Namespace) -> None:
    curve = handshake_expected_messages(args.probabilities, retries=args.retries)
    rows = [[f"{p:.1f}", f"{messages:.2f}"] for p, messages in sorted(curve.items())]
    _print_table(["p", "expected messages"], rows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qma-repro",
        description="Regenerate the evaluation data of the QMA paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table4", help="local/global reward table")
    p.add_argument("--agents", type=int, default=3)
    p.set_defaults(func=cmd_table4)

    p = sub.add_parser(
        "list", help="registered MAC kinds, propagation models and topologies"
    )
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("fig7", help="hidden-node PDR / queue / delay sweep (Figs. 7-9)")
    p.add_argument("--macs", nargs="+", default=["qma", "slotted-csma", "unslotted-csma"])
    p.add_argument("--deltas", nargs="+", type=float, default=[1, 10, 25, 50, 100])
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--warmup", type=float, default=100.0)
    p.add_argument("--repetitions", type=int, default=3)
    _add_propagation_option(p)
    _add_collectors_option(p)
    _add_campaign_options(p)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig12", help="fluctuating-traffic convergence (Fig. 12)")
    p.add_argument("--duration", type=float, default=1500.0)
    p.set_defaults(func=cmd_fig12)

    p = sub.add_parser("slots", help="subslot utilisation (Figs. 13-15)")
    p.add_argument("--delta", type=float, default=10.0)
    p.add_argument("--snapshot", type=float, default=150.0)
    p.add_argument("--duration", type=float, default=400.0)
    p.set_defaults(func=cmd_slots)

    p = sub.add_parser("testbed", help="tree / star per-node PDR (Figs. 18-19)")
    p.add_argument("scenario", choices=["tree", "star"])
    p.add_argument("--macs", nargs="+", default=["qma", "unslotted-csma"])
    p.add_argument("--delta", type=float, default=10.0)
    p.add_argument("--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    _add_propagation_option(p)
    _add_collectors_option(p)
    _add_campaign_options(p)
    p.set_defaults(func=cmd_testbed)

    p = sub.add_parser("fig21", help="DSME secondary-traffic scalability (Figs. 21-22)")
    p.add_argument("--macs", nargs="+", default=["qma", "slotted-csma", "unslotted-csma"])
    p.add_argument("--rings", nargs="+", type=int, default=[1, 2, 3, 4])
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--warmup", type=float, default=200.0)
    p.add_argument("--seed", type=int, default=0)
    _add_propagation_option(p)
    _add_collectors_option(p)
    _add_campaign_options(p)
    p.set_defaults(func=cmd_fig21)

    p = sub.add_parser("sweep", help="run an arbitrary campaign grid in parallel")
    _add_sweep_spec_options(p)
    p.add_argument(
        "--metrics", nargs="+", default=None, help="metrics to tabulate (default: all)"
    )
    p.add_argument(
        "--jsonl",
        dest="jsonl_path",
        metavar="PATH",
        help="stream per-run records to a JSONL file while the sweep runs "
        "(constant memory, one flushed JSON object per record)",
    )
    p.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal every completed run to PATH; re-running the same "
        "command resumes from the journal instead of recomputing "
        "(output is bit-identical to an uninterrupted sweep)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="with --checkpoint: split the campaign into N affinity-ordered "
        "subprocess shards, each with --jobs workers",
    )
    _add_hosts_option(p)
    _add_campaign_options(p)
    _add_supervision_options(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve", help="run the long-lived campaign service (HTTP + ndjson)"
    )
    _add_service_address_options(p)
    p.add_argument(
        "--root",
        default=".qma-campaigns",
        help="directory holding the per-campaign checkpoint journals "
        "(default: .qma-campaigns)",
    )
    p.add_argument(
        "--backend",
        choices=("pool", "shard", "remote"),
        default="pool",
        help="dispatch backend for submitted campaigns (default: pool)",
    )
    p.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard count when --backend shard (default: 2)",
    )
    _add_hosts_option(p)
    p.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep after each completed run (demo/testing aid: makes live "
        "progress observable on tiny sweeps)",
    )
    _add_campaign_options(p)
    _add_supervision_options(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a sweep to a running campaign service")
    _add_sweep_spec_options(p)
    _add_service_address_options(p)
    p.add_argument(
        "--backend", choices=("pool", "shard", "remote"), default=None,
        help="override the service's dispatch backend for this campaign",
    )
    p.add_argument("--jobs", type=int, default=None, help="override worker processes")
    p.add_argument(
        "--batch-seeds", type=int, default=None, metavar="N",
        help="override seed batching",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N", help="override shard count"
    )
    _add_hosts_option(p)
    p.add_argument(
        "--wait", action="store_true",
        help="poll until the campaign finishes and print its final aggregates",
    )
    p.add_argument(
        "--timeout", type=float, default=3600.0,
        help="--wait timeout in seconds (default: 3600)",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("status", help="show campaign service jobs and live aggregates")
    _add_service_address_options(p)
    p.add_argument("--job", default=None, help="show one job in detail (with metrics)")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "hosts",
        help="list remote dispatch agents, their health and recent failures",
    )
    _add_service_address_options(p)
    p.set_defaults(func=cmd_hosts)

    p = sub.add_parser(
        "agent",
        help="run a campaign agent executing shard jobs for remote dispatchers",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = ephemeral, printed on start)",
    )
    p.add_argument("--workdir", default=None, help="job/journal scratch directory")
    p.add_argument(
        "--max-jobs", type=int, default=0, metavar="N",
        help="maximum concurrent shard workers (default: 0 = unbounded)",
    )
    p.add_argument("--name", default=None, help="agent name reported to dispatchers")
    p.set_defaults(func=cmd_agent)

    p = sub.add_parser(
        "resume", help="resume a checkpointed sweep from its journal file"
    )
    p.add_argument("journal", help="checkpoint journal written by sweep --checkpoint")
    p.add_argument(
        "--metrics", nargs="+", default=None, help="metrics to tabulate (default: all)"
    )
    p.add_argument(
        "--jsonl", dest="jsonl_path", metavar="PATH",
        help="stream the merged records to a JSONL file",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the remaining work as N subprocess shards",
    )
    _add_hosts_option(p)
    _add_campaign_options(p)
    _add_supervision_options(p)
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "cancel", help="cancel a queued or running campaign-service job"
    )
    p.add_argument("job", help="job id returned by submit")
    _add_service_address_options(p)
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser(
        "retry-quarantined",
        help="re-dispatch a journal's quarantined runs with a fresh attempt budget",
    )
    p.add_argument("journal", help="checkpoint journal of the partial campaign")
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the retries as N subprocess shards",
    )
    _add_hosts_option(p)
    _add_campaign_options(p)
    _add_supervision_options(p)
    p.set_defaults(func=cmd_retry_quarantined)

    p = sub.add_parser(
        "compact",
        help="seal a journal's completed prefix into an immutable segment file",
    )
    p.add_argument("journal", help="checkpoint journal to compact")
    p.add_argument(
        "--min-runs",
        type=int,
        default=1,
        metavar="N",
        help="only compact when at least N new runs are sealable (default: 1)",
    )
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser("fig26", help="expected handshake messages (Fig. 26)")
    p.add_argument("--probabilities", nargs="+", type=float, default=list(PAPER_PROBABILITIES))
    p.add_argument("--retries", type=int, default=3)
    p.set_defaults(func=cmd_fig26)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
