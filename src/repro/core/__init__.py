"""QMA — the Q-learning-based multiple access scheme (the paper's contribution).

The package contains every building block of Sect. 3 and 4 of the paper:

* :mod:`repro.core.actions` — the action set {QBackoff, QCCA, QSend};
* :mod:`repro.core.rewards` — the local reward functions (Eq. 6-8) and the
  conceptual global reward table (Table 4);
* :mod:`repro.core.qtable` — the tabular Q-representation with the
  cooperative multi-agent update extended by the penalty ξ (Eq. 5) and the
  explicit policy table (Eq. 3);
* :mod:`repro.core.exploration` — parameter-based exploration (Fig. 4) plus
  the ε-greedy / constant-ε strategies used for the ablation study;
* :mod:`repro.core.startup` — the cautious-startup phase (Sect. 4.3);
* :mod:`repro.core.neighbours` — tracking of piggybacked neighbour queue
  levels;
* :mod:`repro.core.mac` — the QMA MAC protocol driven by a subslot clock.
"""

from repro.core.actions import QAction
from repro.core.config import QmaConfig
from repro.core.exploration import (
    ConstantEpsilon,
    EpsilonGreedy,
    ExplorationStrategy,
    ParameterBasedExploration,
)
from repro.core.mac import QmaMac
from repro.core.neighbours import NeighbourQueueTracker
from repro.core.qtable import QTable
from repro.core.rewards import (
    RewardFunction,
    global_reward,
    local_reward,
    reward_table,
)
from repro.core.startup import CautiousStartup

__all__ = [
    "CautiousStartup",
    "ConstantEpsilon",
    "EpsilonGreedy",
    "ExplorationStrategy",
    "NeighbourQueueTracker",
    "ParameterBasedExploration",
    "QAction",
    "QTable",
    "QmaConfig",
    "QmaMac",
    "RewardFunction",
    "global_reward",
    "local_reward",
    "reward_table",
]
