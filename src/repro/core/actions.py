"""QMA's action set.

The action space of QMA is ``{QBackoff, QCCA, QSend}`` (Sect. 4 of the
paper):

* ``QBACKOFF`` — wait until the next subslot;
* ``QCCA`` — perform a clear channel assessment, transmit on success and
  back off to the next subslot on failure;
* ``QSEND`` — transmit immediately without assessing the channel
  (high-risk / high-reward, usable for priority transmissions).
"""

from __future__ import annotations

from enum import Enum


class QAction(Enum):
    """The three actions available to a QMA agent in every subslot."""

    QBACKOFF = 0
    QCCA = 1
    QSEND = 2

    @property
    def short_name(self) -> str:
        """Single-letter name used in the paper's tables (B, C, S)."""
        return {"QBACKOFF": "B", "QCCA": "C", "QSEND": "S"}[self.name]

    @classmethod
    def from_short_name(cls, letter: str) -> "QAction":
        """Parse the single-letter notation of the paper (B, C, S)."""
        mapping = {"B": cls.QBACKOFF, "C": cls.QCCA, "S": cls.QSEND}
        try:
            return mapping[letter.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown action letter: {letter!r}") from exc

    def __repr__(self) -> str:
        return f"QAction.{self.name}"


#: All actions in a stable order (the order used by the Q-table columns).
ALL_ACTIONS = (QAction.QBACKOFF, QAction.QCCA, QAction.QSEND)
