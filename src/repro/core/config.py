"""Configuration of the QMA MAC.

Default values follow the paper: α = 0.5, γ = 0.9 (Sect. 6), penalty ξ = 2
(Sect. 5), Q-values initialised to -10 (Sect. 4.1), 54 subslots per CAP
(Sect. 4), a queue of 8 packets and at most 3 retransmissions as in
IEEE 802.15.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


#: Exploration probabilities of Fig. 4, indexed by
#: ``local queue level - neighbours' average queue level`` (clamped to [0, 8]).
DEFAULT_EXPLORATION_TABLE = (0.0, 0.0001, 0.001, 0.008, 0.02, 0.05, 0.1, 0.18, 0.3)


@dataclass(frozen=True)
class QmaConfig:
    """All tunable parameters of a QMA agent."""

    # --- learning (Sect. 3 / 6) -------------------------------------------
    learning_rate: float = 0.5
    discount_factor: float = 0.9
    penalty: float = 2.0
    q_init: float = -10.0

    # --- time discretisation (Sect. 4) -------------------------------------
    num_subslots: int = 54
    subslot_duration: float = 61.44e-3 / 54  # 8 CAP slots of a SO=3 superframe

    # --- queue / retransmissions -------------------------------------------
    queue_capacity: int = 8
    max_frame_retries: int = 3

    # --- exploration (Sect. 4.2) -------------------------------------------
    exploration_table: Sequence[float] = field(default=DEFAULT_EXPLORATION_TABLE)

    # --- cautious startup (Sect. 4.3) ---------------------------------------
    cautious_startup_subslots: int = 108  # Δ: two full subslot iterations
    startup_cca_punishment: float = -2.0
    startup_send_punishment: float = -3.0

    # --- instrumentation -----------------------------------------------------
    track_history: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 0.0 <= self.discount_factor <= 1.0:
            raise ValueError("discount_factor must lie in [0, 1]")
        if self.penalty < 0.0:
            raise ValueError("penalty must be non-negative")
        if self.num_subslots <= 0:
            raise ValueError("num_subslots must be positive")
        if self.subslot_duration <= 0.0:
            raise ValueError("subslot_duration must be positive")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.max_frame_retries < 0:
            raise ValueError("max_frame_retries must be non-negative")
        if self.cautious_startup_subslots < 0:
            raise ValueError("cautious_startup_subslots must be non-negative")
        if not self.exploration_table:
            raise ValueError("exploration_table must not be empty")
        if any(not 0.0 <= rho <= 1.0 for rho in self.exploration_table):
            raise ValueError("exploration probabilities must lie in [0, 1]")

    @property
    def frame_duration(self) -> float:
        """Duration of one full subslot iteration (one 'frame') in seconds."""
        return self.num_subslots * self.subslot_duration
