"""Exploration strategies for QMA.

The paper's contribution is *parameter-based exploration* (Sect. 4.2): the
probability ρ of taking a random action is read from a small table indexed
by the difference between the local queue level and the neighbours' average
queue level (Fig. 4).  When the local queue grows relative to the
neighbourhood the agent explores more aggressively; when the neighbours are
worse off than the local node, ρ is zero so that they get a chance to
allocate subslots.

ε-greedy (with exponential decay) and a constant exploration rate are also
implemented because the paper discusses them as the conventional
alternatives; the ablation benchmark compares all three.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from repro.core.config import DEFAULT_EXPLORATION_TABLE


class ExplorationStrategy(ABC):
    """Produces the probability ρ of selecting a random action."""

    @abstractmethod
    def probability(
        self,
        local_queue_level: int,
        neighbour_avg_queue_level: float,
        now: float,
    ) -> float:
        """Return ρ ∈ [0, 1] for the current decision."""

    def notify_action(self, now: float) -> None:
        """Hook invoked after every action selection (used by decaying strategies)."""


class ParameterBasedExploration(ExplorationStrategy):
    """The table-driven exploration of Fig. 4.

    ρ is looked up with ``local queue level - neighbours' average queue
    level`` (rounded down, clamped into the table).  A non-positive
    difference yields ρ = 0 so that congested neighbours are given room.
    """

    def __init__(self, table: Optional[Sequence[float]] = None) -> None:
        self.table = tuple(table) if table is not None else DEFAULT_EXPLORATION_TABLE
        if not self.table:
            raise ValueError("exploration table must not be empty")
        if any(not 0.0 <= rho <= 1.0 for rho in self.table):
            raise ValueError("exploration probabilities must lie in [0, 1]")

    def probability(
        self,
        local_queue_level: int,
        neighbour_avg_queue_level: float,
        now: float,
    ) -> float:
        difference = local_queue_level - neighbour_avg_queue_level
        if difference <= 0:
            return self.table[0]
        index = min(int(difference), len(self.table) - 1)
        return self.table[index]


class EpsilonGreedy(ExplorationStrategy):
    """Classic ε-greedy with exponential decay.

    ε starts at ``epsilon_start`` and is multiplied by ``decay`` after every
    action selection, never falling below ``epsilon_min``.  The queue levels
    are ignored — which is exactly the weakness the paper points out: once ε
    has decayed the agent can no longer react to changes in the network.
    """

    def __init__(
        self,
        epsilon_start: float = 0.3,
        decay: float = 0.999,
        epsilon_min: float = 0.0,
    ) -> None:
        if not 0.0 <= epsilon_start <= 1.0:
            raise ValueError("epsilon_start must lie in [0, 1]")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must lie in (0, 1]")
        if not 0.0 <= epsilon_min <= epsilon_start:
            raise ValueError("epsilon_min must lie in [0, epsilon_start]")
        self.epsilon = epsilon_start
        self.decay = decay
        self.epsilon_min = epsilon_min

    def probability(
        self,
        local_queue_level: int,
        neighbour_avg_queue_level: float,
        now: float,
    ) -> float:
        return self.epsilon

    def notify_action(self, now: float) -> None:
        self.epsilon = max(self.epsilon_min, self.epsilon * self.decay)


class ConstantEpsilon(ExplorationStrategy):
    """A constant exploration rate (the second conventional alternative)."""

    def __init__(self, epsilon: float = 0.05) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon

    def probability(
        self,
        local_queue_level: int,
        neighbour_avg_queue_level: float,
        now: float,
    ) -> float:
        return self.epsilon
