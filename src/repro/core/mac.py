"""The QMA MAC protocol (Sect. 4 of the paper).

Time is discretised into ``M`` subslots.  At the start of every subslot a
node with a non-empty queue selects an action — following its learned policy
with probability ``1 - ρ`` or uniformly at random with probability ``ρ``
(parameter-based exploration) — and executes it:

* ``QBackoff`` waits for the next subslot and is rewarded when a foreign
  frame is overheard during the wait (Eq. 6);
* ``QCCA`` performs a clear channel assessment and transmits on success
  (Eq. 7);
* ``QSend`` transmits immediately (Eq. 8).

A transmission can span several subslots (frame air time plus ACK wait);
during this time the node selects no further actions.  When the outcome of
the action is known, the Q-table is updated with Eq. 5 and the policy with
Eq. 3 (see :class:`repro.core.qtable.QTable`).

The MAC also implements the cautious-startup phase (Sect. 4.3) and records
the per-frame cumulative Q-value and the exploration probability over time,
which the evaluation figures 10-15 are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.actions import ALL_ACTIONS, QAction
from repro.core.config import QmaConfig
from repro.core.exploration import ExplorationStrategy, ParameterBasedExploration
from repro.core.neighbours import NeighbourQueueTracker
from repro.core.qtable import QTable
from repro.core.rewards import DEFAULT_REWARDS, RewardFunction
from repro.core.startup import CautiousStartup
from repro.mac.base import MacProtocol, TransactionResult
from repro.mac.gate import ActivityGate
from repro.mac.registry import register_mac
from repro.phy.frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator


class _PendingKind(Enum):
    """What the agent is currently waiting for."""

    BACKOFF = auto()       # QBackoff: evaluated at the next subslot boundary
    CCA_FAILED = auto()    # QCCA with busy channel: backoff, evaluated next boundary
    TRANSMISSION = auto()  # QCCA (idle) or QSend: evaluated when the outcome is known
    STARTUP = auto()       # cautious-startup observation of one subslot


@dataclass
class _PendingAction:
    """State saved between selecting an action and learning from its outcome."""

    kind: _PendingKind
    action: QAction
    state: int
    counter: int
    frame: Optional[Frame] = None
    overheard: bool = False


@dataclass
class QmaActionStats:
    """How often each action was selected (and how often at random)."""

    selected: Dict[QAction, int] = field(default_factory=lambda: {a: 0 for a in ALL_ACTIONS})
    random_selections: int = 0
    greedy_selections: int = 0

    def record(self, action: QAction, random_pick: bool) -> None:
        self.selected[action] += 1
        if random_pick:
            self.random_selections += 1
        else:
            self.greedy_selections += 1

    @property
    def total(self) -> int:
        return self.random_selections + self.greedy_selections


@register_mac("qma", config_cls=QmaConfig,
              description="Q-learning multiple access (the paper's protocol)")
class QmaMac(MacProtocol):
    """Q-learning-based multiple access."""

    name = "qma"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[QmaConfig] = None,
        exploration: Optional[ExplorationStrategy] = None,
        rewards: Optional[RewardFunction] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        self.config = config if config is not None else QmaConfig()
        super().__init__(
            sim,
            radio,
            queue_capacity=self.config.queue_capacity,
            max_frame_retries=self.config.max_frame_retries,
            gate=gate,
        )
        self.rewards = rewards if rewards is not None else DEFAULT_REWARDS
        self.exploration = (
            exploration
            if exploration is not None
            else ParameterBasedExploration(self.config.exploration_table)
        )
        self.qtable = QTable(
            num_states=self.config.num_subslots,
            learning_rate=self.config.learning_rate,
            discount_factor=self.config.discount_factor,
            penalty=self.config.penalty,
            q_init=self.config.q_init,
        )
        self.startup = CautiousStartup(
            self.config.cautious_startup_subslots,
            cca_punishment=self.config.startup_cca_punishment,
            send_punishment=self.config.startup_send_punishment,
        )
        self.neighbours = NeighbourQueueTracker()
        self.action_stats = QmaActionStats()
        self._rng = sim.rng.stream(f"qma-{self.node_id}")

        self._subslot = 0
        self._next_subslot = 0
        self._counter = 0
        self.frames_elapsed = 0
        self._pending: Optional[_PendingAction] = None
        #: Tick-chain epoch: ticks carry the epoch they were scheduled in
        #: and no-op once it moves on, so stop()/start() cannot leave a
        #: stale chain running (ticks use the engine's fast path and have
        #: no cancellable handle).
        self._tick_epoch = 0

        #: (time, cumulative Q-value of the policy) recorded at every frame boundary
        self.q_history: List[Tuple[float, float]] = []
        #: (time, ρ) recorded at every action selection
        self.rho_history: List[Tuple[float, float]] = []

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the subslot clock (aligned to the activity gate)."""
        super().start()
        start_time = max(self.gate.next_active_time(self.sim.now), self.sim.now)
        self._next_subslot = 0
        self._tick_epoch += 1
        self.sim.schedule_at_fast(start_time, self._on_subslot, self._tick_epoch)

    def stop(self) -> None:
        """Stop the subslot clock (used by tests and node shutdown).

        Ticks run on the engine's fast path (no cancellable handle); the
        pending tick fires once more and no-ops on the stale epoch.
        """
        self._tick_epoch += 1

    def _notify_enqueue(self) -> None:
        # Action selection happens only at subslot boundaries.
        pass

    # ------------------------------------------------------------ subslot clock
    @property
    def current_subslot(self) -> int:
        """Index of the subslot currently in progress."""
        return self._subslot

    def _on_subslot(self, epoch: int) -> None:
        if epoch != self._tick_epoch:
            return
        now = self.sim.now
        self._subslot = self._next_subslot
        self._counter += 1
        if self._subslot == 0:
            self.frames_elapsed += 1
            if self.config.track_history:
                self.q_history.append((now, self.qtable.cumulative_policy_value()))

        # 1. Evaluate actions whose outcome becomes known at a subslot boundary.
        if self._pending is not None and self._pending.kind in (
            _PendingKind.BACKOFF,
            _PendingKind.CCA_FAILED,
            _PendingKind.STARTUP,
        ):
            self._evaluate_boundary_action(self._pending)
            self._pending = None

        # 2. Select the next action (or observe, during cautious startup).
        # No action is selected while the radio is busy (e.g. transmitting an
        # ACK for a frame received just before the subslot boundary).
        if self._pending is None and not self.radio.transmitting:
            if self.startup.active:
                self._begin_startup_observation()
            elif not self.queue.empty:
                self._select_and_execute()

        # 3. Schedule the next subslot boundary.
        self._schedule_next_tick()

    def _schedule_next_tick(self) -> None:
        next_time = self.sim.now + self.config.subslot_duration
        next_index = (self._subslot + 1) % self.config.num_subslots
        if not self.gate.active(next_time):
            next_time = self.gate.next_active_time(next_time)
            next_index = 0
        self._next_subslot = next_index
        self.sim.schedule_at_fast(next_time, self._on_subslot, self._tick_epoch)

    # ------------------------------------------------------------ action choice
    def _select_and_execute(self) -> None:
        now = self.sim.now
        state = self._subslot
        rho = self.exploration.probability(
            self.queue.level, self.neighbours.average_level(now), now
        )
        self.exploration.notify_action(now)
        if self.config.track_history:
            self.rho_history.append((now, rho))
        if self._rng.random() < rho:
            action = self._rng.choice(ALL_ACTIONS)
            random_pick = True
        else:
            action = self.qtable.policy(state)
            random_pick = False
        self.action_stats.record(action, random_pick)
        self._execute(action, state)

    def _execute(self, action: QAction, state: int) -> None:
        if action is QAction.QBACKOFF:
            self._pending = _PendingAction(_PendingKind.BACKOFF, action, state, self._counter)
            return
        frame = self.queue.peek()
        if frame is None:  # defensive: queue drained between check and execution
            self._pending = _PendingAction(_PendingKind.BACKOFF, QAction.QBACKOFF, state, self._counter)
            return
        if action is QAction.QCCA:
            if self._cca():
                self._pending = _PendingAction(
                    _PendingKind.TRANSMISSION, action, state, self._counter, frame=frame
                )
                delay = self.phy.cca_duration + self.phy.turnaround_time
                self.sim.schedule_fast(delay, self._transmit_pending, self._pending)
            else:
                self._pending = _PendingAction(
                    _PendingKind.CCA_FAILED, action, state, self._counter
                )
            return
        # QSend: transmit immediately, without assessing the channel.
        if self.radio.transmitting:
            # The radio is busy (e.g. finishing an ACK); defer to the next subslot.
            self._pending = _PendingAction(
                _PendingKind.BACKOFF, QAction.QBACKOFF, state, self._counter
            )
            return
        self._pending = _PendingAction(
            _PendingKind.TRANSMISSION, action, state, self._counter, frame=frame
        )
        self._begin_transmission(frame)

    def _transmit_pending(self, pending: _PendingAction) -> None:
        if self._pending is not pending or pending.frame is None:
            return
        if self.radio.transmitting:
            return
        self._begin_transmission(pending.frame)

    # ------------------------------------------------------- cautious startup
    def _begin_startup_observation(self) -> None:
        self._pending = _PendingAction(
            _PendingKind.STARTUP, QAction.QBACKOFF, self._subslot, self._counter
        )
        self.startup.tick()

    # ------------------------------------------------------------- evaluation
    def _evaluate_boundary_action(self, pending: _PendingAction) -> None:
        next_state = self._subslot
        if pending.kind is _PendingKind.BACKOFF:
            reward = self.rewards.backoff(pending.overheard)
            self.qtable.update(pending.state, QAction.QBACKOFF, reward, next_state)
        elif pending.kind is _PendingKind.CCA_FAILED:
            reward = self.rewards.cca(cca_success=False)
            self.qtable.update(pending.state, QAction.QCCA, reward, next_state)
        elif pending.kind is _PendingKind.STARTUP:
            reward = self.rewards.backoff(pending.overheard)
            self.qtable.update(pending.state, QAction.QBACKOFF, reward, next_state)
            if pending.overheard:
                # Bias the table against subslots already used by other nodes.
                self.qtable.update(
                    pending.state, QAction.QCCA, self.startup.cca_punishment, next_state
                )
                self.qtable.update(
                    pending.state, QAction.QSEND, self.startup.send_punishment, next_state
                )

    def _transaction_complete(self, frame: Frame, result: TransactionResult) -> None:
        pending = self._pending
        if pending is None or pending.kind is not _PendingKind.TRANSMISSION:
            # A transaction that QMA is not aware of (should not happen); ignore.
            return
        success = result is TransactionResult.SUCCESS
        if pending.action is QAction.QSEND:
            reward = self.rewards.send(success)
        else:
            reward = self.rewards.cca(cca_success=True, tx_success=success)
        next_state = self._subslot
        self.qtable.update(pending.state, pending.action, reward, next_state)
        self._pending = None

        if success:
            self._finish_frame(frame, success=True)
            return
        frame.retries += 1
        if frame.retries > self.config.max_frame_retries:
            self.stats.dropped_retries += 1
            self._finish_frame(frame, success=False)
        # Otherwise the frame stays at the head of the queue and will be
        # retransmitted in a (learned) later subslot — QMA never drops a
        # packet because of backoffs, only after max_frame_retries failures.

    # -------------------------------------------------------------- overhearing
    def _register_channel_activity(self, frame: Frame) -> None:
        if self._pending is not None and self._pending.kind in (
            _PendingKind.BACKOFF,
            _PendingKind.STARTUP,
        ):
            self._pending.overheard = True
        if frame.kind is not FrameKind.ACK:
            self.neighbours.observe(frame.src, frame.queue_level, self.sim.now)

    def _on_overheard(self, frame: Frame) -> None:
        self._register_channel_activity(frame)

    def _on_frame_for_us(self, frame: Frame) -> None:
        self._register_channel_activity(frame)

    # -------------------------------------------------------------- inspection
    def policy_snapshot(self) -> List[QAction]:
        """Copy of the current policy (one action per subslot)."""
        return self.qtable.policy_snapshot()

    def transmission_subslots(self) -> List[int]:
        """Subslots in which the current policy transmits (QCCA or QSend)."""
        return self.qtable.transmission_subslots()

    def cumulative_q_value(self) -> float:
        """Current value of the Fig. 10 convergence metric."""
        return self.qtable.cumulative_policy_value()
