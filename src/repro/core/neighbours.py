"""Tracking of neighbour queue levels for parameter-based exploration.

Sect. 4.2 of the paper: "the current queue level of a neighbouring node is
piggybacked into regular data messages".  Every QMA node keeps the most
recently heard queue level per neighbour; the average over all known
neighbours is subtracted from the local queue level before the exploration
probability is looked up.

Entries expire after a configurable time so that a neighbour that left the
network (or stopped transmitting) does not suppress exploration forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class NeighbourQueueTracker:
    """Most recently observed queue level per neighbour, with ageing.

    The tracker is queried once per QMA action selection (the inner loop of
    every simulation), so it keeps a running sum of the stored levels and a
    lower bound on the oldest stored timestamp: the expiry scan only runs
    when that bound actually crosses the age cutoff, and the average is a
    division instead of a fresh summation.  Semantics are unchanged —
    entries older than ``max_age`` are gone from every observable result.
    """

    def __init__(self, max_age: Optional[float] = 10.0) -> None:
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive (or None for no ageing)")
        self.max_age = max_age
        self._levels: Dict[int, Tuple[float, int]] = {}
        self._level_sum = 0
        #: Lower bound on the oldest stored timestamp (inf when empty).  An
        #: overwrite can only raise the true minimum, so the bound stays
        #: valid between scans; each scan re-tightens it.
        self._oldest_bound = float("inf")

    def observe(self, neighbour_id: int, queue_level: int, now: float) -> None:
        """Record a piggybacked queue level heard from a neighbour."""
        if queue_level < 0:
            raise ValueError("queue_level must be non-negative")
        previous = self._levels.get(neighbour_id)
        if previous is not None:
            self._level_sum -= previous[1]
        self._level_sum += queue_level
        self._levels[neighbour_id] = (now, queue_level)
        if now < self._oldest_bound:
            self._oldest_bound = now

    def forget(self, neighbour_id: int) -> None:
        entry = self._levels.pop(neighbour_id, None)
        if entry is not None:
            self._level_sum -= entry[1]

    def _expire(self, now: float) -> None:
        if self.max_age is None:
            return
        cutoff = now - self.max_age
        if self._oldest_bound >= cutoff:
            return
        levels = self._levels
        stale = [nid for nid, (t, _) in levels.items() if t < cutoff]
        for nid in stale:
            self._level_sum -= levels[nid][1]
            del levels[nid]
        self._oldest_bound = min(
            (t for t, _ in levels.values()), default=float("inf")
        )

    def average_level(self, now: float) -> float:
        """Average queue level over all non-expired neighbours (0 if none known)."""
        self._expire(now)
        if not self._levels:
            return 0.0
        return self._level_sum / len(self._levels)

    def known_neighbours(self, now: float) -> Dict[int, int]:
        """Mapping of neighbour id to its last reported queue level."""
        self._expire(now)
        return {nid: level for nid, (_, level) in self._levels.items()}

    def __len__(self) -> int:
        return len(self._levels)
