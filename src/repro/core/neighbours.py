"""Tracking of neighbour queue levels for parameter-based exploration.

Sect. 4.2 of the paper: "the current queue level of a neighbouring node is
piggybacked into regular data messages".  Every QMA node keeps the most
recently heard queue level per neighbour; the average over all known
neighbours is subtracted from the local queue level before the exploration
probability is looked up.

Entries expire after a configurable time so that a neighbour that left the
network (or stopped transmitting) does not suppress exploration forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class NeighbourQueueTracker:
    """Most recently observed queue level per neighbour, with ageing."""

    def __init__(self, max_age: Optional[float] = 10.0) -> None:
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive (or None for no ageing)")
        self.max_age = max_age
        self._levels: Dict[int, Tuple[float, int]] = {}

    def observe(self, neighbour_id: int, queue_level: int, now: float) -> None:
        """Record a piggybacked queue level heard from a neighbour."""
        if queue_level < 0:
            raise ValueError("queue_level must be non-negative")
        self._levels[neighbour_id] = (now, queue_level)

    def forget(self, neighbour_id: int) -> None:
        self._levels.pop(neighbour_id, None)

    def _expire(self, now: float) -> None:
        if self.max_age is None:
            return
        cutoff = now - self.max_age
        stale = [nid for nid, (t, _) in self._levels.items() if t < cutoff]
        for nid in stale:
            del self._levels[nid]

    def average_level(self, now: float) -> float:
        """Average queue level over all non-expired neighbours (0 if none known)."""
        self._expire(now)
        if not self._levels:
            return 0.0
        return sum(level for _, level in self._levels.values()) / len(self._levels)

    def known_neighbours(self, now: float) -> Dict[int, int]:
        """Mapping of neighbour id to its last reported queue level."""
        self._expire(now)
        return {nid: level for nid, (_, level) in self._levels.items()}

    def __len__(self) -> int:
        return len(self._levels)
