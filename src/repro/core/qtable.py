"""Tabular Q-value representation with the cooperative multi-agent update.

The table stores one Q-value per (subslot, action) pair plus an explicit
policy entry per subslot.  The update rule is Eq. 5 of the paper — the
optimistic max-update of Lauer & Riedmiller combined with a learning rate α
and the penalty ξ that makes the rule usable in stochastic environments:

    Q(m, a) <- max{ Q(m, a) - ξ,  (1 - α) Q(m, a) + α (R + γ max_a' Q(m', a')) }

The policy table implements Eq. 3: a subslot's policy only changes when an
action's updated Q-value becomes *strictly* greater than the Q-value of the
current policy action, which prevents agents from flip-flopping between
equally good joint policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.actions import ALL_ACTIONS, QAction


@dataclass
class QUpdateResult:
    """Outcome of a single Q-value update (useful for tests and tracing)."""

    state: int
    action: QAction
    old_value: float
    new_value: float
    candidate: float
    policy_changed: bool


class QTable:
    """Q-values and policy of a single QMA agent.

    Parameters
    ----------
    num_states:
        Number of subslots ``M``.
    learning_rate, discount_factor, penalty:
        α, γ and ξ of Eq. 5.
    q_init:
        Initial Q-value.  The paper initialises to a value smaller than the
        largest punishment (-10 in practice, standing in for -inf).
    """

    def __init__(
        self,
        num_states: int,
        learning_rate: float = 0.5,
        discount_factor: float = 0.9,
        penalty: float = 2.0,
        q_init: float = -10.0,
    ) -> None:
        if num_states <= 0:
            raise ValueError("num_states must be positive")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 0.0 <= discount_factor <= 1.0:
            raise ValueError("discount_factor must lie in [0, 1]")
        if penalty < 0.0:
            raise ValueError("penalty must be non-negative")
        self.num_states = num_states
        self.learning_rate = learning_rate
        self.discount_factor = discount_factor
        self.penalty = penalty
        self.q_init = q_init
        # Q-values stored as flat per-state float lists indexed by
        # ``QAction.value`` (0/1/2): the update runs once per selected action
        # in the inner loop, and list indexing avoids the enum-hashing cost
        # of dict rows.  The dict-shaped API (``values_snapshot`` etc.) is
        # preserved on top.
        self._values: List[List[float]] = [
            [q_init] * len(ALL_ACTIONS) for _ in range(num_states)
        ]
        #: π(m): initialised to QBackoff for every subslot (Algorithm 1).
        self._policy: List[QAction] = [QAction.QBACKOFF] * num_states
        self.updates = 0

    # ------------------------------------------------------------------ access
    def value(self, state: int, action: QAction) -> float:
        """Q(state, action)."""
        return self._values[state][action.value]

    def set_value(self, state: int, action: QAction, value: float) -> None:
        """Directly overwrite a Q-value (used by tests and the worked example)."""
        self._values[state][action.value] = value

    def max_value(self, state: int) -> float:
        """max_a Q(state, a)."""
        return max(self._values[state])

    def best_action(self, state: int) -> QAction:
        """argmax_a Q(state, a); ties resolved in action-declaration order."""
        values = self._values[state]
        best = max(values)
        for action in ALL_ACTIONS:
            if values[action.value] == best:
                return action
        raise AssertionError("unreachable")  # pragma: no cover

    def policy(self, state: int) -> QAction:
        """π(state)."""
        return self._policy[state]

    def set_policy(self, state: int, action: QAction) -> None:
        self._policy[state] = action

    def policy_snapshot(self) -> List[QAction]:
        """A copy of the full policy table."""
        return list(self._policy)

    def values_snapshot(self) -> List[Dict[QAction, float]]:
        """A deep copy of the Q-value table (dict rows keyed by action)."""
        return [
            {action: row[action.value] for action in ALL_ACTIONS}
            for row in self._values
        ]

    # ------------------------------------------------------------------ update
    def update(
        self,
        state: int,
        action: QAction,
        reward: float,
        next_state: int,
    ) -> QUpdateResult:
        """Apply Eq. 5 (value update) and Eq. 3 (policy update).

        ``next_state`` is the subslot reached after the action finished, i.e.
        ``(state + i) mod M`` where ``i`` is the number of subslots the action
        spanned.
        """
        if not 0 <= state < self.num_states:
            raise IndexError(f"state {state} out of range")
        if not 0 <= next_state < self.num_states:
            raise IndexError(f"next_state {next_state} out of range")
        alpha = self.learning_rate
        gamma = self.discount_factor
        row = self._values[state]
        old = row[action.value]
        candidate = (1.0 - alpha) * old + alpha * (
            reward + gamma * max(self._values[next_state])
        )
        new = max(old - self.penalty, candidate)
        row[action.value] = new
        self.updates += 1

        policy_changed = False
        policy_action = self._policy[state]
        if action is not policy_action and new > row[policy_action.value]:
            # Eq. 3: only switch to a strictly better action.
            self._policy[state] = action
            policy_changed = True
        return QUpdateResult(state, action, old, new, candidate, policy_changed)

    # --------------------------------------------------------------- metrics
    def cumulative_policy_value(self) -> float:
        """Sum of Q-values of the policy actions over all subslots (Fig. 10 metric)."""
        return sum(
            self._values[m][self._policy[m].value] for m in range(self.num_states)
        )

    def cumulative_max_value(self) -> float:
        """Sum of the per-subslot maximum Q-values."""
        return sum(self.max_value(m) for m in range(self.num_states))

    def transmission_subslots(self) -> List[int]:
        """Subslots whose policy is a transmitting action (QCCA or QSend)."""
        return [
            m
            for m in range(self.num_states)
            if self._policy[m] in (QAction.QCCA, QAction.QSEND)
        ]

    def policy_counts(self) -> Dict[QAction, int]:
        """Number of subslots assigned to each action by the current policy."""
        counts = {action: 0 for action in ALL_ACTIONS}
        for action in self._policy:
            counts[action] += 1
        return counts

    def memory_footprint_bytes(self, bytes_per_entry: int = 4) -> int:
        """Approximate memory usage of the table on an embedded device.

        The paper stresses resource efficiency: with ``M`` subslots and three
        actions the table has ``3 M`` Q-values plus ``M`` policy entries.
        """
        return self.num_states * (len(ALL_ACTIONS) * bytes_per_entry + 1)

    # ----------------------------------------------------------------- misc
    def reset(self) -> None:
        """Reset all Q-values and the policy to their initial state."""
        for row in self._values:
            for action in ALL_ACTIONS:
                row[action.value] = self.q_init
        self._policy = [QAction.QBACKOFF] * self.num_states
        self.updates = 0

    def as_rows(self) -> List[Tuple[int, float, float, float, str]]:
        """Table rows ``(subslot, Q_B, Q_C, Q_S, policy)`` for pretty printing."""
        rows = []
        for m in range(self.num_states):
            values = self._values[m]
            rows.append(
                (
                    m,
                    values[QAction.QBACKOFF.value],
                    values[QAction.QCCA.value],
                    values[QAction.QSEND.value],
                    self._policy[m].short_name,
                )
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"QTable(states={self.num_states}, updates={self.updates}, "
            f"cumulative={self.cumulative_policy_value():.1f})"
        )
