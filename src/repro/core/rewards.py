"""Reward functions of QMA (Eq. 6-8) and the conceptual global reward table (Table 4).

The rewards are purely local — every node rewards its own action based on
what it can observe (overheard frames, CCA outcome, ACK reception) — yet
they are designed so that the sum of local rewards orders the joint action
combinations the same way a conceptual global reward table would
(Table 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.actions import QAction


@dataclass(frozen=True)
class RewardFunction:
    """The local reward constants of Eq. 6-8.

    The defaults reproduce the paper's values; the ablation benchmarks vary
    them to show that, e.g., increasing the QSend success reward to 8 makes
    every node send in every subslot.
    """

    backoff_overheard: float = 2.0
    backoff_idle: float = 0.0
    cca_success_tx_success: float = 3.0
    cca_success_tx_failed: float = -2.0
    cca_failed: float = 1.0
    send_tx_success: float = 4.0
    send_tx_failed: float = -3.0

    # ------------------------------------------------------------------ Eq. 6
    def backoff(self, overheard: bool) -> float:
        """Reward for ``QBackoff`` (Eq. 6): +2 if a DATA or ACK frame was overheard."""
        return self.backoff_overheard if overheard else self.backoff_idle

    # ------------------------------------------------------------------ Eq. 7
    def cca(self, cca_success: bool, tx_success: bool = False) -> float:
        """Reward for ``QCCA`` (Eq. 7)."""
        if not cca_success:
            return self.cca_failed
        return self.cca_success_tx_success if tx_success else self.cca_success_tx_failed

    # ------------------------------------------------------------------ Eq. 8
    def send(self, tx_success: bool) -> float:
        """Reward for ``QSend`` (Eq. 8)."""
        return self.send_tx_success if tx_success else self.send_tx_failed


#: The default reward function with the constants of the paper.
DEFAULT_REWARDS = RewardFunction()


def _transmitters(actions: Sequence[QAction]) -> List[int]:
    """Indices of agents whose action results in a transmission.

    Following Table 4 of the paper: a ``QSend`` transmits immediately at the
    start of the subslot, while a ``QCCA`` first assesses the channel.  A CCA
    therefore *fails* whenever at least one agent chose ``QSend`` (it senses
    the already started transmission) but succeeds against other ``QCCA``
    agents, whose transmissions have not started yet.
    """
    any_send = any(a is QAction.QSEND for a in actions)
    transmitters = [i for i, a in enumerate(actions) if a is QAction.QSEND]
    if not any_send:
        transmitters = [i for i, a in enumerate(actions) if a is QAction.QCCA]
    return transmitters


def local_reward(
    actions: Sequence[QAction],
    agent: int,
    rewards: RewardFunction = DEFAULT_REWARDS,
) -> float:
    """Local reward of ``agent`` for a joint action combination.

    Reproduces the per-agent columns of Table 4 for any number of agents:
    a transmission succeeds iff exactly one agent transmits; a backing-off
    agent overhears a frame iff exactly one agent transmits successfully.
    """
    if not 0 <= agent < len(actions):
        raise IndexError("agent index out of range")
    any_send = any(a is QAction.QSEND for a in actions)
    transmitters = _transmitters(actions)
    success = len(transmitters) == 1
    action = actions[agent]
    if action is QAction.QBACKOFF:
        overheard = success and agent not in transmitters
        return rewards.backoff(overheard)
    if action is QAction.QCCA:
        if any_send:
            return rewards.cca(cca_success=False)
        return rewards.cca(cca_success=True, tx_success=success)
    return rewards.send(tx_success=success)


def global_reward(
    actions: Sequence[QAction],
    rewards: RewardFunction = DEFAULT_REWARDS,
) -> float:
    """Conceptual global reward: the sum of all local rewards (Table 4, last column)."""
    return sum(local_reward(actions, i, rewards) for i in range(len(actions)))


def reward_table(
    num_agents: int = 3,
    rewards: RewardFunction = DEFAULT_REWARDS,
) -> Dict[Tuple[QAction, ...], Dict[str, object]]:
    """Enumerate every joint action combination with local and global rewards.

    Returns a mapping ``(a_0, ..., a_{n-1}) -> {"local": [...], "global": g}``,
    the generalisation of Table 4 in the paper.
    """
    if num_agents <= 0:
        raise ValueError("num_agents must be positive")
    table: Dict[Tuple[QAction, ...], Dict[str, object]] = {}
    combos: Iterable[Tuple[QAction, ...]] = _all_combinations(num_agents)
    for combo in combos:
        locals_ = [local_reward(combo, i, rewards) for i in range(num_agents)]
        table[combo] = {"local": locals_, "global": sum(locals_)}
    return table


def _all_combinations(num_agents: int) -> List[Tuple[QAction, ...]]:
    combos: List[Tuple[QAction, ...]] = [()]
    for _ in range(num_agents):
        combos = [c + (a,) for c in combos for a in QAction]
    return combos


def format_reward_table(num_agents: int = 3, rewards: RewardFunction = DEFAULT_REWARDS) -> str:
    """Render the reward table as text (used by the CLI and the Table 4 bench)."""
    table = reward_table(num_agents, rewards)
    lines = ["actions          local rewards        global"]
    for combo, entry in table.items():
        actions = " ".join(a.short_name for a in combo)
        locals_ = " / ".join(f"{r:g}" for r in entry["local"])
        lines.append(f"{actions:<16} {locals_:<20} {entry['global']:g}")
    return "\n".join(lines)
