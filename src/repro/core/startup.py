"""Cautious startup (Sect. 4.3 of the paper).

A node joining an already converged network is likely to destroy the
established schedule.  For the first Δ subslot iterations after startup the
node therefore only executes ``QBackoff`` and observes the medium: overheard
frames reward ``QBackoff`` (Eq. 6) and at the same time punish ``QCCA`` and
``QSend`` for the observed subslot, biasing the Q-table against subslots
that are already used by other nodes.
"""

from __future__ import annotations


class CautiousStartup:
    """Tracks the progress of the cautious-startup phase of one agent."""

    def __init__(
        self,
        duration_subslots: int,
        cca_punishment: float = -2.0,
        send_punishment: float = -3.0,
    ) -> None:
        if duration_subslots < 0:
            raise ValueError("duration_subslots must be non-negative")
        self.duration_subslots = duration_subslots
        self.cca_punishment = cca_punishment
        self.send_punishment = send_punishment
        self._elapsed = 0
        self._finished = duration_subslots == 0

    @property
    def active(self) -> bool:
        """True while the node is still in its cautious-startup phase."""
        return not self._finished

    @property
    def elapsed_subslots(self) -> int:
        return self._elapsed

    @property
    def remaining_subslots(self) -> int:
        return max(0, self.duration_subslots - self._elapsed)

    def tick(self) -> bool:
        """Advance by one subslot; returns True if the phase just ended."""
        if self._finished:
            return False
        self._elapsed += 1
        if self._elapsed >= self.duration_subslots:
            self._finished = True
            return True
        return False

    def restart(self) -> None:
        """Restart the phase (e.g. after a node rejoined the network)."""
        self._elapsed = 0
        self._finished = self.duration_subslots == 0
