"""IEEE 802.15.4 DSME substrate.

The paper's scalability study (Sect. 6.3) uses QMA as the channel-access
scheme of the *contention access period* (CAP) of IEEE 802.15.4 DSME, where
it carries the secondary traffic: the 3-way GTS (de)allocation handshake
and routing broadcasts.  This package implements the parts of DSME that the
evaluation depends on:

* the superframe / multi-superframe timing and the CAP window
  (:mod:`repro.dsme.superframe`),
* guaranteed time slots and per-node allocation tables
  (:mod:`repro.dsme.gts`),
* the 3-way GTS (de)allocation handshake, demand-driven allocation and the
  contention-free data transfer over allocated GTS
  (:mod:`repro.dsme.node`),
* the network-level orchestration and the secondary-traffic statistics
  (:mod:`repro.dsme.network`).
"""

from repro.dsme.superframe import SuperframeConfig
from repro.dsme.gts import GtsAllocationTable, GtsDirection, GtsSlot
from repro.dsme.node import DsmeNode, DsmeNodeStats
from repro.dsme.network import DsmeNetwork, SecondaryTrafficStats

__all__ = [
    "DsmeNetwork",
    "DsmeNode",
    "DsmeNodeStats",
    "GtsAllocationTable",
    "GtsDirection",
    "GtsSlot",
    "SecondaryTrafficStats",
    "SuperframeConfig",
]
