"""Guaranteed time slots (GTS) and per-node allocation tables.

A GTS is identified by the superframe index within the multi-superframe,
the CFP slot index and the channel offset.  Every node keeps a table of its
own allocations (transmit or receive, with the peer node) plus a bitmap of
slots known to be occupied in its neighbourhood — the information that the
broadcast GTS-response / GTS-notify messages distribute and that duplicate
allocation detection is based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterator, List, Optional, Set

from repro.dsme.superframe import SuperframeConfig


class GtsDirection(Enum):
    """Whether the owning node transmits or receives in an allocated GTS."""

    TX = auto()
    RX = auto()


@dataclass(frozen=True)
class GtsSlot:
    """One GTS resource: (superframe within the multi-superframe, slot, channel)."""

    superframe: int
    slot: int
    channel: int

    def as_tuple(self) -> tuple:
        return (self.superframe, self.slot, self.channel)


def iter_all_slots(config: SuperframeConfig) -> Iterator[GtsSlot]:
    """Enumerate every GTS resource of a multi-superframe in a fixed order."""
    for superframe in range(config.superframes_per_multisuperframe):
        for slot in range(config.cfp_slots):
            for channel in range(config.num_channels):
                yield GtsSlot(superframe, slot, channel)


@dataclass
class GtsAllocation:
    """An allocated GTS with its direction and communication peer."""

    slot: GtsSlot
    direction: GtsDirection
    peer: int


class GtsAllocationTable:
    """All GTS state a single node keeps."""

    def __init__(self, config: SuperframeConfig) -> None:
        self.config = config
        self._allocations: Dict[GtsSlot, GtsAllocation] = {}
        #: slots known (from overheard responses/notifies) to be used nearby
        self._neighbourhood_busy: Set[GtsSlot] = set()

    # ------------------------------------------------------------- allocation
    def allocate(self, slot: GtsSlot, direction: GtsDirection, peer: int) -> None:
        if slot in self._allocations:
            raise ValueError(f"slot {slot} is already allocated locally")
        self._allocations[slot] = GtsAllocation(slot, direction, peer)

    def deallocate(self, slot: GtsSlot) -> Optional[GtsAllocation]:
        return self._allocations.pop(slot, None)

    def mark_neighbourhood_busy(self, slot: GtsSlot) -> None:
        self._neighbourhood_busy.add(slot)

    def mark_neighbourhood_free(self, slot: GtsSlot) -> None:
        self._neighbourhood_busy.discard(slot)

    # ------------------------------------------------------------------ query
    def is_allocated(self, slot: GtsSlot) -> bool:
        return slot in self._allocations

    def is_usable(self, slot: GtsSlot) -> bool:
        """True if the slot is neither allocated locally nor busy in the neighbourhood."""
        return slot not in self._allocations and slot not in self._neighbourhood_busy

    def find_free_slot(self) -> Optional[GtsSlot]:
        """First free slot in the multi-superframe, or None if none is available."""
        for slot in iter_all_slots(self.config):
            if self.is_usable(slot):
                return slot
        return None

    def allocations(self, direction: Optional[GtsDirection] = None) -> List[GtsAllocation]:
        if direction is None:
            return list(self._allocations.values())
        return [a for a in self._allocations.values() if a.direction is direction]

    def tx_slots(self, peer: Optional[int] = None) -> List[GtsSlot]:
        """Allocated transmit slots (optionally restricted to one peer)."""
        return [
            a.slot
            for a in self._allocations.values()
            if a.direction is GtsDirection.TX and (peer is None or a.peer == peer)
        ]

    def rx_slots(self, peer: Optional[int] = None) -> List[GtsSlot]:
        return [
            a.slot
            for a in self._allocations.values()
            if a.direction is GtsDirection.RX and (peer is None or a.peer == peer)
        ]

    @property
    def num_allocated(self) -> int:
        return len(self._allocations)

    def __contains__(self, slot: GtsSlot) -> bool:
        return slot in self._allocations
