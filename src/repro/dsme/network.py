"""Network-level DSME orchestration and secondary-traffic statistics.

A :class:`DsmeNetwork` builds a :class:`~repro.net.network.Network` whose
contention MACs are confined to the CAP of every superframe, attaches one
:class:`~repro.dsme.node.DsmeNode` per node, drives the CFP service and the
multi-superframe book-keeping, and aggregates the secondary-traffic metrics
of Fig. 21 / Fig. 22.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.config import QmaConfig
from repro.dsme.node import DsmeNode
from repro.dsme.superframe import SuperframeConfig
from repro.mac.csma import CsmaConfig
from repro.mac.registry import MAC_REGISTRY, get_mac_spec
from repro.net.network import Network
from repro.net.routing import RouteDiscoveryBeacon
from repro.phy.frames import Frame
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: CAP channel-access schemes evaluated by the paper's scalability study.
#: Any MAC registered in :mod:`repro.mac.registry` is accepted beyond these.
CAP_MAC_KINDS = ("qma", "slotted-csma", "unslotted-csma")


@dataclass
class SecondaryTrafficStats:
    """Aggregate secondary-traffic metrics over all nodes."""

    requests_sent: int = 0
    requests_delivered: int = 0
    responses_sent: int = 0
    responses_received: int = 0
    notifies_sent: int = 0
    notifies_received: int = 0
    handshakes_started: int = 0
    handshakes_completed: int = 0
    handshakes_failed: int = 0
    allocations: int = 0
    deallocations: int = 0

    @property
    def messages_sent(self) -> int:
        return self.requests_sent + self.responses_sent + self.notifies_sent

    @property
    def messages_delivered(self) -> int:
        return self.requests_delivered + self.responses_received + self.notifies_received

    @property
    def pdr(self) -> float:
        """PDR of the secondary (CAP) traffic — the Fig. 21 metric."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_delivered / self.messages_sent

    @property
    def gts_request_success_ratio(self) -> float:
        """Fraction of GTS-requests that reached the responder — the Fig. 22 metric."""
        if self.requests_sent == 0:
            return 0.0
        return self.requests_delivered / self.requests_sent

    def allocation_rate(self, duration: float) -> float:
        """GTS (de)allocations per second over the given observation duration."""
        if duration <= 0:
            return 0.0
        return (self.allocations + self.deallocations) / duration

    def as_scalars(self) -> Dict[str, float]:
        """The raw counters as a flat name -> value mapping (report tables)."""
        return {
            "requests_sent": float(self.requests_sent),
            "requests_delivered": float(self.requests_delivered),
            "responses_sent": float(self.responses_sent),
            "responses_received": float(self.responses_received),
            "notifies_sent": float(self.notifies_sent),
            "notifies_received": float(self.notifies_received),
            "handshakes_started": float(self.handshakes_started),
            "handshakes_completed": float(self.handshakes_completed),
            "handshakes_failed": float(self.handshakes_failed),
            "allocations": float(self.allocations),
            "deallocations": float(self.deallocations),
        }


class DsmeNetwork:
    """A complete DSME network with a pluggable CAP channel-access scheme."""

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        cap_mac: str = "qma",
        config: Optional[SuperframeConfig] = None,
        qma_config: Optional[QmaConfig] = None,
        csma_config: Optional[CsmaConfig] = None,
        cap_mac_config: Optional[object] = None,
        route_discovery_period: Optional[float] = 2.0,
        link_error_rate: float = 0.0,
        static_links: Optional[bool] = None,
        interference: str = "collision",
        sinr_threshold_db: float = 10.0,
        propagation_model: Optional[object] = None,
        prebuilt_links: Optional[Mapping[int, Sequence[Tuple[int, float, float]]]] = None,
        prebuilt_cs: Optional[Mapping[int, Sequence[Tuple[int, float]]]] = None,
    ) -> None:
        if cap_mac not in MAC_REGISTRY:
            raise ValueError(
                f"cap_mac must be a registered MAC kind, got {cap_mac!r}; "
                f"registered: {tuple(sorted(MAC_REGISTRY.names()))}"
            )
        self.sim = sim
        self.topology = topology
        self.config = config if config is not None else SuperframeConfig()
        self.cap_mac = cap_mac
        self._gate = self.config.cap_gate()
        self._qma_config = qma_config if qma_config is not None else QmaConfig(
            num_subslots=self.config.cap_subslots,
            subslot_duration=self.config.subslot_duration,
        )
        self._csma_config = csma_config if csma_config is not None else CsmaConfig()
        self._cap_mac_config = cap_mac_config

        self.network = Network(
            sim,
            topology,
            self._build_mac,
            link_error_rate=link_error_rate,
            static_links=static_links,
            interference=interference,
            sinr_threshold_db=sinr_threshold_db,
            propagation_model=propagation_model,
            prebuilt_links=prebuilt_links,
            prebuilt_cs=prebuilt_cs,
        )
        self.dsme_nodes: Dict[int, DsmeNode] = {}
        for node_id, node in self.network.nodes.items():
            dsme_node = DsmeNode(sim, node, self.config)
            dsme_node.cfp_delivery = self._deliver_over_gts
            self.dsme_nodes[node_id] = dsme_node

        self.beacons: Dict[int, RouteDiscoveryBeacon] = {}
        if route_discovery_period is not None:
            for node_id, node in self.network.nodes.items():
                self.beacons[node_id] = RouteDiscoveryBeacon(
                    sim, node, period=route_discovery_period
                )

        self._superframe_index = 0
        self._superframe_event = None
        self._started_at = 0.0

    # ---------------------------------------------------------------- factory
    def _build_mac(self, sim: "Simulator", radio: "Radio") -> "MacProtocol":
        spec = get_mac_spec(self.cap_mac)
        config = self._cap_mac_config
        if config is None:
            # Route the legacy per-family configs by the spec's config class
            # (qma_config/csma_config keep working for the paper's CAP MACs).
            if spec.config_cls is QmaConfig:
                config = self._qma_config
            elif spec.config_cls is CsmaConfig:
                config = self._csma_config
        return spec.build(sim, radio, config=config, gate=self._gate)

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        """Start MACs, routing beacons and the superframe schedule."""
        self._started_at = self.sim.now
        self.network.start()
        for beacon in self.beacons.values():
            beacon.start()
        first_cfp = self.config.cfp_start(0)
        self._superframe_event = self.sim.schedule_at(
            self.sim.now + first_cfp, self._on_cfp
        )

    def _on_cfp(self) -> None:
        superframe_in_msf = self._superframe_index % self.config.superframes_per_multisuperframe
        for dsme_node in self.dsme_nodes.values():
            dsme_node.on_cfp(superframe_in_msf)
        if superframe_in_msf == self.config.superframes_per_multisuperframe - 1:
            for dsme_node in self.dsme_nodes.values():
                dsme_node.on_multisuperframe_end()
        self._superframe_index += 1
        self._superframe_event = self.sim.schedule(
            self.config.superframe_duration, self._on_cfp
        )

    def _deliver_over_gts(self, peer_id: int, frame: Frame) -> None:
        self.dsme_nodes[peer_id].receive_cfp_data(frame)

    # ---------------------------------------------------------------- access
    def dsme_node(self, node_id: int) -> DsmeNode:
        return self.dsme_nodes[node_id]

    def sources(self) -> Dict[int, DsmeNode]:
        return {
            node_id: node
            for node_id, node in self.dsme_nodes.items()
            if not node.node.is_sink
        }

    # ---------------------------------------------------------------- metrics
    def secondary_traffic_stats(self) -> SecondaryTrafficStats:
        total = SecondaryTrafficStats()
        for dsme_node in self.dsme_nodes.values():
            stats = dsme_node.stats
            total.requests_sent += stats.requests_sent
            total.requests_delivered += stats.requests_delivered
            total.responses_sent += stats.responses_sent
            total.responses_received += stats.responses_received
            total.notifies_sent += stats.notifies_sent
            total.notifies_received += stats.notifies_received
            total.handshakes_started += stats.handshakes_started
            total.handshakes_completed += stats.handshakes_completed
            total.handshakes_failed += stats.handshakes_failed
            total.allocations += stats.allocations
            total.deallocations += stats.deallocations
        return total

    def primary_traffic_pdr(self) -> float:
        """PDR of the CFP data traffic (delivered at the sink / generated)."""
        generated = sum(
            node.node.packets_generated for node in self.dsme_nodes.values()
        )
        if generated == 0:
            return 0.0
        delivered = len(self.network.sink.deliveries)
        return delivered / generated

    def elapsed(self) -> float:
        return self.sim.now - self._started_at
