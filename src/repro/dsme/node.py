"""Per-node DSME behaviour: GTS demand, the 3-way handshake and CFP data transfer.

Every node keeps a queue of primary-traffic data packets that may only be
transmitted during allocated GTS.  When the queue grows beyond the capacity
of the currently allocated slots the node starts a 3-way handshake with its
routing parent (GTS-request → GTS-response → GTS-notify) over the
contention-based CAP; when the queue has been empty for a while it
deallocates slots again with the same handshake.  Fluctuating primary
traffic therefore produces exactly the bursty secondary CAP traffic the
paper studies.

The contention-free data transfer itself is modelled as always successful
(GTS are exclusive per construction and use separate channels); the
reliability bottleneck — and the subject of Figs. 21/22 — is the CAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING
from collections import deque

from repro.dsme.gts import GtsAllocationTable, GtsDirection, GtsSlot
from repro.dsme.superframe import SuperframeConfig
from repro.net.node import DeliveryRecord
from repro.phy.frames import BROADCAST, Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator

#: Signature of the function used to hand a data frame to a peer over a GTS.
CfpDelivery = Callable[[int, Frame], None]


@dataclass
class DsmeNodeStats:
    """Secondary-traffic and GTS statistics of a single node."""

    requests_sent: int = 0
    requests_delivered: int = 0
    responses_sent: int = 0
    responses_received: int = 0
    notifies_sent: int = 0
    notifies_received: int = 0
    handshakes_started: int = 0
    handshakes_completed: int = 0
    handshakes_failed: int = 0
    allocations: int = 0
    deallocations: int = 0
    data_enqueued: int = 0
    data_dropped_queue_full: int = 0
    data_sent_in_gts: int = 0


class DsmeNode:
    """DSME state machine of a single node, layered on top of a network node."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        config: Optional[SuperframeConfig] = None,
        data_queue_capacity: int = 8,
        deallocate_after_idle_multisuperframes: int = 4,
        handshake_timeout_multisuperframes: int = 30,
    ) -> None:
        self.sim = sim
        self.node = node
        self.node_id = node.node_id
        self.config = config if config is not None else SuperframeConfig()
        self.data_queue_capacity = data_queue_capacity
        self.deallocate_after_idle = deallocate_after_idle_multisuperframes
        self.gts = GtsAllocationTable(self.config)
        self.stats = DsmeNodeStats()
        self.data_queue: Deque[Frame] = deque()
        self.cfp_delivery: Optional[CfpDelivery] = None
        self._pending_handshake: Optional[Dict] = None
        self._pending_grants: Dict[int, Dict] = {}
        self._handshake_counter = 0
        self._idle_multisuperframes = 0
        self._retry_delay = self.config.multisuperframe_duration
        self._handshake_timeout = (
            handshake_timeout_multisuperframes * self.config.multisuperframe_duration
        )

        node.register_handler(FrameKind.GTS_REQUEST, self._on_gts_request)
        node.register_handler(FrameKind.GTS_RESPONSE, self._on_gts_response)
        node.register_handler(FrameKind.GTS_NOTIFY, self._on_gts_notify)
        node.mac.sent_callback = self._on_mac_sent

    # ------------------------------------------------------------ primary data
    def generate_data(self, payload_bytes: Optional[int] = None) -> None:
        """Generate one primary-traffic data packet destined to the sink."""
        if self.node.is_sink or self.node.parent is None:
            return
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=self.node.parent,
            final_dst=self.node.sink_id,
            created_at=self.sim.now,
            payload_bytes=payload_bytes,
        )
        self.node.packets_generated += 1
        self._enqueue_data(frame)

    def _enqueue_data(self, frame: Frame) -> None:
        if len(self.data_queue) >= self.data_queue_capacity:
            self.stats.data_dropped_queue_full += 1
            return
        self.data_queue.append(frame)
        self.stats.data_enqueued += 1
        self._idle_multisuperframes = 0
        self._check_demand()

    # ----------------------------------------------------------- GTS demand
    @property
    def allocated_tx_capacity(self) -> int:
        """Packets per multi-superframe the node can send with its current GTS."""
        return len(self.gts.tx_slots(self.node.parent))

    def _check_demand(self) -> None:
        """Start an allocation handshake if the queue exceeds the GTS capacity."""
        if self.node.parent is None or self._pending_handshake is not None:
            return
        if len(self.data_queue) > self.allocated_tx_capacity:
            slot = self.gts.find_free_slot()
            if slot is not None:
                self._start_handshake("allocate", slot)

    def maybe_deallocate(self) -> None:
        """Give a GTS back after the queue has been idle for a while."""
        if self._pending_handshake is not None or self.node.parent is None:
            return
        if self.data_queue or self.allocated_tx_capacity == 0:
            return
        if self._idle_multisuperframes < self.deallocate_after_idle:
            return
        slot = self.gts.tx_slots(self.node.parent)[0]
        self._start_handshake("deallocate", slot)

    # ------------------------------------------------------------- handshake
    def _start_handshake(self, op: str, slot: GtsSlot) -> None:
        self._handshake_counter += 1
        handshake_id = self._handshake_counter
        self._pending_handshake = {
            "id": handshake_id,
            "op": op,
            "slot": slot,
            "peer": self.node.parent,
        }
        self.stats.handshakes_started += 1
        self.stats.requests_sent += 1
        request = Frame(
            kind=FrameKind.GTS_REQUEST,
            src=self.node_id,
            dst=self.node.parent,
            created_at=self.sim.now,
            meta={"op": op, "slot": slot.as_tuple(), "requester": self.node_id},
        )
        self.node.send_frame(request)
        # If the GTS-response never arrives (it is a broadcast and may be
        # lost), the handshake is abandoned after a timeout and retried later.
        self.sim.schedule(self._handshake_timeout, self._on_handshake_timeout, handshake_id)

    def _on_handshake_timeout(self, handshake_id: int) -> None:
        pending = self._pending_handshake
        if pending is None or pending.get("id") != handshake_id:
            return
        self._pending_handshake = None
        self.stats.handshakes_failed += 1
        self._check_demand()

    def _on_mac_sent(self, frame: Frame, success: bool) -> None:
        if frame.kind is not FrameKind.GTS_REQUEST:
            return
        if success:
            self.stats.requests_delivered += 1
            return
        # The request never reached the parent: the handshake failed.
        pending = self._pending_handshake
        if pending is not None:
            self.stats.handshakes_failed += 1
            self._pending_handshake = None
            self.sim.schedule(self._retry_delay, self._check_demand)

    def _on_gts_request(self, frame: Frame) -> None:
        """We are the responder (routing parent) of a handshake.

        The slot is only *reserved* when the response is sent; the allocation
        is committed once the requester's GTS-notify arrives (the purpose of
        the third handshake message).  Stale reservations are pruned when a
        new request from the same requester arrives.
        """
        op = frame.meta.get("op", "allocate")
        requester = frame.meta.get("requester", frame.src)
        slot = GtsSlot(*frame.meta["slot"])
        status = "granted"
        if op == "allocate":
            reserved_elsewhere = any(
                grant["slot"] == slot for grant in self._pending_grants.values()
            )
            if not self.gts.is_usable(slot) or reserved_elsewhere:
                alternative = self.gts.find_free_slot()
                if alternative is None:
                    status = "denied"
                else:
                    slot = alternative
            if status == "granted":
                self._pending_grants[requester] = {"slot": slot, "op": op}
        else:  # deallocate
            self._pending_grants[requester] = {"slot": slot, "op": op}
        self.stats.responses_sent += 1
        response = Frame(
            kind=FrameKind.GTS_RESPONSE,
            src=self.node_id,
            dst=BROADCAST,
            created_at=self.sim.now,
            meta={
                "op": op,
                "slot": slot.as_tuple(),
                "requester": requester,
                "responder": self.node_id,
                "status": status,
            },
        )
        self.node.send_frame(response)

    def _on_gts_response(self, frame: Frame) -> None:
        meta = frame.meta
        slot = GtsSlot(*meta["slot"])
        if meta.get("requester") == self.node_id and self._pending_handshake is not None:
            self.stats.responses_received += 1
            pending = self._pending_handshake
            self._pending_handshake = None
            if meta.get("status") == "granted":
                if pending["op"] == "allocate":
                    if not self.gts.is_allocated(slot):
                        self.gts.allocate(slot, GtsDirection.TX, frame.src)
                    self.stats.allocations += 1
                else:
                    if self.gts.deallocate(pending["slot"]) is not None:
                        self.stats.deallocations += 1
                self.stats.handshakes_completed += 1
                self.stats.notifies_sent += 1
                notify = Frame(
                    kind=FrameKind.GTS_NOTIFY,
                    src=self.node_id,
                    dst=BROADCAST,
                    created_at=self.sim.now,
                    meta=dict(meta, notifier=self.node_id),
                )
                self.node.send_frame(notify)
            else:
                self.stats.handshakes_failed += 1
            self._check_demand()
            return
        # Overheard response of somebody else's handshake: update the bitmap.
        self._update_neighbourhood(meta, slot)

    def _on_gts_notify(self, frame: Frame) -> None:
        meta = frame.meta
        slot = GtsSlot(*meta["slot"])
        if meta.get("responder") == self.node_id:
            self.stats.notifies_received += 1
            self._commit_grant(frame.src, slot, meta.get("op", "allocate"))
            return
        self._update_neighbourhood(meta, slot)

    def _commit_grant(self, requester: int, slot: GtsSlot, op: str) -> None:
        """Finalise a reservation once the requester's GTS-notify arrived."""
        self._pending_grants.pop(requester, None)
        if op == "allocate":
            if not self.gts.is_allocated(slot):
                self.gts.allocate(slot, GtsDirection.RX, requester)
            self.stats.allocations += 1
        else:
            if self.gts.deallocate(slot) is not None:
                self.stats.deallocations += 1

    def _update_neighbourhood(self, meta: Dict, slot: GtsSlot) -> None:
        if meta.get("status", "granted") != "granted":
            return
        if meta.get("op") == "allocate":
            if not self.gts.is_allocated(slot):
                self.gts.mark_neighbourhood_busy(slot)
        else:
            self.gts.mark_neighbourhood_free(slot)

    # ---------------------------------------------------------------- CFP data
    def on_cfp(self, superframe_in_multisuperframe: int) -> None:
        """Serve the allocated TX slots of the given superframe (one packet per GTS)."""
        for allocation in self.gts.allocations(GtsDirection.TX):
            if allocation.slot.superframe != superframe_in_multisuperframe:
                continue
            if not self.data_queue:
                break
            frame = self.data_queue.popleft()
            self.stats.data_sent_in_gts += 1
            if self.cfp_delivery is not None:
                self.cfp_delivery(allocation.peer, frame)

    def on_multisuperframe_end(self) -> None:
        """Book-keeping at the end of every multi-superframe."""
        if self.data_queue:
            self._idle_multisuperframes = 0
            self._check_demand()
        else:
            self._idle_multisuperframes += 1
            self.maybe_deallocate()

    def receive_cfp_data(self, frame: Frame) -> None:
        """A data frame arrived over one of our RX GTS."""
        if self.node.is_sink or frame.final_dst == self.node_id:
            self.node.deliveries.append(
                DeliveryRecord(
                    origin=frame.origin,
                    created_at=frame.created_at,
                    received_at=self.sim.now,
                    hops=frame.hops + 1,
                )
            )
            return
        if self.node.parent is None:
            self.node.packets_dropped_no_route += 1
            return
        self.node.packets_forwarded += 1
        self._enqueue_data(frame.next_hop_copy(self.node_id, self.node.parent))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DsmeNode({self.node_id}, queue={len(self.data_queue)}, "
            f"gts={self.gts.num_allocated})"
        )
