"""DSME superframe and multi-superframe timing (Appendix A of the paper).

A superframe consists of 16 equally long time slots: one beacon slot, 8 CAP
slots and 7 CFP slots.  With the 2.4 GHz PHY a superframe of order ``SO``
lasts ``960 * 2^SO`` symbols of 16 us.  The paper subdivides the 8 CAP slots
into 54 subslots for QMA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mac.gate import WindowedGate


@dataclass(frozen=True)
class SuperframeConfig:
    """Timing structure of DSME superframes."""

    superframe_order: int = 3
    symbol_time_s: float = 16e-6
    base_superframe_symbols: int = 960
    num_slots: int = 16
    beacon_slots: int = 1
    cap_slots: int = 8
    cfp_slots: int = 7
    cap_subslots: int = 54
    num_channels: int = 4
    superframes_per_multisuperframe: int = 2

    def __post_init__(self) -> None:
        if self.superframe_order < 0:
            raise ValueError("superframe_order must be non-negative")
        if self.beacon_slots + self.cap_slots + self.cfp_slots != self.num_slots:
            raise ValueError("beacon + CAP + CFP slots must equal num_slots")
        if self.cap_subslots <= 0 or self.num_channels <= 0:
            raise ValueError("cap_subslots and num_channels must be positive")
        if self.superframes_per_multisuperframe <= 0:
            raise ValueError("superframes_per_multisuperframe must be positive")

    # ----------------------------------------------------------------- timing
    @property
    def superframe_duration(self) -> float:
        """Duration of one superframe in seconds."""
        return self.base_superframe_symbols * (2 ** self.superframe_order) * self.symbol_time_s

    @property
    def slot_duration(self) -> float:
        """Duration of one of the 16 superframe slots."""
        return self.superframe_duration / self.num_slots

    @property
    def beacon_duration(self) -> float:
        return self.beacon_slots * self.slot_duration

    @property
    def cap_duration(self) -> float:
        """Duration of the contention access period."""
        return self.cap_slots * self.slot_duration

    @property
    def cfp_duration(self) -> float:
        """Duration of the contention free period."""
        return self.cfp_slots * self.slot_duration

    @property
    def cap_offset(self) -> float:
        """Start of the CAP relative to the superframe start (after the beacon)."""
        return self.beacon_duration

    @property
    def subslot_duration(self) -> float:
        """Duration of one QMA subslot (CAP duration / number of subslots)."""
        return self.cap_duration / self.cap_subslots

    @property
    def multisuperframe_duration(self) -> float:
        """Duration of one multi-superframe."""
        return self.superframes_per_multisuperframe * self.superframe_duration

    @property
    def gts_per_superframe(self) -> int:
        """Number of distinct GTS resources per superframe (slots x channels)."""
        return self.cfp_slots * self.num_channels

    @property
    def gts_per_multisuperframe(self) -> int:
        return self.gts_per_superframe * self.superframes_per_multisuperframe

    # ------------------------------------------------------------------ gates
    def cap_gate(self) -> WindowedGate:
        """An activity gate that is open exactly during every superframe's CAP."""
        return WindowedGate(
            period=self.superframe_duration,
            window=self.cap_duration,
            offset=self.cap_offset,
        )

    def cfp_start(self, superframe_index: int) -> float:
        """Absolute start time of the CFP of the given superframe."""
        return (
            superframe_index * self.superframe_duration
            + self.beacon_duration
            + self.cap_duration
        )
