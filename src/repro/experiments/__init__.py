"""Experiment runners — one per figure/table of the paper's evaluation.

Every runner builds its own simulator, network and traffic through
:class:`repro.scenario.ScenarioBuilder`, instruments the run with metric
collectors resolved from :mod:`repro.metrics.registry` and returns a typed
:class:`~repro.metrics.report.SimReport` with the metrics the
corresponding figure plots (``collectors=`` selects a different set).  The
benchmarks in ``benchmarks/`` call these runners with reduced workloads so
that the whole suite regenerates every figure's data in minutes; the CLI
(`qma-repro`) exposes the same runners with paper-scale defaults.
"""

from repro.experiments.base import (
    MAC_KINDS,
    make_mac_factory,
    repeat_scalar,
    summarize,
)
from repro.experiments.hidden_node import (
    HiddenNodeResult,
    run_convergence,
    run_fluctuating,
    run_hidden_node,
    run_slot_utilisation,
    sweep_hidden_node,
)
from repro.experiments.testbed import (
    TestbedResult,
    compare_energy_proxy,
    run_star,
    run_tree,
    sweep_testbed,
)
from repro.experiments.scalability import ScalabilityResult, run_scalability, sweep_scalability
from repro.experiments.handshake import handshake_expected_messages, run_handshake
from repro.metrics.report import SimReport

__all__ = [
    "MAC_KINDS",
    "HiddenNodeResult",
    "ScalabilityResult",
    "SimReport",
    "TestbedResult",
    "compare_energy_proxy",
    "handshake_expected_messages",
    "make_mac_factory",
    "repeat_scalar",
    "run_convergence",
    "run_fluctuating",
    "run_handshake",
    "run_hidden_node",
    "run_scalability",
    "run_slot_utilisation",
    "run_star",
    "run_tree",
    "summarize",
    "sweep_hidden_node",
    "sweep_scalability",
    "sweep_testbed",
]
