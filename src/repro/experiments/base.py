"""Shared helpers for the experiment runners.

MAC protocols are resolved through :mod:`repro.mac.registry`; the old
hard-coded if/elif ladder is gone.  :data:`MAC_KINDS` and
:func:`make_mac_factory` remain as thin registry views for back-compat —
new code should use :class:`repro.scenario.ScenarioBuilder` (or the
registry directly).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.stats import confidence_interval_95
from repro.core.config import QmaConfig
from repro.core.exploration import ExplorationStrategy
from repro.core.rewards import RewardFunction
from repro.mac.aloha import AlohaConfig
from repro.mac.csma import CsmaConfig
from repro.mac.registry import RegistryError, get_mac_spec, mac_kinds
from repro.mac.tdma import TdmaConfig
from repro.net.network import MacFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: Channel-access schemes available to every experiment — a snapshot of the
#: registry taken when this module is imported.  Protocols registered later
#: (third-party plugins) are still buildable via :func:`make_mac_factory`
#: and sweepable; call :func:`repro.mac.registry.mac_kinds` for a live view.
MAC_KINDS = mac_kinds()


def make_mac_factory(
    kind: str,
    qma_config: Optional[QmaConfig] = None,
    csma_config: Optional[CsmaConfig] = None,
    aloha_config: Optional[AlohaConfig] = None,
    tdma_config: Optional[TdmaConfig] = None,
    exploration: Optional[Callable[[], ExplorationStrategy]] = None,
    rewards: Optional[RewardFunction] = None,
    gate=None,
) -> MacFactory:
    """Build a :data:`~repro.net.network.MacFactory` for the given protocol name.

    A thin lookup into :mod:`repro.mac.registry`: the per-family config
    keywords are routed to the protocol whose config class matches.
    ``exploration`` is a zero-argument callable creating a fresh exploration
    strategy per node (strategies are stateful and must not be shared).
    """
    try:
        spec = get_mac_spec(kind)
    except RegistryError as exc:
        raise ValueError(str(exc)) from None

    by_config_cls = {
        QmaConfig: qma_config,
        CsmaConfig: csma_config,
        AlohaConfig: aloha_config,
        TdmaConfig: tdma_config,
    }
    config = by_config_cls.get(spec.config_cls)

    def factory(sim: "Simulator", radio: "Radio") -> "MacProtocol":
        kwargs = {}
        if spec.config_cls is QmaConfig:
            kwargs["exploration"] = exploration() if exploration is not None else None
            kwargs["rewards"] = rewards
        return spec.build(sim, radio, config=config, gate=gate, **kwargs)

    return factory


def repeat_scalar(
    run: Callable[[int], float],
    repetitions: int,
    base_seed: int = 0,
    jobs: int = 1,
) -> Tuple[float, float, List[float]]:
    """Run ``run(seed)`` for several seeds; return (mean, 95 % CI half-width, samples).

    With ``jobs > 1`` the seeds are fanned out over a process pool via the
    campaign layer; ``run`` must then be picklable (a module-level function
    or a :func:`functools.partial` of one).
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    from repro.campaign.runner import map_seeds  # local import: campaign imports us

    seeds = [base_seed + i for i in range(repetitions)]
    samples = [float(value) for value in map_seeds(run, seeds, jobs=jobs)]
    mean, half_width = confidence_interval_95(samples)
    return mean, half_width, samples


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean and 95 % confidence half-width of a sample list as a dictionary."""
    mean, half_width = confidence_interval_95(list(samples))
    return {"mean": mean, "ci95": half_width, "n": float(len(samples))}
