"""Shared helpers for the experiment runners."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.stats import confidence_interval_95
from repro.core.config import QmaConfig
from repro.core.exploration import ExplorationStrategy
from repro.core.mac import QmaMac
from repro.core.rewards import RewardFunction
from repro.mac.aloha import AlohaConfig, AlohaQ, SlottedAloha
from repro.mac.csma import CsmaConfig, SlottedCsmaCa, UnslottedCsmaCa
from repro.net.network import MacFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: Channel-access schemes available to every experiment.
MAC_KINDS = ("qma", "slotted-csma", "unslotted-csma", "slotted-aloha", "aloha-q")


def make_mac_factory(
    kind: str,
    qma_config: Optional[QmaConfig] = None,
    csma_config: Optional[CsmaConfig] = None,
    aloha_config: Optional[AlohaConfig] = None,
    exploration: Optional[Callable[[], ExplorationStrategy]] = None,
    rewards: Optional[RewardFunction] = None,
    gate=None,
) -> MacFactory:
    """Build a :data:`~repro.net.network.MacFactory` for the given protocol name.

    ``exploration`` is a zero-argument callable creating a fresh exploration
    strategy per node (strategies are stateful and must not be shared).
    """
    if kind not in MAC_KINDS:
        raise ValueError(f"unknown MAC kind {kind!r}; expected one of {MAC_KINDS}")

    def factory(sim: "Simulator", radio: "Radio") -> "MacProtocol":
        if kind == "qma":
            return QmaMac(
                sim,
                radio,
                config=qma_config,
                exploration=exploration() if exploration is not None else None,
                rewards=rewards,
                gate=gate,
            )
        if kind == "slotted-csma":
            return SlottedCsmaCa(sim, radio, config=csma_config, gate=gate)
        if kind == "unslotted-csma":
            return UnslottedCsmaCa(sim, radio, config=csma_config, gate=gate)
        if kind == "slotted-aloha":
            return SlottedAloha(sim, radio, config=aloha_config, gate=gate)
        return AlohaQ(sim, radio, config=aloha_config, gate=gate)

    return factory


def repeat_scalar(
    run: Callable[[int], float],
    repetitions: int,
    base_seed: int = 0,
    jobs: int = 1,
) -> Tuple[float, float, List[float]]:
    """Run ``run(seed)`` for several seeds; return (mean, 95 % CI half-width, samples).

    With ``jobs > 1`` the seeds are fanned out over a process pool via the
    campaign layer; ``run`` must then be picklable (a module-level function
    or a :func:`functools.partial` of one).
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    from repro.campaign.runner import map_seeds  # local import: campaign imports us

    seeds = [base_seed + i for i in range(repetitions)]
    samples = [float(value) for value in map_seeds(run, seeds, jobs=jobs)]
    mean, half_width = confidence_interval_95(samples)
    return mean, half_width, samples


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean and 95 % confidence half-width of a sample list as a dictionary."""
    mean, half_width = confidence_interval_95(list(samples))
    return {"mean": mean, "ci95": half_width, "n": float(len(samples))}
