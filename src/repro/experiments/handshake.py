"""Analytic handshake experiment (Appendix A.1, Fig. 26).

Evaluates the absorbing Markov chain of the 3-way GTS handshake over a
sweep of per-message success probabilities and returns the expected number
of messages until a GTS is allocated.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.markov import expected_handshake_messages

#: Success probabilities used on the x-axis of Fig. 26.
PAPER_PROBABILITIES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def handshake_expected_messages(
    probabilities: Sequence[float] = PAPER_PROBABILITIES,
    retries: int = 3,
) -> Dict[float, float]:
    """Expected messages per handshake for every probability in the sweep."""
    return {p: expected_handshake_messages(p, retries) for p in probabilities}
