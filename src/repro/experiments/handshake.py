"""Analytic handshake experiment (Appendix A.1, Fig. 26).

Evaluates the absorbing Markov chain of the 3-way GTS handshake over a
sweep of per-message success probabilities and returns the expected number
of messages until a GTS is allocated.

:func:`run_handshake` packages the curve as a typed
:class:`~repro.metrics.report.SimReport` (series ``expected_messages``
plus summary scalars), matching the report type of the simulation-backed
runners; :func:`handshake_expected_messages` remains the thin dictionary
view of the same curve.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.analysis.markov import expected_handshake_messages
from repro.metrics.report import SimReport

#: Success probabilities used on the x-axis of Fig. 26.
PAPER_PROBABILITIES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def handshake_expected_messages(
    probabilities: Sequence[float] = PAPER_PROBABILITIES,
    retries: int = 3,
) -> Dict[float, float]:
    """Expected messages per handshake for every probability in the sweep."""
    return {p: expected_handshake_messages(p, retries) for p in probabilities}


def run_handshake(
    probabilities: Sequence[float] = PAPER_PROBABILITIES,
    retries: int = 3,
) -> SimReport:
    """The Fig. 26 curve as a :class:`SimReport`.

    The ``expected_messages`` series holds ``(probability, messages)``
    samples in sweep order; the scalars summarise the curve's endpoints
    (the expected message count at the lowest and highest probability).
    """
    if not probabilities:
        raise ValueError("probabilities must not be empty")
    curve = handshake_expected_messages(probabilities, retries=retries)
    samples = [(float(p), curve[p]) for p in probabilities]
    ordered = sorted(samples)
    return SimReport(
        experiment="handshake",
        params={"retries": retries},
        scalars={
            "expected_messages_min_p": ordered[0][1],
            "expected_messages_max_p": ordered[-1][1],
        },
        series={"expected_messages": samples},
    )
