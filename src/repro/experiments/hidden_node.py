"""Hidden-node experiments (Sect. 6.1, Figs. 7-15 of the paper).

Three nodes (A — B — C) where A and C are hidden from each other both send
Poisson traffic with rate δ to the sink B.  Data generation starts after a
warm-up period during which only low-rate management traffic is exchanged,
as in the paper.

The runners are thin compositions: scenario assembly goes through
:class:`repro.scenario.ScenarioBuilder` and every metric is produced by a
collector resolved from :mod:`repro.metrics.registry`, returned as a typed
:class:`~repro.metrics.report.SimReport`.  ``collectors=`` accepts any
registered collector names (default: :data:`DEFAULT_COLLECTORS`); ``mac``
and ``propagation`` accept any name registered in
:mod:`repro.mac.registry` / :mod:`repro.phy.registry`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.slots import SlotUtilisation
from repro.core.config import QmaConfig
from repro.mac.registry import get_mac_spec
from repro.metrics.base import CollectionContext
from repro.metrics.collectors import ConvergenceCollector, SlotUtilisationCollector
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.builder import BuiltScenario, ScenarioBuilder
from repro.scenario.config import ScenarioConfig
from repro.topology.hidden_node import NODE_A, NODE_C

#: Packet generation rates of Fig. 7-9.
PAPER_DELTAS = (1, 2, 4, 6, 8, 10, 25, 50, 100)

#: The two traffic sources of the scenario (B is the sink).
SOURCES = (NODE_A, NODE_C)

#: Collector composition reproducing the historical ``HiddenNodeResult``
#: metrics (scalars are numerically identical for fixed seeds).
DEFAULT_COLLECTORS = ("pdr", "queue", "delay", "attempts", "convergence")

#: Per-collector constructor overrides for this experiment (registry
#: defaults already match the hidden-node metric conventions).
COLLECTOR_OVERRIDES: Dict[str, Dict[str, Any]] = {}

#: Attribute names of the retired ``HiddenNodeResult`` dataclass mapped
#: onto report sections (resolved with a DeprecationWarning).
_LEGACY_ATTRS = {
    "q_histories": ("tables", "q_history"),
    "rho_histories": ("tables", "rho_history"),
    "policies": ("tables", "policy"),
}

#: Deprecated alias: the hidden-node runners now return a
#: :class:`~repro.metrics.report.SimReport`.
HiddenNodeResult = SimReport


def _default_qma_config() -> QmaConfig:
    return QmaConfig()


def _build(
    mac: str,
    seed: int,
    qma_config: Optional[QmaConfig],
    propagation: Optional[str],
    propagation_params: Optional[Mapping[str, Any]],
    link_distance: float,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
) -> BuiltScenario:
    """Assemble the hidden-node scenario through the builder."""
    scenario = ScenarioConfig(
        topology="hidden-node",
        topology_params={"link_distance": link_distance},
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        seed=seed,
        trace=trace,
        trace_limit=trace_limit,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else _default_qma_config()
    return ScenarioBuilder(scenario).build()


def run_hidden_node(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 100.0,
    management_period: float = 5.0,
    drain_time: float = 5.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_distance: float = 50.0,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    """Run one hidden-node scenario and return its :class:`SimReport`.

    ``packets_per_node`` and ``warmup`` default to the paper values (1000
    packets, 100 s); benchmarks pass smaller values.  ``collectors`` names
    registered metric collectors (default: :data:`DEFAULT_COLLECTORS`);
    ``interference="sinr"`` (with a propagation model) swaps in the
    SINR/capture channel.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if packets_per_node <= 0:
        raise ValueError("packets_per_node must be positive")

    built = _build(
        mac, seed, qma_config, propagation, propagation_params, link_distance,
        trace=trace, trace_limit=trace_limit,
        interference=interference, sinr_threshold_db=sinr_threshold_db,
    )
    sim, network = built.sim, built.network

    # Management traffic during the warm-up (association / beacon exchange).
    management = [
        built.attach_management(
            node_id,
            period=management_period,
            start_time=1.0,
            jitter=management_period * 0.2,
            rng_name=f"management-{node_id}",
        )
        for node_id in SOURCES
    ]

    ctx = CollectionContext(
        sim=sim,
        network=network,
        sources=SOURCES,
        warmup=warmup,
        management_generators=dict(zip(SOURCES, management)),
    )
    active = build_collectors(
        DEFAULT_COLLECTORS if collectors is None else collectors, COLLECTOR_OVERRIDES
    )
    for collector in active:
        collector.attach(ctx)

    network.start()

    # Primary traffic starts after the warm-up.
    data_generators = []
    for node_id, mgmt in zip(SOURCES, management):
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"data-{node_id}",
            start_at=warmup,
        )
        data_generators.append(generator)
        sim.schedule_at(warmup, mgmt.stop)
    ctx.data_generators = dict(zip(SOURCES, data_generators))

    expected_duration = warmup + packets_per_node / delta + drain_time
    end_time = min(expected_duration, max_duration) if max_duration else expected_duration
    sim.run_until(end_time)

    report = SimReport(
        experiment="hidden-node",
        mac=mac,
        topology=built.topology.name,
        params={
            "delta": delta,
            "packets_per_node": packets_per_node,
            "warmup": warmup,
            "seed": seed,
        },
        duration=sim.now,
        trace_dropped=ctx.trace_dropped(),
        legacy=dict(_LEGACY_ATTRS),
    )
    for collector in active:
        collector.finalize(ctx, report)
    return report


def sweep_hidden_node(
    macs: Sequence[str] = ("qma", "slotted-csma", "unslotted-csma"),
    deltas: Sequence[float] = PAPER_DELTAS,
    packets_per_node: int = 1000,
    repetitions: int = 15,
    warmup: float = 100.0,
    base_seed: int = 0,
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    metrics: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, Dict[float, List[SimReport]]]:
    """Full sweep over MACs and packet rates (the data behind Figs. 7-9).

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    ``metrics`` optionally selects the collector set per run.
    """
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment="hidden-node",
        macs=macs,
        propagations=propagations,
        grid={"delta": list(deltas)},
        fixed={"packets_per_node": packets_per_node, "warmup": warmup, **kwargs},
        seeds=[base_seed + rep for rep in range(repetitions)],
        metrics=metrics,
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, Dict[float, List[SimReport]]] = {}
    for record in campaign:
        mac = record.scenario.mac
        delta = record.scenario.params["delta"]
        results.setdefault(mac, {}).setdefault(delta, []).append(record.raw)
    return results


def run_convergence(
    delta: float = 10.0,
    duration: float = 450.0,
    warmup: float = 100.0,
    packets_per_node: int = 100_000,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> SimReport:
    """Convergence run for Fig. 10 / Fig. 11: unlimited traffic for a fixed duration."""
    return run_hidden_node(
        mac="qma",
        delta=delta,
        packets_per_node=packets_per_node,
        warmup=warmup,
        seed=seed,
        qma_config=qma_config,
        max_duration=duration,
    )


def run_fluctuating(
    duration: float = 1500.0,
    high_rate: float = 100.0,
    low_rate: float = 10.0,
    phase_duration: float = 100.0,
    node_c_rate: float = 25.0,
    node_c_join_time: float = 100.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Fluctuating-traffic experiment of Fig. 12.

    Node A alternates between ``low_rate`` and ``high_rate`` every
    ``phase_duration`` seconds; node C joins after ``node_c_join_time`` with a
    constant rate.  Returns the cumulative-Q-value history per node (the
    ``q_history`` table of a :class:`ConvergenceCollector`).
    """
    built = _build("qma", seed, qma_config, None, None, link_distance=50.0)
    sim, network = built.sim, built.network

    traffic_a = built.fluctuating_source(
        NODE_A,
        phases=[(low_rate, phase_duration), (high_rate, phase_duration)],
        start_time=0.0,
        rng_name="fluctuating-a",
    )
    network.node(NODE_A).attach_traffic(traffic_a)

    traffic_c = built.poisson_source(
        NODE_C,
        rate=node_c_rate,
        start_time=node_c_join_time,
        rng_name="fluctuating-c",
    )

    network.start()
    sim.schedule_at(node_c_join_time, traffic_c.start)
    sim.run_until(duration)

    ctx = CollectionContext(sim=sim, network=network, sources=SOURCES)
    report = SimReport(experiment="hidden-node", mac="qma", duration=sim.now)
    ConvergenceCollector().finalize(ctx, report)
    return report.tables["q_history"]


def run_slot_utilisation(
    delta: float = 10.0,
    snapshot_time: float = 150.0,
    duration: float = 400.0,
    warmup: float = 100.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> Tuple[SlotUtilisation, SlotUtilisation]:
    """Subslot utilisation after the first exploration phase and for the final policy.

    Returns ``(snapshot, final)`` — the data behind Figs. 13-15.
    """
    built = _build("qma", seed, qma_config, None, None, link_distance=50.0)
    sim, network = built.sim, built.network

    for node_id in SOURCES:
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            rng_name=f"slots-{node_id}",
        )
        network.node(node_id).attach_traffic(generator)

    network.start()

    # Attached after network start so the snapshot event keeps the exact
    # heap position (and tie-breaking sequence number) of earlier releases.
    ctx = CollectionContext(sim=sim, network=network, sources=SOURCES, warmup=warmup)
    slots = SlotUtilisationCollector(snapshot_time=snapshot_time)
    slots.attach(ctx)

    sim.run_until(duration)

    report = SimReport(experiment="hidden-node", mac="qma", duration=sim.now)
    slots.finalize(ctx, report)
    return report.details["slot_utilisation_snapshot"], report.details["slot_utilisation"]
