"""Hidden-node experiments (Sect. 6.1, Figs. 7-15 of the paper).

Three nodes (A — B — C) where A and C are hidden from each other both send
Poisson traffic with rate δ to the sink B.  Data generation starts after a
warm-up period during which only low-rate management traffic is exchanged,
as in the paper.  The runners report

* packet delivery ratio (Fig. 7), average queue level (Fig. 8) and average
  end-to-end delay (Fig. 9) for sweeps over δ and the channel-access scheme,
* the cumulative-Q-value and exploration-probability time series
  (Figs. 10-12), and
* the subslot utilisation after the first exploration phase and for the
  final policy (Figs. 13-15).

Scenario assembly (topology + propagation + MAC) goes through
:class:`repro.scenario.ScenarioBuilder`; the ``mac`` and ``propagation``
arguments accept any name registered in :mod:`repro.mac.registry` /
:mod:`repro.phy.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.slots import SlotUtilisation, slot_utilisation
from repro.core.actions import QAction
from repro.core.config import QmaConfig
from repro.core.mac import QmaMac
from repro.mac.registry import get_mac_spec
from repro.net.network import Network
from repro.scenario.builder import BuiltScenario, ScenarioBuilder
from repro.scenario.config import ScenarioConfig
from repro.topology.hidden_node import NODE_A, NODE_C

#: Packet generation rates of Fig. 7-9.
PAPER_DELTAS = (1, 2, 4, 6, 8, 10, 25, 50, 100)

#: The two traffic sources of the scenario (B is the sink).
SOURCES = (NODE_A, NODE_C)


@dataclass
class HiddenNodeResult:
    """Metrics of one hidden-node run."""

    mac: str
    delta: float
    pdr: float
    average_queue_level: float
    average_delay: float
    packets_generated: int
    packets_delivered: int
    transmission_attempts: int
    duration: float
    q_histories: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)
    rho_histories: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)
    policies: Dict[int, List[QAction]] = field(default_factory=dict)


def _default_qma_config() -> QmaConfig:
    return QmaConfig()


def _build(
    mac: str,
    seed: int,
    qma_config: Optional[QmaConfig],
    propagation: Optional[str],
    propagation_params: Optional[Mapping[str, Any]],
    link_distance: float,
) -> BuiltScenario:
    """Assemble the hidden-node scenario through the builder."""
    scenario = ScenarioConfig(
        topology="hidden-node",
        topology_params={"link_distance": link_distance},
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        seed=seed,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else _default_qma_config()
    return ScenarioBuilder(scenario).build()


def run_hidden_node(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 100.0,
    management_period: float = 5.0,
    drain_time: float = 5.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_distance: float = 50.0,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
) -> HiddenNodeResult:
    """Run one hidden-node scenario and return its metrics.

    ``packets_per_node`` and ``warmup`` default to the paper values (1000
    packets, 100 s); benchmarks pass smaller values.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if packets_per_node <= 0:
        raise ValueError("packets_per_node must be positive")

    built = _build(mac, seed, qma_config, propagation, propagation_params, link_distance)
    sim, network = built.sim, built.network

    # Management traffic during the warm-up (association / beacon exchange).
    management = [
        built.attach_management(
            node_id,
            period=management_period,
            start_time=1.0,
            jitter=management_period * 0.2,
            rng_name=f"management-{node_id}",
        )
        for node_id in SOURCES
    ]

    network.start()

    # Primary traffic starts after the warm-up.
    data_generators = []
    for node_id, mgmt in zip(SOURCES, management):
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"data-{node_id}",
            start_at=warmup,
        )
        data_generators.append(generator)
        sim.schedule_at(warmup, mgmt.stop)

    expected_duration = warmup + packets_per_node / delta + drain_time
    end_time = min(expected_duration, max_duration) if max_duration else expected_duration
    sim.run_until(end_time)

    result = HiddenNodeResult(
        mac=mac,
        delta=delta,
        pdr=_data_pdr(network, SOURCES, warmup),
        average_queue_level=network.average_queue_level(SOURCES),
        average_delay=network.average_end_to_end_delay(),
        packets_generated=sum(g.generated for g in data_generators),
        packets_delivered=len(network.sink.deliveries),
        transmission_attempts=network.total_transmission_attempts(SOURCES),
        duration=sim.now,
    )
    for node_id in SOURCES:
        node_mac = network.mac(node_id)
        if isinstance(node_mac, QmaMac):
            result.q_histories[node_id] = list(node_mac.q_history)
            result.rho_histories[node_id] = list(node_mac.rho_history)
            result.policies[node_id] = node_mac.policy_snapshot()
    return result


def _data_pdr(network: Network, sources: Sequence[int], warmup: float) -> float:
    """PDR over data packets generated after the warm-up (management excluded)."""
    delivered = sum(
        1
        for record in network.sink.deliveries
        if record.origin in sources and record.created_at >= warmup
    )
    generated = sum(
        network.node(node_id).packets_generated for node_id in sources
    )
    # Generated counts include management packets; remove the ones that were
    # sent before the warm-up ended (delivered or not, their number equals the
    # generator invocations, tracked through the traffic objects by callers
    # that need exact numbers).  For the PDR we compare like with like:
    data_generated = generated - _management_generated(network, sources)
    if data_generated <= 0:
        return 0.0
    return min(1.0, delivered / data_generated)


def _management_generated(network: Network, sources: Sequence[int]) -> int:
    total = 0
    for node_id in sources:
        node = network.node(node_id)
        if node.traffic is not None:
            total += node.traffic.generated
    return total


def sweep_hidden_node(
    macs: Sequence[str] = ("qma", "slotted-csma", "unslotted-csma"),
    deltas: Sequence[float] = PAPER_DELTAS,
    packets_per_node: int = 1000,
    repetitions: int = 15,
    warmup: float = 100.0,
    base_seed: int = 0,
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    **kwargs,
) -> Dict[str, Dict[float, List[HiddenNodeResult]]]:
    """Full sweep over MACs and packet rates (the data behind Figs. 7-9).

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    """
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment="hidden-node",
        macs=macs,
        propagations=propagations,
        grid={"delta": list(deltas)},
        fixed={"packets_per_node": packets_per_node, "warmup": warmup, **kwargs},
        seeds=[base_seed + rep for rep in range(repetitions)],
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, Dict[float, List[HiddenNodeResult]]] = {}
    for record in campaign:
        mac = record.scenario.mac
        delta = record.scenario.params["delta"]
        results.setdefault(mac, {}).setdefault(delta, []).append(record.raw)
    return results


def run_convergence(
    delta: float = 10.0,
    duration: float = 450.0,
    warmup: float = 100.0,
    packets_per_node: int = 100_000,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> HiddenNodeResult:
    """Convergence run for Fig. 10 / Fig. 11: unlimited traffic for a fixed duration."""
    return run_hidden_node(
        mac="qma",
        delta=delta,
        packets_per_node=packets_per_node,
        warmup=warmup,
        seed=seed,
        qma_config=qma_config,
        max_duration=duration,
    )


def run_fluctuating(
    duration: float = 1500.0,
    high_rate: float = 100.0,
    low_rate: float = 10.0,
    phase_duration: float = 100.0,
    node_c_rate: float = 25.0,
    node_c_join_time: float = 100.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """Fluctuating-traffic experiment of Fig. 12.

    Node A alternates between ``low_rate`` and ``high_rate`` every
    ``phase_duration`` seconds; node C joins after ``node_c_join_time`` with a
    constant rate.  Returns the cumulative-Q-value history per node.
    """
    built = _build("qma", seed, qma_config, None, None, link_distance=50.0)
    sim, network = built.sim, built.network

    traffic_a = built.fluctuating_source(
        NODE_A,
        phases=[(low_rate, phase_duration), (high_rate, phase_duration)],
        start_time=0.0,
        rng_name="fluctuating-a",
    )
    network.node(NODE_A).attach_traffic(traffic_a)

    traffic_c = built.poisson_source(
        NODE_C,
        rate=node_c_rate,
        start_time=node_c_join_time,
        rng_name="fluctuating-c",
    )

    network.start()
    sim.schedule_at(node_c_join_time, traffic_c.start)
    sim.run_until(duration)

    histories: Dict[int, List[Tuple[float, float]]] = {}
    for node_id in SOURCES:
        mac = network.mac(node_id)
        if isinstance(mac, QmaMac):
            histories[node_id] = list(mac.q_history)
    return histories


def run_slot_utilisation(
    delta: float = 10.0,
    snapshot_time: float = 150.0,
    duration: float = 400.0,
    warmup: float = 100.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
) -> Tuple[SlotUtilisation, SlotUtilisation]:
    """Subslot utilisation after the first exploration phase and for the final policy.

    Returns ``(snapshot, final)`` — the data behind Figs. 13-15.
    """
    built = _build("qma", seed, qma_config, None, None, link_distance=50.0)
    sim, network = built.sim, built.network

    for node_id in SOURCES:
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            rng_name=f"slots-{node_id}",
        )
        network.node(node_id).attach_traffic(generator)

    network.start()

    snapshot_policies: Dict[int, List[QAction]] = {}

    def take_snapshot() -> None:
        for node_id in SOURCES:
            mac = network.mac(node_id)
            if isinstance(mac, QmaMac):
                snapshot_policies[node_id] = mac.policy_snapshot()

    sim.schedule_at(snapshot_time, take_snapshot)
    sim.run_until(duration)

    final_policies = {
        node_id: network.mac(node_id).policy_snapshot()
        for node_id in SOURCES
        if isinstance(network.mac(node_id), QmaMac)
    }
    if not snapshot_policies:
        snapshot_policies = final_policies
    return slot_utilisation(snapshot_policies), slot_utilisation(final_policies)
