"""Scalability experiments with DSME secondary traffic (Sect. 6.3, Figs. 21-22).

A concentric data-collection topology with 7, 19, 43 or 91 nodes routes
fluctuating primary traffic towards the central sink over GTS.  The GTS
(de)allocation handshakes plus periodic routing broadcasts form the
secondary traffic carried by the contention access period, whose channel
access is any MAC registered in :mod:`repro.mac.registry` (the paper
evaluates QMA vs. slotted/unslotted CSMA/CA).

The runner is a thin composition: scenario assembly goes through
:meth:`repro.scenario.ScenarioBuilder.build_dsme` and the metrics come
from the collector registry (default: the ``dsme`` secondary-traffic
collector), returned as a typed :class:`~repro.metrics.report.SimReport`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from repro.dsme.superframe import SuperframeConfig
from repro.metrics.base import CollectionContext
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.builder import ScenarioBuilder, topology_accepts_node_count
from repro.scenario.config import ScenarioConfig
from repro.traffic.generators import FluctuatingPoissonTraffic

#: Ring counts of the paper, corresponding to 7 / 19 / 43 / 91 nodes.
PAPER_RINGS = (1, 2, 3, 4)

#: Node count of seeded/placement topologies when ``nodes`` is not given
#: (matches the 2-ring concentric deployment of the paper).
DEFAULT_TOPOLOGY_NODES = 19

#: Collector composition reproducing the historical ``ScalabilityResult``
#: metrics (scalars are numerically identical for fixed seeds).
DEFAULT_COLLECTORS = ("dsme",)

COLLECTOR_OVERRIDES: Dict[str, Dict[str, Any]] = {}

_LEGACY_ATTRS = {
    "secondary": ("details", "secondary"),
}

#: Deprecated alias: the scalability runner now returns a
#: :class:`~repro.metrics.report.SimReport`.
ScalabilityResult = SimReport


def run_scalability(
    mac: str = "qma",
    rings: int = 2,
    duration: float = 300.0,
    warmup: float = 200.0,
    low_rate: float = 1.0,
    high_rate: float = 10.0,
    phase_duration: float = 5.0,
    seed: int = 0,
    config: Optional[SuperframeConfig] = None,
    route_discovery_period: Optional[float] = 2.0,
    topology: str = "concentric",
    nodes: Optional[int] = None,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    """Run one DSME scalability scenario.

    The paper uses a warm-up of 200 s for network formation and alternating
    per-node rates of δ = 1 and δ = 10 packets/s every 5 s; ``duration`` is the
    total simulated time including the warm-up.

    ``topology`` names any registered data-collection topology (default:
    the paper's ``concentric`` rings, sized by ``rings``).  Count-sized
    topologies — e.g. ``random`` uniform placement — are sized by
    ``nodes`` (default :data:`DEFAULT_TOPOLOGY_NODES`); fixed-size
    topologies (``iotlab-tree``/``iotlab-star``/``hidden-node``) take
    neither knob and reject an explicit ``nodes``.  Mixed
    ``--grid topology=...`` sweeps stay convenient: ``rings`` only sizes
    ``concentric`` grid points and ``nodes`` only count-sized ones, each
    ignored where not applicable.  Seeded placement factories receive the
    scenario seed, so the deployment is a deterministic function of the
    seed (and part of the construction cache key).
    """
    if duration <= warmup:
        raise ValueError("duration must exceed the warm-up time")
    if topology == "concentric":
        if rings < 1:
            raise ValueError("rings must be at least 1")
        topology_params: Dict[str, Any] = {"rings": rings}
    elif topology_accepts_node_count(topology):
        node_count = DEFAULT_TOPOLOGY_NODES if nodes is None else int(nodes)
        if node_count < 2:
            raise ValueError("nodes must be at least 2 (a sink and one source)")
        topology_params = {"num_nodes": node_count}
    else:
        if nodes is not None:
            raise ValueError(
                f"topology {topology!r} has a fixed size; the nodes parameter "
                "only applies to count-sized topologies such as 'random'"
            )
        topology_params = {}

    scenario = ScenarioConfig(
        topology=topology,
        topology_params=topology_params,
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        seed=seed,
        trace=trace,
        trace_limit=trace_limit,
    )
    built = ScenarioBuilder(scenario).build_dsme(
        superframe_config=config,
        route_discovery_period=route_discovery_period,
    )
    sim, topology, dsme = built.sim, built.topology, built.dsme

    ctx = CollectionContext(
        sim=sim,
        network=dsme.network,
        sources=tuple(dsme.sources()),
        warmup=warmup,
        dsme=dsme,
    )
    active = build_collectors(
        DEFAULT_COLLECTORS if collectors is None else collectors, COLLECTOR_OVERRIDES
    )
    for collector in active:
        collector.attach(ctx)

    for node_id, dsme_node in dsme.sources().items():
        traffic = FluctuatingPoissonTraffic(
            sim,
            dsme_node.generate_data,
            phases=[(low_rate, phase_duration), (high_rate, phase_duration)],
            start_time=warmup,
            rng_name=f"scalability-{node_id}",
        )
        sim.schedule_at(warmup, traffic.start)

    dsme.start()
    sim.run_until(duration)

    report_params: Dict[str, Any] = {
        "rings": rings, "duration": duration, "warmup": warmup, "seed": seed,
    }
    if scenario.topology != "concentric":
        # Non-default topologies record their axis; the concentric default
        # keeps the historical parameter set for report parity.
        report_params["topology"] = scenario.topology
        report_params.update(scenario.topology_params)
    report = SimReport(
        experiment="scalability",
        mac=mac,
        topology=topology.name,
        params=report_params,
        duration=sim.now,
        trace_dropped=ctx.trace_dropped(),
        legacy=dict(_LEGACY_ATTRS),
    )
    for collector in active:
        collector.finalize(ctx, report)
    return report


def sweep_scalability(
    macs: Sequence[str] = ("qma", "slotted-csma", "unslotted-csma"),
    rings: Sequence[int] = PAPER_RINGS,
    repetitions: int = 1,
    base_seed: int = 0,
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    metrics: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, Dict[int, list]]:
    """Sweep over MACs and ring counts (the data behind Figs. 21-22).

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    """
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment="scalability",
        macs=macs,
        propagations=propagations,
        grid={"rings": list(rings)},
        fixed=dict(kwargs),
        seeds=[base_seed + rep for rep in range(repetitions)],
        metrics=metrics,
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, Dict[int, list]] = {}
    for record in campaign:
        mac = record.scenario.mac
        ring_count = record.scenario.params["rings"]
        results.setdefault(mac, {}).setdefault(ring_count, []).append(record.raw)
    return results
