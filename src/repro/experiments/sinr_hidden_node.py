"""SINR hidden-node experiment: the asymmetric-link regime under capture.

Four nodes on a line (see :mod:`repro.topology.sinr_hidden_node`) run under
the SINR interference model with a carrier-sense range wider than the
decode range.  The scenario is built so three claims hold simultaneously:

* the HIDDEN sender's uplink to the sink is geometrically in range but
  SINR-starved — its frames are *received as energy* yet never decoded, so
  ``hidden_delivered`` stays 0 while the node itself keeps receiving
  (overheard RELAY traffic);
* the NEAR sender's frames are captured over HIDDEN's at the sink (their
  signal clears the threshold against HIDDEN's interference), so NEAR's
  PDR stays high even during overlap — the binary collision model would
  destroy both frames;
* NEAR's transmissions are sensed-only at HIDDEN (beyond decode range,
  inside carrier-sense range), driving ``cca_sensed_only_count`` up.

The runner mirrors :func:`repro.experiments.hidden_node.run_hidden_node`:
management traffic during the warm-up, Poisson data sources afterwards,
metrics through registered collectors, results as a
:class:`~repro.metrics.report.SimReport`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.config import QmaConfig
from repro.mac.registry import get_mac_spec
from repro.metrics.base import CollectionContext
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.builder import BuiltScenario, ScenarioBuilder
from repro.scenario.config import ScenarioConfig
from repro.topology.sinr_hidden_node import (
    CARRIER_SENSE_RANGE,
    COMMUNICATION_RANGE,
    HIDDEN,
    NEAR,
    RELAY,
)

#: The three traffic sources of the scenario (node 0 is the sink).
SOURCES = (NEAR, RELAY, HIDDEN)

#: Collector composition: PDR plus the asymmetry scalars of the regime.
DEFAULT_COLLECTORS = ("pdr", "attempts", "link-asymmetry")

#: Per-collector constructor overrides for this experiment.
COLLECTOR_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "link-asymmetry": {"hidden_node": HIDDEN, "near_node": NEAR},
}

#: Default propagation parameters: unit disk with a decoupled, much wider
#: carrier-sense range (the regime needs NEAR sensed — not decoded — at
#: HIDDEN, 115 m away).
DEFAULT_PROPAGATION_PARAMS: Dict[str, Any] = {
    "communication_range": COMMUNICATION_RANGE,
    "carrier_sense_range": CARRIER_SENSE_RANGE,
}


def _build(
    mac: str,
    seed: int,
    qma_config: Optional[QmaConfig],
    propagation: str,
    propagation_params: Optional[Mapping[str, Any]],
    sinr_threshold_db: float,
    trace: bool,
    trace_limit: Optional[int],
) -> BuiltScenario:
    scenario = ScenarioConfig(
        topology="sinr-hidden-node",
        mac=mac,
        propagation=propagation,
        propagation_params=dict(
            DEFAULT_PROPAGATION_PARAMS if propagation_params is None else propagation_params
        ),
        interference="sinr",
        sinr_threshold_db=sinr_threshold_db,
        seed=seed,
        trace=trace,
        trace_limit=trace_limit,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else QmaConfig()
    return ScenarioBuilder(scenario).build()


def run_sinr_hidden_node(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 200,
    warmup: float = 10.0,
    management_period: float = 5.0,
    drain_time: float = 5.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    propagation: str = "unit-disk",
    propagation_params: Optional[Mapping[str, Any]] = None,
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    """Run one SINR hidden-node scenario and return its :class:`SimReport`.

    Defaults are sized for a quick demonstration run; the scalars of the
    ``link-asymmetry`` collector carry the regime's physics claims.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if packets_per_node <= 0:
        raise ValueError("packets_per_node must be positive")

    built = _build(
        mac, seed, qma_config, propagation, propagation_params,
        sinr_threshold_db, trace, trace_limit,
    )
    sim, network = built.sim, built.network

    management = [
        built.attach_management(
            node_id,
            period=management_period,
            start_time=1.0,
            jitter=management_period * 0.2,
            rng_name=f"management-{node_id}",
        )
        for node_id in SOURCES
    ]

    ctx = CollectionContext(
        sim=sim,
        network=network,
        sources=SOURCES,
        warmup=warmup,
        management_generators=dict(zip(SOURCES, management)),
    )
    active = build_collectors(
        DEFAULT_COLLECTORS if collectors is None else collectors, COLLECTOR_OVERRIDES
    )
    for collector in active:
        collector.attach(ctx)

    network.start()

    data_generators = []
    for node_id, mgmt in zip(SOURCES, management):
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"data-{node_id}",
            start_at=warmup,
        )
        data_generators.append(generator)
        sim.schedule_at(warmup, mgmt.stop)
    ctx.data_generators = dict(zip(SOURCES, data_generators))

    expected_duration = warmup + packets_per_node / delta + drain_time
    end_time = min(expected_duration, max_duration) if max_duration else expected_duration
    sim.run_until(end_time)

    report = SimReport(
        experiment="sinr-hidden-node",
        mac=mac,
        topology=built.topology.name,
        params={
            "delta": delta,
            "packets_per_node": packets_per_node,
            "warmup": warmup,
            "sinr_threshold_db": sinr_threshold_db,
            "seed": seed,
        },
        duration=sim.now,
        trace_dropped=ctx.trace_dropped(),
    )
    for collector in active:
        collector.finalize(ctx, report)
    return report


def sweep_sinr_hidden_node(
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    deltas: Sequence[float] = (10.0,),
    packets_per_node: int = 200,
    repetitions: int = 5,
    warmup: float = 10.0,
    base_seed: int = 0,
    jobs: int = 1,
    metrics: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, Dict[float, List[SimReport]]]:
    """Sweep the SINR hidden-node scenario through the campaign layer."""
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment="sinr-hidden-node",
        macs=macs,
        grid={"delta": list(deltas)},
        fixed={"packets_per_node": packets_per_node, "warmup": warmup, **kwargs},
        seeds=[base_seed + rep for rep in range(repetitions)],
        metrics=metrics,
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, Dict[float, List[SimReport]]] = {}
    for record in campaign:
        mac = record.scenario.mac
        delta = record.scenario.params["delta"]
        results.setdefault(mac, {}).setdefault(delta, []).append(record.raw)
    return results
