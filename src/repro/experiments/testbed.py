"""Testbed-verification experiments (Sect. 6.2, Figs. 18-19).

The paper verifies QMA on FIT IoT-LAB hardware in a 10-node tree and a
17-node star topology with δ = 10 packets/s per node.  The physical testbed
is replaced by the simulated radio substrate (see DESIGN.md); the reported
metrics — per-node PDR and the number of transmission attempts (the paper's
proxy for energy consumption) — are the same.

The runners are thin compositions: scenario assembly goes through
:class:`repro.scenario.ScenarioBuilder` and the metrics come from the
collector registry (:data:`DEFAULT_COLLECTORS`, with the ``pdr`` collector
configured for the testbed's per-node, generator-counted convention),
returned as a typed :class:`~repro.metrics.report.SimReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.core.config import QmaConfig
from repro.mac.registry import get_mac_spec
from repro.metrics.base import CollectionContext
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.builder import BuiltScenario, ScenarioBuilder
from repro.scenario.config import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.scenario.artifacts import ScenarioArtifacts
    from repro.sim.engine import Simulator

#: Collector composition reproducing the historical ``TestbedResult``
#: metrics (scalars are numerically identical for fixed seeds).
DEFAULT_COLLECTORS = ("pdr", "attempts")

#: The testbed convention: per-node PDR over the data generators' own
#: counts, ``overall_pdr`` as the headline scalar, data deliveries only.
COLLECTOR_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "pdr": {
        "scalar_name": "overall_pdr",
        "per_node": True,
        "denominator": "generators",
        "delivered_scalar": "data",
    },
}

_LEGACY_ATTRS = {
    "per_node_pdr": ("tables", "pdr_per_node"),
}

#: Deprecated alias: the testbed runners now return a
#: :class:`~repro.metrics.report.SimReport`.
TestbedResult = SimReport


@dataclass
class PreparedTopologyRun:
    """A fully assembled testbed run, stopped just short of draining events.

    ``prepare_topology_run`` builds everything — scenario, traffic,
    collectors, management-stop schedule — and returns this handle; the
    caller then drives ``sim`` to ``end_time`` (the serial runner via
    ``sim.run_until``, the batch executor in lockstep with other seeds)
    and calls :meth:`finish` to finalize the collectors into the report.
    """

    built: BuiltScenario
    end_time: float
    _finalize: Callable[[], SimReport]

    @property
    def sim(self) -> "Simulator":
        return self.built.sim

    def finish(self) -> SimReport:
        """Build the :class:`SimReport` (call once, after the run)."""
        return self._finalize()

    def run(self) -> SimReport:
        """Serial execution: drain events to ``end_time`` and finish."""
        self.sim.run_until(self.end_time)
        return self.finish()


def _scenario_config(
    topology_name: str,
    mac: str,
    seed: int,
    qma_config: Optional[QmaConfig],
    link_error_rate: float,
    propagation: Optional[str],
    propagation_params: Optional[Mapping[str, Any]],
    interference: str,
    sinr_threshold_db: float,
    trace: bool,
    trace_limit: Optional[int],
) -> ScenarioConfig:
    scenario = ScenarioConfig(
        topology=topology_name,
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        link_error_rate=link_error_rate,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        seed=seed,
        trace=trace,
        trace_limit=trace_limit,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else QmaConfig()
    return scenario


def prepare_topology_run(
    topology_name: str,
    mac: str,
    delta: float,
    packets_per_node: int,
    warmup: float,
    seed: int,
    qma_config: Optional[QmaConfig],
    max_duration: Optional[float],
    link_error_rate: float,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    artifacts: Optional["ScenarioArtifacts"] = None,
) -> PreparedTopologyRun:
    scenario = _scenario_config(
        topology_name,
        mac,
        seed,
        qma_config,
        link_error_rate,
        propagation,
        propagation_params,
        interference,
        sinr_threshold_db,
        trace,
        trace_limit,
    )
    built = ScenarioBuilder(scenario).build(artifacts=artifacts)
    sim, network = built.sim, built.network
    sources = tuple(node.node_id for node in network.sources())

    # Low-rate management traffic during the warm-up: in the testbed the
    # nodes associate and exchange management frames before data generation
    # starts, which gives the learning MAC its initial training signal.
    management = [
        built.attach_management(
            node.node_id,
            period=2.0,
            start_time=0.5,
            jitter=0.4,
            rng_name=f"testbed-mgmt-{node.node_id}",
        )
        for node in network.sources()
    ]

    data_generators = [
        built.poisson_source(
            node.node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"testbed-{node.node_id}",
            start_at=warmup,
        )
        for node in network.sources()
    ]

    ctx = CollectionContext(
        sim=sim,
        network=network,
        sources=sources,
        warmup=warmup,
        data_generators=dict(zip(sources, data_generators)),
        management_generators=dict(zip(sources, management)),
    )
    active = build_collectors(
        DEFAULT_COLLECTORS if collectors is None else collectors, COLLECTOR_OVERRIDES
    )
    for collector in active:
        collector.attach(ctx)

    network.start()
    for generator in management:
        sim.schedule_at(warmup, generator.stop)

    expected = warmup + packets_per_node / delta + 10.0
    end_time = min(expected, max_duration) if max_duration else expected

    def finalize() -> SimReport:
        report = SimReport(
            experiment=f"testbed-{'tree' if topology_name == 'iotlab-tree' else 'star'}",
            mac=mac,
            topology=built.topology.name,
            params={
                "delta": delta,
                "packets_per_node": packets_per_node,
                "warmup": warmup,
                "seed": seed,
            },
            duration=sim.now,
            trace_dropped=ctx.trace_dropped(),
            legacy=dict(_LEGACY_ATTRS),
        )
        for collector in active:
            collector.finalize(ctx, report)
        return report

    return PreparedTopologyRun(built=built, end_time=end_time, _finalize=finalize)


def _run_topology(*args: Any, **kwargs: Any) -> SimReport:
    return prepare_topology_run(*args, **kwargs).run()


def prepare_tree(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    artifacts: Optional["ScenarioArtifacts"] = None,
) -> PreparedTopologyRun:
    """Assemble (but do not run) the tree-topology verification of Fig. 18."""
    return prepare_topology_run(
        "iotlab-tree",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        collectors=collectors,
        trace=trace,
        trace_limit=trace_limit,
        artifacts=artifacts,
    )


def prepare_star(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
    artifacts: Optional["ScenarioArtifacts"] = None,
) -> PreparedTopologyRun:
    """Assemble (but do not run) the star-topology verification of Fig. 19."""
    return prepare_topology_run(
        "iotlab-star",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        collectors=collectors,
        trace=trace,
        trace_limit=trace_limit,
        artifacts=artifacts,
    )


def run_tree(mac: str = "qma", **kwargs: Any) -> SimReport:
    """The tree-topology verification of Fig. 18."""
    return prepare_tree(mac=mac, **kwargs).run()


def run_star(mac: str = "qma", **kwargs: Any) -> SimReport:
    """The star-topology verification of Fig. 19."""
    return prepare_star(mac=mac, **kwargs).run()


def sweep_testbed(
    scenario: str = "tree",
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    metrics: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, List[SimReport]]:
    """Run the tree or star verification for several MACs and seeds.

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    Returns ``{mac: [report per seed]}`` in seed order.
    """
    if scenario not in ("tree", "star"):
        raise ValueError(f"scenario must be 'tree' or 'star', got {scenario!r}")
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment=f"testbed-{scenario}",
        macs=macs,
        propagations=propagations,
        fixed=dict(kwargs),
        seeds=list(seeds),
        metrics=metrics,
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, List[SimReport]] = {}
    for record in campaign:
        results.setdefault(record.scenario.mac, []).append(record.raw)
    return results


def compare_energy_proxy(
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seed: int = 0,
    jobs: int = 1,
    **kwargs,
) -> Dict[str, float]:
    """Transmission-attempt counts per MAC (the Sect. 6.2.1 energy argument)."""
    results = sweep_testbed(scenario="star", macs=macs, seeds=(seed,), jobs=jobs, **kwargs)
    return {mac: runs[0].transmission_attempts for mac, runs in results.items()}
