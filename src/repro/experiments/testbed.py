"""Testbed-verification experiments (Sect. 6.2, Figs. 18-19).

The paper verifies QMA on FIT IoT-LAB hardware in a 10-node tree and a
17-node star topology with δ = 10 packets/s per node.  The physical testbed
is replaced by the simulated radio substrate (see DESIGN.md); the reported
metrics — per-node PDR and the number of transmission attempts (the paper's
proxy for energy consumption) — are the same.

Scenario assembly goes through :class:`repro.scenario.ScenarioBuilder`;
``mac`` and ``propagation`` accept any registered name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.config import QmaConfig
from repro.mac.registry import get_mac_spec
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.config import ScenarioConfig


@dataclass
class TestbedResult:
    """Per-node and aggregate metrics of one testbed-style run."""

    mac: str
    topology: str
    per_node_pdr: Dict[int, float] = field(default_factory=dict)
    overall_pdr: float = 0.0
    transmission_attempts: int = 0
    packets_generated: int = 0
    packets_delivered: int = 0
    duration: float = 0.0


def _run_topology(
    topology_name: str,
    mac: str,
    delta: float,
    packets_per_node: int,
    warmup: float,
    seed: int,
    qma_config: Optional[QmaConfig],
    max_duration: Optional[float],
    link_error_rate: float,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
) -> TestbedResult:
    scenario = ScenarioConfig(
        topology=topology_name,
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        link_error_rate=link_error_rate,
        seed=seed,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else QmaConfig()
    built = ScenarioBuilder(scenario).build()
    sim, network = built.sim, built.network

    # Low-rate management traffic during the warm-up: in the testbed the
    # nodes associate and exchange management frames before data generation
    # starts, which gives the learning MAC its initial training signal.
    management = [
        built.attach_management(
            node.node_id,
            period=2.0,
            start_time=0.5,
            jitter=0.4,
            rng_name=f"testbed-mgmt-{node.node_id}",
        )
        for node in network.sources()
    ]

    data_generators = [
        built.poisson_source(
            node.node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"testbed-{node.node_id}",
            start_at=warmup,
        )
        for node in network.sources()
    ]

    network.start()
    for generator in management:
        sim.schedule_at(warmup, generator.stop)

    expected = warmup + packets_per_node / delta + 10.0
    end_time = min(expected, max_duration) if max_duration else expected
    sim.run_until(end_time)

    # PDR over the data packets only (deliveries whose generation time lies
    # after the warm-up), matching the paper's per-node Fig. 18/19 metric.
    per_node_pdr: Dict[int, float] = {}
    delivered_total = 0
    generated_total = 0
    for node, generator in zip(network.sources(), data_generators):
        delivered = sum(
            1
            for record in network.sink.deliveries
            if record.origin == node.node_id and record.created_at >= warmup
        )
        generated = generator.generated
        delivered_total += delivered
        generated_total += generated
        if generated:
            per_node_pdr[node.node_id] = min(1.0, delivered / generated)

    return TestbedResult(
        mac=mac,
        topology=built.topology.name,
        per_node_pdr=per_node_pdr,
        overall_pdr=min(1.0, delivered_total / generated_total) if generated_total else 0.0,
        transmission_attempts=network.total_transmission_attempts(),
        packets_generated=generated_total,
        packets_delivered=delivered_total,
        duration=sim.now,
    )


def run_tree(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
) -> TestbedResult:
    """The tree-topology verification of Fig. 18."""
    return _run_topology(
        "iotlab-tree",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
    )


def run_star(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
) -> TestbedResult:
    """The star-topology verification of Fig. 19."""
    return _run_topology(
        "iotlab-star",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
    )


def sweep_testbed(
    scenario: str = "tree",
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    **kwargs,
) -> Dict[str, List[TestbedResult]]:
    """Run the tree or star verification for several MACs and seeds.

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    Returns ``{mac: [result per seed]}`` in seed order.
    """
    if scenario not in ("tree", "star"):
        raise ValueError(f"scenario must be 'tree' or 'star', got {scenario!r}")
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment=f"testbed-{scenario}",
        macs=macs,
        propagations=propagations,
        fixed=dict(kwargs),
        seeds=list(seeds),
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, List[TestbedResult]] = {}
    for record in campaign:
        results.setdefault(record.scenario.mac, []).append(record.raw)
    return results


def compare_energy_proxy(
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seed: int = 0,
    jobs: int = 1,
    **kwargs,
) -> Dict[str, int]:
    """Transmission-attempt counts per MAC (the Sect. 6.2.1 energy argument)."""
    results = sweep_testbed(scenario="star", macs=macs, seeds=(seed,), jobs=jobs, **kwargs)
    return {mac: runs[0].transmission_attempts for mac, runs in results.items()}
