"""Testbed-verification experiments (Sect. 6.2, Figs. 18-19).

The paper verifies QMA on FIT IoT-LAB hardware in a 10-node tree and a
17-node star topology with δ = 10 packets/s per node.  The physical testbed
is replaced by the simulated radio substrate (see DESIGN.md); the reported
metrics — per-node PDR and the number of transmission attempts (the paper's
proxy for energy consumption) — are the same.

The runners are thin compositions: scenario assembly goes through
:class:`repro.scenario.ScenarioBuilder` and the metrics come from the
collector registry (:data:`DEFAULT_COLLECTORS`, with the ``pdr`` collector
configured for the testbed's per-node, generator-counted convention),
returned as a typed :class:`~repro.metrics.report.SimReport`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.config import QmaConfig
from repro.mac.registry import get_mac_spec
from repro.metrics.base import CollectionContext
from repro.metrics.registry import build_collectors
from repro.metrics.report import SimReport
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.config import ScenarioConfig

#: Collector composition reproducing the historical ``TestbedResult``
#: metrics (scalars are numerically identical for fixed seeds).
DEFAULT_COLLECTORS = ("pdr", "attempts")

#: The testbed convention: per-node PDR over the data generators' own
#: counts, ``overall_pdr`` as the headline scalar, data deliveries only.
COLLECTOR_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "pdr": {
        "scalar_name": "overall_pdr",
        "per_node": True,
        "denominator": "generators",
        "delivered_scalar": "data",
    },
}

_LEGACY_ATTRS = {
    "per_node_pdr": ("tables", "pdr_per_node"),
}

#: Deprecated alias: the testbed runners now return a
#: :class:`~repro.metrics.report.SimReport`.
TestbedResult = SimReport


def _run_topology(
    topology_name: str,
    mac: str,
    delta: float,
    packets_per_node: int,
    warmup: float,
    seed: int,
    qma_config: Optional[QmaConfig],
    max_duration: Optional[float],
    link_error_rate: float,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    scenario = ScenarioConfig(
        topology=topology_name,
        mac=mac,
        propagation=propagation,
        propagation_params=dict(propagation_params or {}),
        link_error_rate=link_error_rate,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        seed=seed,
        trace=trace,
        trace_limit=trace_limit,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = qma_config if qma_config is not None else QmaConfig()
    built = ScenarioBuilder(scenario).build()
    sim, network = built.sim, built.network
    sources = tuple(node.node_id for node in network.sources())

    # Low-rate management traffic during the warm-up: in the testbed the
    # nodes associate and exchange management frames before data generation
    # starts, which gives the learning MAC its initial training signal.
    management = [
        built.attach_management(
            node.node_id,
            period=2.0,
            start_time=0.5,
            jitter=0.4,
            rng_name=f"testbed-mgmt-{node.node_id}",
        )
        for node in network.sources()
    ]

    data_generators = [
        built.poisson_source(
            node.node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets_per_node,
            rng_name=f"testbed-{node.node_id}",
            start_at=warmup,
        )
        for node in network.sources()
    ]

    ctx = CollectionContext(
        sim=sim,
        network=network,
        sources=sources,
        warmup=warmup,
        data_generators=dict(zip(sources, data_generators)),
        management_generators=dict(zip(sources, management)),
    )
    active = build_collectors(
        DEFAULT_COLLECTORS if collectors is None else collectors, COLLECTOR_OVERRIDES
    )
    for collector in active:
        collector.attach(ctx)

    network.start()
    for generator in management:
        sim.schedule_at(warmup, generator.stop)

    expected = warmup + packets_per_node / delta + 10.0
    end_time = min(expected, max_duration) if max_duration else expected
    sim.run_until(end_time)

    report = SimReport(
        experiment=f"testbed-{'tree' if topology_name == 'iotlab-tree' else 'star'}",
        mac=mac,
        topology=built.topology.name,
        params={
            "delta": delta,
            "packets_per_node": packets_per_node,
            "warmup": warmup,
            "seed": seed,
        },
        duration=sim.now,
        trace_dropped=ctx.trace_dropped(),
        legacy=dict(_LEGACY_ATTRS),
    )
    for collector in active:
        collector.finalize(ctx, report)
    return report


def run_tree(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    """The tree-topology verification of Fig. 18."""
    return _run_topology(
        "iotlab-tree",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        collectors=collectors,
        trace=trace,
        trace_limit=trace_limit,
    )


def run_star(
    mac: str = "qma",
    delta: float = 10.0,
    packets_per_node: int = 1000,
    warmup: float = 20.0,
    seed: int = 0,
    qma_config: Optional[QmaConfig] = None,
    max_duration: Optional[float] = None,
    link_error_rate: float = 0.02,
    propagation: Optional[str] = None,
    propagation_params: Optional[Mapping[str, Any]] = None,
    interference: str = "collision",
    sinr_threshold_db: float = 10.0,
    collectors: Optional[Sequence[str]] = None,
    trace: bool = False,
    trace_limit: Optional[int] = None,
) -> SimReport:
    """The star-topology verification of Fig. 19."""
    return _run_topology(
        "iotlab-star",
        mac,
        delta,
        packets_per_node,
        warmup,
        seed,
        qma_config,
        max_duration,
        link_error_rate,
        propagation=propagation,
        propagation_params=propagation_params,
        interference=interference,
        sinr_threshold_db=sinr_threshold_db,
        collectors=collectors,
        trace=trace,
        trace_limit=trace_limit,
    )


def sweep_testbed(
    scenario: str = "tree",
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    propagations: Sequence[Optional[str]] = (None,),
    metrics: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, List[SimReport]]:
    """Run the tree or star verification for several MACs and seeds.

    Runs through the campaign layer; ``jobs`` fans the cross-product out
    over a process pool (results are independent of the worker count).
    Returns ``{mac: [report per seed]}`` in seed order.
    """
    if scenario not in ("tree", "star"):
        raise ValueError(f"scenario must be 'tree' or 'star', got {scenario!r}")
    from repro.campaign.runner import CampaignRunner  # local import: campaign imports us
    from repro.campaign.spec import Sweep

    sweep = Sweep(
        experiment=f"testbed-{scenario}",
        macs=macs,
        propagations=propagations,
        fixed=dict(kwargs),
        seeds=list(seeds),
        metrics=metrics,
    )
    campaign = CampaignRunner(jobs=jobs, keep_raw=True).run(sweep)

    results: Dict[str, List[SimReport]] = {}
    for record in campaign:
        results.setdefault(record.scenario.mac, []).append(record.raw)
    return results


def compare_energy_proxy(
    macs: Sequence[str] = ("qma", "unslotted-csma"),
    seed: int = 0,
    jobs: int = 1,
    **kwargs,
) -> Dict[str, float]:
    """Transmission-attempt counts per MAC (the Sect. 6.2.1 energy argument)."""
    results = sweep_testbed(scenario="star", macs=macs, seeds=(seed,), jobs=jobs, **kwargs)
    return {mac: runs[0].transmission_attempts for mac, runs in results.items()}
