"""MAC-layer substrates: queues, the abstract MAC interface and baselines.

The baselines implemented here are the comparison points of the paper's
evaluation:

* :class:`~repro.mac.csma.UnslottedCsmaCa` — IEEE 802.15.4 unslotted CSMA/CA,
* :class:`~repro.mac.csma.SlottedCsmaCa` — IEEE 802.15.4 slotted CSMA/CA
  (two CCAs on backoff-period boundaries),
* :class:`~repro.mac.aloha.SlottedAloha` and
  :class:`~repro.mac.aloha.AlohaQ` — the frame/slot reinforcement-learning
  baseline family (ALOHA-Q) referenced in the related-work comparison.

* :class:`~repro.mac.tdma.Tdma` — fixed-assignment TDMA, the
  contention-free reference point (and the registry's extensibility proof).

QMA itself lives in :mod:`repro.core`.  Every protocol registers itself by
name in :mod:`repro.mac.registry`; resolve protocols there instead of
hard-coding classes.
"""

from repro.mac.base import MacProtocol, MacStats, TransactionResult
from repro.mac.gate import ActivityGate, AlwaysActiveGate, WindowedGate
from repro.mac.queue import PacketQueue
from repro.mac.csma import CsmaConfig, SlottedCsmaCa, UnslottedCsmaCa
from repro.mac.aloha import AlohaConfig, AlohaQ, SlottedAloha
from repro.mac.tdma import Tdma, TdmaConfig
from repro.mac.registry import (
    MAC_REGISTRY,
    MacSpec,
    create_mac,
    get_mac_spec,
    mac_kinds,
    register_mac,
)

__all__ = [
    "ActivityGate",
    "AlohaConfig",
    "AlohaQ",
    "AlwaysActiveGate",
    "CsmaConfig",
    "MAC_REGISTRY",
    "MacProtocol",
    "MacSpec",
    "MacStats",
    "PacketQueue",
    "SlottedAloha",
    "SlottedCsmaCa",
    "Tdma",
    "TdmaConfig",
    "TransactionResult",
    "UnslottedCsmaCa",
    "WindowedGate",
    "create_mac",
    "get_mac_spec",
    "mac_kinds",
    "register_mac",
]
