"""Slotted ALOHA and ALOHA-Q baselines.

ALOHA-Q (Chu et al.) is the frame/slot Q-learning family of MAC protocols
that the paper's related-work section compares QMA against: time is divided
into frames of ``slots_per_frame`` slots, every node learns a single Q-value
per slot using stateless Q-learning, transmits in the best slot of every
frame and updates the slot's Q-value with +1 on success and -1 on failure.

These baselines are used by the related-work example and by the ablation
benchmarks; they also demonstrate the limitation the paper points out:
a node can use at most one slot per frame, so asymmetric traffic rates and
hidden traffic patterns cannot be learned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.mac.base import MacProtocol, TransactionResult
from repro.mac.gate import ActivityGate
from repro.mac.registry import register_mac
from repro.phy.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class AlohaConfig:
    """Parameters of the slotted ALOHA / ALOHA-Q baselines."""

    slots_per_frame: int = 10
    slot_duration: float = 5e-3
    queue_capacity: int = 8
    max_frame_retries: int = 3
    # ALOHA-Q learning parameters
    learning_rate: float = 0.1
    exploration_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.slots_per_frame <= 0:
            raise ValueError("slots_per_frame must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must lie in (0, 1]")
        if not 0.0 <= self.exploration_rate <= 1.0:
            raise ValueError("exploration_rate must lie in [0, 1]")


@register_mac("slotted-aloha", config_cls=AlohaConfig,
              description="slotted ALOHA (one random slot per frame)")
class SlottedAloha(MacProtocol):
    """Slotted ALOHA: transmit the head-of-line frame in one random slot per frame."""

    name = "slotted-aloha"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[AlohaConfig] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        self.config = config if config is not None else AlohaConfig()
        super().__init__(
            sim,
            radio,
            queue_capacity=self.config.queue_capacity,
            max_frame_retries=self.config.max_frame_retries,
            gate=gate,
        )
        self._rng = sim.rng.stream(f"aloha-{self.node_id}")
        self._slot_index = -1
        self._chosen_slot: Optional[int] = None
        self._in_flight: Optional[Frame] = None
        self._tick_event = None

    # ------------------------------------------------------------------ clock
    def start(self) -> None:
        super().start()
        self._tick_event = self.sim.schedule(0.0, self._on_slot)

    def stop(self) -> None:
        if self._tick_event is not None and self._tick_event.pending:
            self._tick_event.cancel()
        self._tick_event = None

    def _on_slot(self) -> None:
        self._slot_index = (self._slot_index + 1) % self.config.slots_per_frame
        if self._slot_index == 0:
            self._chosen_slot = self._select_slot()
        self._maybe_transmit()
        self._tick_event = self.sim.schedule(self.config.slot_duration, self._on_slot)

    # -------------------------------------------------------------- behaviour
    def _select_slot(self) -> int:
        """Pick the transmission slot for the upcoming frame period."""
        return self._rng.randrange(self.config.slots_per_frame)

    def _maybe_transmit(self) -> None:
        if self._in_flight is not None or self._chosen_slot != self._slot_index:
            return
        if not self.gate.active(self.sim.now):
            return
        frame = self.queue.peek()
        if frame is None:
            return
        self._in_flight = frame
        self._begin_transmission(frame)

    def _notify_enqueue(self) -> None:
        # Transmissions happen only on slot boundaries; nothing to do here.
        pass

    # ------------------------------------------------------------ transaction
    def _transaction_complete(self, frame: Frame, result: TransactionResult) -> None:
        self._in_flight = None
        success = result is TransactionResult.SUCCESS
        self._learn(success)
        if success:
            self._finish_frame(frame, success=True)
            return
        frame.retries += 1
        if frame.retries > self.config.max_frame_retries:
            self.stats.dropped_retries += 1
            self._finish_frame(frame, success=False)

    def _learn(self, success: bool) -> None:
        """Hook for the learning variant; plain slotted ALOHA does not learn."""


@register_mac("aloha-q", config_cls=AlohaConfig,
              description="ALOHA-Q (stateless Q-learning over frame slots)")
class AlohaQ(SlottedAloha):
    """ALOHA-Q: stateless Q-learning over the slots of a frame."""

    name = "aloha-q"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[AlohaConfig] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        super().__init__(sim, radio, config=config, gate=gate)
        self.q_values: List[float] = [0.0] * self.config.slots_per_frame

    def _select_slot(self) -> int:
        if self._rng.random() < self.config.exploration_rate:
            return self._rng.randrange(self.config.slots_per_frame)
        best = max(self.q_values)
        candidates = [i for i, q in enumerate(self.q_values) if q == best]
        return self._rng.choice(candidates)

    def _learn(self, success: bool) -> None:
        slot = self._chosen_slot
        if slot is None:
            return
        reward = 1.0 if success else -1.0
        alpha = self.config.learning_rate
        self.q_values[slot] += alpha * (reward - self.q_values[slot])

    def converged(self, threshold: float = 0.8) -> bool:
        """True once one slot's Q-value clearly dominates (heuristic used in tests)."""
        return max(self.q_values) >= threshold
