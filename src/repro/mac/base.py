"""Abstract MAC protocol with ACK / retransmission machinery and statistics.

Every concrete MAC (CSMA/CA, ALOHA, ALOHA-Q and QMA) derives from
:class:`MacProtocol`, which provides

* a bounded packet queue (head-of-line frame stays queued while in service,
  so the queue level matches the paper's definition with a maximum of 8),
* acknowledgement generation for received unicast frames,
* duplicate suppression by sequence number,
* an ACK-wait timer and the notion of a *transaction* (frame air time plus
  turnaround plus ACK wait) whose outcome subclasses react to, and
* the statistics needed for every figure of the evaluation.

Subclasses implement the channel-access strategy by overriding
:meth:`_notify_enqueue` (new frame available), :meth:`start` and
:meth:`_transaction_complete` (outcome of a transmission known).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro.mac.gate import ActivityGate, AlwaysActiveGate
from repro.mac.queue import PacketQueue
from repro.phy.frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

ReceiveCallback = Callable[[Frame], None]
SentCallback = Callable[[Frame, bool], None]
OverhearCallback = Callable[[Frame], None]


class TransactionResult(Enum):
    """Outcome of a single transmission attempt."""

    SUCCESS = auto()
    NO_ACK = auto()
    CHANNEL_ACCESS_FAILURE = auto()


@dataclass
class MacStats:
    """Counters shared by all MAC implementations."""

    offered: int = 0
    queue_drops: int = 0
    tx_attempts: int = 0
    tx_success: int = 0
    tx_no_ack: int = 0
    broadcasts_sent: int = 0
    dropped_retries: int = 0
    dropped_channel_access: int = 0
    acks_sent: int = 0
    delivered_to_upper: int = 0
    duplicates_suppressed: int = 0
    frames_overheard: int = 0
    cca_performed: int = 0
    cca_busy: int = 0
    per_kind_sent: Dict[FrameKind, int] = field(default_factory=dict)
    per_kind_failed: Dict[FrameKind, int] = field(default_factory=dict)

    def record_outcome(self, frame: Frame, success: bool) -> None:
        """Record the final per-kind outcome of a frame handed to the MAC."""
        counter = self.per_kind_sent if success else self.per_kind_failed
        counter[frame.kind] = counter.get(frame.kind, 0) + 1

    @property
    def attempts_per_success(self) -> float:
        """Average number of transmission attempts per successful frame."""
        successes = self.tx_success + self.broadcasts_sent
        if successes == 0:
            return float("inf") if self.tx_attempts else 0.0
        return self.tx_attempts / successes


class MacProtocol(ABC):
    """Base class of all channel-access protocols in the reproduction."""

    #: human readable protocol name, overridden by subclasses
    name = "abstract"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        queue_capacity: int = 8,
        max_frame_retries: int = 3,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.node_id = radio.node_id
        self.phy = radio.channel.phy
        self.queue = PacketQueue(sim, queue_capacity)
        self.max_frame_retries = max_frame_retries
        self.gate: ActivityGate = gate if gate is not None else AlwaysActiveGate()
        self.stats = MacStats()

        self.receive_callback: Optional[ReceiveCallback] = None
        self.sent_callback: Optional[SentCallback] = None
        self.overhear_callback: Optional[OverhearCallback] = None

        self._awaiting_ack: Optional[Frame] = None
        self._ack_timeout_event = None
        self._recent_rx: "OrderedDict[int, None]" = OrderedDict()
        self._recent_rx_limit = 128
        self._started = False

        radio.frame_listener = self._on_radio_frame
        radio.tx_complete_listener = self._on_radio_tx_complete

    # ------------------------------------------------------------ upper API
    def start(self) -> None:
        """Start protocol timers.  May be called once; subclasses extend it."""
        self._started = True

    def send(self, frame: Frame) -> bool:
        """Accept a frame from the upper layer.

        Returns False if the queue was full and the frame was dropped.
        """
        self.stats.offered += 1
        if not self.queue.push(frame):
            self.stats.queue_drops += 1
            self.stats.record_outcome(frame, success=False)
            return False
        self._notify_enqueue()
        return True

    @property
    def queue_level(self) -> int:
        """Current queue occupancy (including the frame in service)."""
        return self.queue.level

    # ------------------------------------------------------------ subclass API
    @abstractmethod
    def _notify_enqueue(self) -> None:
        """Called whenever a new frame has been queued."""

    @abstractmethod
    def _transaction_complete(self, frame: Frame, result: TransactionResult) -> None:
        """Called when the outcome of a transmission attempt is known."""

    def _cca(self) -> bool:
        """Perform a CCA and update statistics; True means the channel is clear."""
        self.stats.cca_performed += 1
        clear = self.radio.cca()
        if not clear:
            self.stats.cca_busy += 1
        return clear

    def _begin_transmission(self, frame: Frame) -> float:
        """Start transmitting a frame; returns its air time."""
        frame.queue_level = self.queue.level
        self.stats.tx_attempts += 1
        return self.radio.transmit(frame)

    def _finish_frame(self, frame: Frame, success: bool) -> None:
        """Remove the head-of-line frame and notify the upper layer."""
        head = self.queue.peek()
        if head is frame:
            self.queue.pop()
        self.stats.record_outcome(frame, success)
        if self.sent_callback is not None:
            self.sent_callback(frame, success)

    # -------------------------------------------------------------- radio events
    def _on_radio_tx_complete(self, frame: Frame) -> None:
        if frame.kind is FrameKind.ACK:
            return
        if frame.requires_ack:
            self._awaiting_ack = frame
            timeout = self.phy.turnaround_time + self.phy.ack_wait_duration
            self._ack_timeout_event = self.sim.schedule(timeout, self._on_ack_timeout, frame)
        else:
            self.stats.broadcasts_sent += 1
            self._transaction_complete(frame, TransactionResult.SUCCESS)

    def _on_ack_timeout(self, frame: Frame) -> None:
        if self._awaiting_ack is not frame:
            return
        self._awaiting_ack = None
        self._ack_timeout_event = None
        self.stats.tx_no_ack += 1
        self._transaction_complete(frame, TransactionResult.NO_ACK)

    def _on_radio_frame(self, frame: Frame) -> None:
        if frame.kind is FrameKind.ACK:
            self._handle_ack(frame)
            return
        if frame.dst == self.node_id or frame.is_broadcast:
            if frame.dst == self.node_id and frame.requires_ack:
                self._schedule_ack(frame)
            if frame.seq in self._recent_rx:
                self.stats.duplicates_suppressed += 1
                return
            self._remember(frame.seq)
            self.stats.delivered_to_upper += 1
            self._on_frame_for_us(frame)
            if self.receive_callback is not None:
                self.receive_callback(frame)
        else:
            self.stats.frames_overheard += 1
            self._on_overheard(frame)
            if self.overhear_callback is not None:
                self.overhear_callback(frame)

    def _handle_ack(self, ack: Frame) -> None:
        pending = self._awaiting_ack
        if ack.dst == self.node_id and pending is not None and ack.acknowledges(pending):
            self._awaiting_ack = None
            if self._ack_timeout_event is not None:
                self._ack_timeout_event.cancel()
                self._ack_timeout_event = None
            self.stats.tx_success += 1
            self._transaction_complete(pending, TransactionResult.SUCCESS)
        else:
            self.stats.frames_overheard += 1
            self._on_overheard(ack)
            if self.overhear_callback is not None:
                self.overhear_callback(ack)

    # ----------------------------------------------------------- subclass hooks
    def _on_frame_for_us(self, frame: Frame) -> None:
        """Hook for subclasses; called for every frame delivered to the upper layer."""

    def _on_overheard(self, frame: Frame) -> None:
        """Hook for subclasses; called for every overheard frame (incl. foreign ACKs)."""

    # ------------------------------------------------------------------- ACKs
    def _schedule_ack(self, frame: Frame) -> None:
        ack = frame.make_ack(self.node_id)
        self.sim.schedule_fast(self.phy.turnaround_time, self._transmit_ack, ack)

    def _transmit_ack(self, ack: Frame) -> None:
        if self.radio.transmitting:
            # The MAC decided to transmit during the turnaround gap; the ACK is lost.
            return
        self.stats.acks_sent += 1
        self.radio.transmit(ack)

    def _remember(self, seq: int) -> None:
        self._recent_rx[seq] = None
        while len(self._recent_rx) > self._recent_rx_limit:
            self._recent_rx.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(node={self.node_id}, queue={self.queue.level})"
