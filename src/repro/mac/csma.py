"""IEEE 802.15.4 CSMA/CA in its unslotted and slotted variants.

These are the baselines QMA is compared against throughout the paper's
evaluation (Figs. 7-9, 18, 19, 21, 22).  Both variants follow the standard's
algorithm:

* unslotted: random backoff of ``random(0, 2^BE - 1)`` unit backoff periods,
  one CCA, exponential backoff up to ``macMaxCSMABackoffs``; a frame is
  dropped after ``macMaxFrameRetries`` unacknowledged transmissions.
* slotted: backoffs and CCAs are aligned to unit-backoff-period boundaries
  and a transmission requires ``CW = 2`` consecutive idle CCAs.

Both variants honour an :class:`~repro.mac.gate.ActivityGate`, which is used
to confine them to the CAP in the DSME scalability experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.mac.base import MacProtocol, TransactionResult
from repro.mac.gate import ActivityGate
from repro.mac.registry import register_mac
from repro.phy.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CsmaConfig:
    """Parameters of the CSMA/CA algorithm (IEEE 802.15.4 defaults)."""

    mac_min_be: int = 3
    mac_max_be: int = 5
    max_csma_backoffs: int = 4
    max_frame_retries: int = 3
    queue_capacity: int = 8
    contention_window: int = 2  # only used by the slotted variant

    def __post_init__(self) -> None:
        if not 0 <= self.mac_min_be <= self.mac_max_be:
            raise ValueError("require 0 <= mac_min_be <= mac_max_be")
        if self.max_csma_backoffs < 0 or self.max_frame_retries < 0:
            raise ValueError("retry limits must be non-negative")


@register_mac("unslotted-csma", config_cls=CsmaConfig,
              description="unslotted IEEE 802.15.4 CSMA/CA")
class UnslottedCsmaCa(MacProtocol):
    """Unslotted IEEE 802.15.4 CSMA/CA."""

    name = "unslotted-csma"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[CsmaConfig] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        self.config = config if config is not None else CsmaConfig()
        super().__init__(
            sim,
            radio,
            queue_capacity=self.config.queue_capacity,
            max_frame_retries=self.config.max_frame_retries,
            gate=gate,
        )
        self._rng = sim.rng.stream(f"csma-{self.node_id}")
        self._busy = False
        self._nb = 0
        self._be = self.config.mac_min_be

    # ------------------------------------------------------------------ hooks
    def start(self) -> None:
        super().start()
        self._try_start_attempt()

    def _notify_enqueue(self) -> None:
        if self._started:
            self._try_start_attempt()

    def _try_start_attempt(self) -> None:
        if self._busy or self.queue.empty:
            return
        self._busy = True
        self._nb = 0
        self._be = self.config.mac_min_be
        self._schedule_backoff()

    # ---------------------------------------------------------------- backoff
    def _backoff_delay(self) -> float:
        periods = self._rng.randint(0, (1 << self._be) - 1)
        return periods * self.phy.unit_backoff_period

    def _schedule_backoff(self) -> None:
        # The backoff/CCA chain never cancels its events, so it runs on the
        # engine's allocation-lean fast path.
        now = self.sim.now
        if not self.gate.active(now):
            resume = self.gate.next_active_time(now)
            self.sim.schedule_at_fast(resume, self._schedule_backoff)
            return
        self.sim.schedule_fast(self._backoff_delay(), self._perform_cca)

    def _perform_cca(self) -> None:
        frame = self.queue.peek()
        if frame is None:
            self._busy = False
            return
        now = self.sim.now
        if not self.gate.active(now):
            resume = self.gate.next_active_time(now)
            self.sim.schedule_at_fast(resume, self._perform_cca)
            return
        if self._cca():
            self.sim.schedule_fast(self.phy.cca_duration + self.phy.turnaround_time,
                                   self._transmit_head, frame)
        else:
            self._nb += 1
            self._be = min(self._be + 1, self.config.mac_max_be)
            if self._nb > self.config.max_csma_backoffs:
                self._channel_access_failure(frame)
            else:
                self._schedule_backoff()

    def _transmit_head(self, frame: Frame) -> None:
        if self.queue.peek() is not frame:
            self._busy = False
            self._try_start_attempt()
            return
        if self.radio.transmitting:
            # Should not happen (the MAC serialises transmissions), but guard anyway.
            self._schedule_backoff()
            return
        self._begin_transmission(frame)

    def _channel_access_failure(self, frame: Frame) -> None:
        self.stats.dropped_channel_access += 1
        self._finish_frame(frame, success=False)
        self._busy = False
        self._try_start_attempt()

    # ------------------------------------------------------------ transaction
    def _transaction_complete(self, frame: Frame, result: TransactionResult) -> None:
        if result is TransactionResult.SUCCESS:
            self._finish_frame(frame, success=True)
            self._busy = False
            self._try_start_attempt()
            return
        # NO_ACK: retry the whole CSMA procedure for the same frame.
        frame.retries += 1
        if frame.retries > self.config.max_frame_retries:
            self.stats.dropped_retries += 1
            self._finish_frame(frame, success=False)
            self._busy = False
            self._try_start_attempt()
        else:
            self._nb = 0
            self._be = self.config.mac_min_be
            self._schedule_backoff()


@register_mac("slotted-csma", config_cls=CsmaConfig,
              description="slotted IEEE 802.15.4 CSMA/CA (CW = 2)")
class SlottedCsmaCa(UnslottedCsmaCa):
    """Slotted IEEE 802.15.4 CSMA/CA (backoff boundaries, CW = 2)."""

    name = "slotted-csma"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[CsmaConfig] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        super().__init__(sim, radio, config=config, gate=gate)
        self._cw = self.config.contention_window

    # ------------------------------------------------------------ slot helpers
    def _next_boundary(self, time: Optional[float] = None) -> float:
        """The next unit-backoff-period boundary at or after ``time``.

        Floating-point rounding can place the computed boundary a fraction of
        a nanosecond *before* ``time``; the result is clamped so that events
        are never scheduled into the past.
        """
        period = self.phy.unit_backoff_period
        t = self.sim.now if time is None else time
        slots = math.ceil(round(t / period, 9))
        return max(slots * period, t)

    def _schedule_backoff(self) -> None:
        now = self.sim.now
        if not self.gate.active(now):
            resume = self.gate.next_active_time(now)
            self.sim.schedule_at_fast(resume, self._schedule_backoff)
            return
        self._cw = self.config.contention_window
        boundary = self._next_boundary()
        target = boundary + self._backoff_delay()
        self.sim.schedule_at_fast(target, self._perform_cca)

    def _perform_cca(self) -> None:
        frame = self.queue.peek()
        if frame is None:
            self._busy = False
            return
        now = self.sim.now
        if not self.gate.active(now):
            resume = self.gate.next_active_time(now)
            self.sim.schedule_at_fast(resume, self._perform_cca)
            return
        if self._cca():
            self._cw -= 1
            if self._cw <= 0:
                delay = self.phy.cca_duration + self.phy.turnaround_time
                self.sim.schedule_fast(delay, self._transmit_head, frame)
            else:
                next_boundary = self._next_boundary(self.sim.now + self.phy.unit_backoff_period)
                self.sim.schedule_at_fast(next_boundary, self._perform_cca)
        else:
            self._cw = self.config.contention_window
            self._nb += 1
            self._be = min(self._be + 1, self.config.mac_max_be)
            if self._nb > self.config.max_csma_backoffs:
                self._channel_access_failure(frame)
            else:
                self._schedule_backoff()
