"""Activity gates restricting when a contention MAC may access the medium.

In the DSME scalability scenario (Sect. 6.3 of the paper) contention-based
traffic is only allowed during the contention access period (CAP) of each
superframe.  A gate abstracts this: the MAC asks :meth:`ActivityGate.active`
before touching the medium and :meth:`ActivityGate.next_active_time` to know
when to retry if the medium is currently out of bounds.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class ActivityGate(ABC):
    """Decides whether contention-based access is currently allowed."""

    @abstractmethod
    def active(self, now: float) -> bool:
        """True if the MAC may access the medium at time ``now``."""

    @abstractmethod
    def next_active_time(self, now: float) -> float:
        """The next time (>= now) at which the MAC may access the medium."""

    def remaining_active_time(self, now: float) -> float:
        """Seconds of contiguous activity remaining from ``now`` (inf if unbounded)."""
        return float("inf")


class AlwaysActiveGate(ActivityGate):
    """The default gate: the medium is always available (Sect. 6.1 / 6.2 scenarios)."""

    def active(self, now: float) -> bool:
        return True

    def next_active_time(self, now: float) -> float:
        return now


class WindowedGate(ActivityGate):
    """Periodic activity windows (e.g. the CAP of every DSME superframe).

    The gate is active during ``[k * period + offset, k * period + offset +
    window)`` for every integer ``k >= 0``.
    """

    #: Phases closer than this to the period boundary are snapped to 0 so that
    #: floating-point rounding at a window start cannot produce an event that
    #: believes it is still (infinitesimally) inside the previous period.
    _EPSILON = 1e-9

    def __init__(self, period: float, window: float, offset: float = 0.0) -> None:
        if period <= 0 or window <= 0:
            raise ValueError("period and window must be positive")
        if window > period:
            raise ValueError("window cannot exceed period")
        self.period = period
        self.window = window
        self.offset = offset

    def _phase(self, now: float) -> float:
        phase = (now - self.offset) % self.period
        if self.period - phase < self._EPSILON:
            return 0.0
        return phase

    def active(self, now: float) -> bool:
        if now < self.offset:
            return False
        return self._phase(now) < self.window

    def next_active_time(self, now: float) -> float:
        if now < self.offset:
            return self.offset
        phase = self._phase(now)
        if phase < self.window:
            return now
        return now + (self.period - phase)

    def remaining_active_time(self, now: float) -> float:
        if not self.active(now):
            return 0.0
        return self.window - self._phase(now)
