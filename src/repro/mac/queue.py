"""A bounded drop-tail packet queue with time-weighted occupancy statistics.

The paper evaluates the average queue level (Fig. 8) and drives QMA's
parameter-based exploration from the instantaneous queue level, so the
queue keeps a time-weighted occupancy integral in addition to simple
counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, TYPE_CHECKING

from repro.phy.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class PacketQueue:
    """Bounded FIFO queue of frames.

    Parameters
    ----------
    sim:
        Simulator used for time-weighted statistics.
    capacity:
        Maximum number of queued frames; the paper uses 8.
    """

    def __init__(self, sim: "Simulator", capacity: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._frames: Deque[Frame] = deque()
        # statistics
        self.enqueued = 0
        self.dropped_full = 0
        self.dequeued = 0
        self._last_change = sim.now
        self._level_time_integral = 0.0
        self._observation_start = sim.now

    # ------------------------------------------------------------------ api
    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    @property
    def level(self) -> int:
        """Current number of queued frames."""
        return len(self._frames)

    @property
    def full(self) -> bool:
        return len(self._frames) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._frames

    def push(self, frame: Frame) -> bool:
        """Enqueue a frame.  Returns False (and counts a drop) if the queue is full."""
        self._accumulate()
        if self.full:
            self.dropped_full += 1
            return False
        self._frames.append(frame)
        self.enqueued += 1
        return True

    def push_front(self, frame: Frame) -> bool:
        """Re-insert a frame at the head of the queue (e.g. after a failed CCA)."""
        self._accumulate()
        if self.full:
            self.dropped_full += 1
            return False
        self._frames.appendleft(frame)
        self.enqueued += 1
        return True

    def peek(self) -> Optional[Frame]:
        """The head-of-line frame without removing it, or None if empty."""
        return self._frames[0] if self._frames else None

    def pop(self) -> Optional[Frame]:
        """Remove and return the head-of-line frame, or None if empty."""
        if not self._frames:
            return None
        self._accumulate()
        self.dequeued += 1
        return self._frames.popleft()

    def clear(self) -> None:
        self._accumulate()
        self._frames.clear()

    # ------------------------------------------------------------ statistics
    def _accumulate(self) -> None:
        now = self.sim.now
        self._level_time_integral += self.level * (now - self._last_change)
        self._last_change = now

    def average_level(self) -> float:
        """Time-weighted average occupancy since creation (or last reset)."""
        self._accumulate()
        elapsed = self.sim.now - self._observation_start
        if elapsed <= 0.0:
            return float(self.level)
        return self._level_time_integral / elapsed

    def reset_statistics(self) -> None:
        """Restart the averaging window (used to exclude warm-up phases)."""
        self._accumulate()
        self._level_time_integral = 0.0
        self._observation_start = self.sim.now
        self._last_change = self.sim.now
        self.enqueued = 0
        self.dropped_full = 0
        self.dequeued = 0
