"""The MAC-protocol registry: channel-access schemes resolvable by name.

Every concrete MAC registers itself with :func:`register_mac` at class
definition time, together with its per-protocol config dataclass:

* ``qma`` — :class:`repro.core.mac.QmaMac` (:class:`repro.core.config.QmaConfig`)
* ``slotted-csma`` / ``unslotted-csma`` — IEEE 802.15.4 CSMA/CA
  (:class:`repro.mac.csma.CsmaConfig`)
* ``slotted-aloha`` / ``aloha-q`` — the ALOHA family
  (:class:`repro.mac.aloha.AlohaConfig`)
* ``tdma`` — fixed-assignment TDMA (:class:`repro.mac.tdma.TdmaConfig`)

Everything that needs a MAC by name (experiments, the DSME CAP, the
campaign layer, the CLI) resolves it here, so adding a protocol is one
decorated class — no experiment or CLI change required::

    from repro.mac.base import MacProtocol
    from repro.mac.registry import register_mac

    @register_mac("my-mac", config_cls=MyConfig)
    class MyMac(MacProtocol):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type, TypeVar, TYPE_CHECKING

from repro.registry import Registry, RegistryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.mac.gate import ActivityGate
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

M = TypeVar("M")


@dataclass(frozen=True)
class MacSpec:
    """One registered channel-access scheme."""

    name: str
    protocol: Type["MacProtocol"]
    config_cls: Optional[type] = None
    description: str = ""

    def default_config(self) -> Optional[Any]:
        """A fresh default-config instance (None for config-less protocols)."""
        return self.config_cls() if self.config_cls is not None else None

    def config_defaults(self) -> Dict[str, Any]:
        """Field name -> default value of the protocol's config dataclass."""
        if self.config_cls is None or not is_dataclass(self.config_cls):
            return {}
        instance = self.config_cls()
        return {f.name: getattr(instance, f.name) for f in fields(instance)}

    def build(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[Any] = None,
        gate: Optional["ActivityGate"] = None,
        **kwargs: Any,
    ) -> "MacProtocol":
        """Instantiate the protocol; extra kwargs go to protocol-specific knobs."""
        if config is not None and self.config_cls is not None:
            if not isinstance(config, self.config_cls):
                raise TypeError(
                    f"MAC {self.name!r} expects a {self.config_cls.__name__}, "
                    f"got {type(config).__name__}"
                )
        return self.protocol(sim, radio, config=config, gate=gate, **kwargs)


#: The process-wide MAC registry; built-ins register on first lookup.
MAC_REGISTRY: Registry[MacSpec] = Registry(
    "MAC protocol",
    builtin_modules=(
        "repro.core.mac",
        "repro.mac.csma",
        "repro.mac.aloha",
        "repro.mac.tdma",
    ),
)


def register_mac(
    name: str,
    config_cls: Optional[type] = None,
    description: str = "",
) -> Callable[[Type[M]], Type[M]]:
    """Class decorator registering a :class:`MacProtocol` subclass by name."""

    def decorator(cls: Type[M]) -> Type[M]:
        MAC_REGISTRY.register(
            name, MacSpec(name, cls, config_cls=config_cls, description=description)
        )
        return cls

    return decorator


def mac_kinds() -> Tuple[str, ...]:
    """Names of all registered channel-access schemes (sorted, deterministic)."""
    return tuple(sorted(MAC_REGISTRY.names()))


def get_mac_spec(name: str) -> MacSpec:
    """Resolve a registered MAC by name (raises :class:`RegistryError`)."""
    return MAC_REGISTRY.get(name)


def create_mac(
    name: str,
    sim: "Simulator",
    radio: "Radio",
    config: Optional[Any] = None,
    gate: Optional["ActivityGate"] = None,
    **kwargs: Any,
) -> "MacProtocol":
    """Build a MAC instance by registered name."""
    return get_mac_spec(name).build(sim, radio, config=config, gate=gate, **kwargs)


__all__ = [
    "MAC_REGISTRY",
    "MacSpec",
    "RegistryError",
    "create_mac",
    "get_mac_spec",
    "mac_kinds",
    "register_mac",
]
