"""Fixed-assignment TDMA baseline.

Time is divided into frames of ``slots_per_frame`` slots and every node owns
the slot ``node_id % slots_per_frame``: it transmits its head-of-line frame
only at the start of its own slot.  With at most ``slots_per_frame`` nodes
per collision domain the schedule is collision-free by construction, which
makes TDMA the contention-free reference point against the learned
(QMA / ALOHA-Q) and contention-based (CSMA/CA, slotted ALOHA) schemes — and
the registry's proof of extensibility: the protocol is one decorated class
and is immediately available to every experiment, sweep and CLI command.

Like the other baselines it honours an :class:`~repro.mac.gate.ActivityGate`
so it can be confined to the CAP of a DSME superframe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.mac.base import MacProtocol, TransactionResult
from repro.mac.gate import ActivityGate
from repro.mac.registry import register_mac
from repro.phy.frames import Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TdmaConfig:
    """Parameters of the fixed-assignment TDMA baseline."""

    slots_per_frame: int = 10
    slot_duration: float = 5e-3
    queue_capacity: int = 8
    max_frame_retries: int = 3

    def __post_init__(self) -> None:
        if self.slots_per_frame <= 0:
            raise ValueError("slots_per_frame must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.max_frame_retries < 0:
            raise ValueError("max_frame_retries must be non-negative")


@register_mac("tdma", config_cls=TdmaConfig, description="fixed-assignment TDMA")
class Tdma(MacProtocol):
    """Transmit only in the node's own slot of every TDMA frame."""

    name = "tdma"

    def __init__(
        self,
        sim: "Simulator",
        radio: "Radio",
        config: Optional[TdmaConfig] = None,
        gate: Optional[ActivityGate] = None,
    ) -> None:
        self.config = config if config is not None else TdmaConfig()
        super().__init__(
            sim,
            radio,
            queue_capacity=self.config.queue_capacity,
            max_frame_retries=self.config.max_frame_retries,
            gate=gate,
        )
        self.own_slot = self.node_id % self.config.slots_per_frame
        self._slot_index = -1
        self._in_flight: Optional[Frame] = None
        self._tick_event = None

    # ------------------------------------------------------------------ clock
    def start(self) -> None:
        super().start()
        self._tick_event = self.sim.schedule(0.0, self._on_slot)

    def stop(self) -> None:
        if self._tick_event is not None and self._tick_event.pending:
            self._tick_event.cancel()
        self._tick_event = None

    def _on_slot(self) -> None:
        self._slot_index = (self._slot_index + 1) % self.config.slots_per_frame
        self._maybe_transmit()
        self._tick_event = self.sim.schedule(self.config.slot_duration, self._on_slot)

    # -------------------------------------------------------------- behaviour
    def _maybe_transmit(self) -> None:
        if self._in_flight is not None or self._slot_index != self.own_slot:
            return
        if not self.gate.active(self.sim.now) or self.radio.transmitting:
            return
        frame = self.queue.peek()
        if frame is None:
            return
        self._in_flight = frame
        self._begin_transmission(frame)

    def _notify_enqueue(self) -> None:
        # Transmissions happen only at the node's own slot boundary.
        pass

    # ------------------------------------------------------------ transaction
    def _transaction_complete(self, frame: Frame, result: TransactionResult) -> None:
        self._in_flight = None
        if result is TransactionResult.SUCCESS:
            self._finish_frame(frame, success=True)
            return
        frame.retries += 1
        if frame.retries > self.config.max_frame_retries:
            self.stats.dropped_retries += 1
            self._finish_frame(frame, success=False)
