"""Unified metrics & results API: pluggable collectors and typed reports.

Every experiment runner instruments its simulation through
:class:`MetricCollector` objects resolved from the collector registry and
returns a typed :class:`SimReport` (scalars + named time series + per-node
tables).  The campaign layer's ``metrics=`` axis and the CLI resolve
collector names through the same registry, so a new metric is one
decorated class::

    from repro.metrics import MetricCollector, register_collector

    @register_collector("hops", description="mean route length of deliveries")
    class HopCollector(MetricCollector):
        def provides(self):
            return ("average_hops",)

        def attach(self, ctx):
            self._hops = []
            ctx.network.add_delivery_hook(lambda node, rec: self._hops.append(rec.hops))

        def finalize(self, ctx, report):
            report.scalars["average_hops"] = (
                sum(self._hops) / len(self._hops) if self._hops else 0.0
            )

See the README's "Metrics & results" section for the full worked example.
"""

from repro.metrics.base import CollectionContext, MetricCollector
from repro.metrics.registry import (
    COLLECTOR_REGISTRY,
    CollectorSpec,
    build_collectors,
    collector_kinds,
    get_collector_spec,
    register_collector,
)
from repro.metrics.report import SimReport

__all__ = [
    "COLLECTOR_REGISTRY",
    "CollectionContext",
    "CollectorSpec",
    "MetricCollector",
    "SimReport",
    "build_collectors",
    "collector_kinds",
    "get_collector_spec",
    "register_collector",
]
