"""The metric-collector protocol and the collection context.

A :class:`MetricCollector` observes one simulation run and contributes
scalars, time series and per-node tables to its
:class:`~repro.metrics.report.SimReport`.  Collectors subscribe to typed
hooks (delivery/generation hooks on :class:`~repro.net.network.Network`,
trace hooks on :class:`~repro.sim.engine.Simulator`) in :meth:`attach` and
write their results in :meth:`finalize` — no post-hoc trace scraping.

The :class:`CollectionContext` is the collector's window into the run: the
simulator, the network (and the DSME substrate when present), the source
node set, the warm-up boundary and the runner's traffic generators.  The
experiment runners assemble it; collectors must treat it as read-only.

Determinism contract: :meth:`attach` must not schedule events or draw
random numbers unless the collector explicitly documents that it does
(e.g. a snapshot collector scheduling its snapshot callback) — hooks fire
inside existing events, so a purely observing collector can never perturb
the event sequence and the headline metrics stay bit-identical with and
without it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsme.network import DsmeNetwork
    from repro.metrics.report import SimReport
    from repro.net.network import Network
    from repro.sim.engine import Simulator
    from repro.traffic.generators import TrafficGenerator


@dataclass
class CollectionContext:
    """Everything a collector may observe about one run.

    ``data_generators`` / ``management_generators`` map source node ids to
    the traffic generators the runner attached; runners that create their
    generators after attaching collectors fill these in before the run
    starts (collectors only read them in :meth:`MetricCollector.finalize`).
    """

    sim: "Simulator"
    network: "Network"
    sources: Tuple[int, ...]
    warmup: float = 0.0
    dsme: Optional["DsmeNetwork"] = None
    data_generators: Dict[int, "TrafficGenerator"] = field(default_factory=dict)
    management_generators: Dict[int, "TrafficGenerator"] = field(default_factory=dict)

    def qma_macs(self) -> Iterator[Tuple[int, object]]:
        """Yield ``(node_id, mac)`` for every source running a QMA MAC."""
        from repro.core.mac import QmaMac  # local import: keeps this module light

        for node_id in self.sources:
            mac = self.network.mac(node_id)
            if isinstance(mac, QmaMac):
                yield node_id, mac

    def trace_dropped(self) -> int:
        """Trace records discarded by the run's bounded recorder (0 if untraced)."""
        tracer = self.sim.tracer
        return tracer.dropped if tracer is not None else 0


class MetricCollector(ABC):
    """Base class of all metric collectors.

    Subclasses override :meth:`attach` to subscribe to hooks and implement
    :meth:`finalize` to write scalars/series/tables into the report.
    :meth:`provides` names the scalars the collector emits (``*`` wildcards
    for per-node families such as ``pdr_node_*``); the campaign layer uses
    it to validate metric names before a sweep runs.
    """

    #: Registered name, set by :func:`repro.metrics.registry.register_collector`.
    name: str = "abstract"

    def provides(self) -> Tuple[str, ...]:
        """Scalar names this collector writes (patterns allowed)."""
        return ()

    def attach(self, ctx: CollectionContext) -> None:
        """Subscribe to hooks before the run starts.  Default: observe nothing."""

    @abstractmethod
    def finalize(self, ctx: CollectionContext, report: "SimReport") -> None:
        """Write this collector's metrics into the report after the run."""
