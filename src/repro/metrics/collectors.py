"""Built-in metric collectors.

One collector per metric family of the paper's evaluation:

* ``pdr`` — packet delivery ratio over data packets (Figs. 7, 18, 19)
* ``delay`` — end-to-end delay of sink deliveries (Fig. 9)
* ``queue`` — time-weighted queue occupancy (Fig. 8)
* ``attempts`` — transmission attempts, the paper's energy proxy (Sect. 6.2.1)
* ``slots`` — subslot utilisation of the learned schedules (Figs. 13-15)
* ``convergence`` — cumulative-Q / exploration-rate histories (Figs. 10-12)
* ``dsme`` — DSME secondary-traffic metrics (Figs. 21-22)

Every formula is the one the pre-redesign per-experiment result dataclasses
used, so reports are numerically identical to the historical runners for
fixed seeds; the regression tests in ``tests/metrics`` pin this down.
Collectors count deliveries through the typed delivery hook (fired in
chronological order), which makes incremental sums bit-identical to the
post-hoc loops they replace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.convergence import convergence_time
from repro.analysis.slots import slot_utilisation
from repro.metrics.base import CollectionContext, MetricCollector
from repro.metrics.registry import register_collector
from repro.metrics.report import SimReport
from repro.net.node import DeliveryRecord, Node


@register_collector("pdr", description="packet delivery ratio over data packets")
class PdrCollector(MetricCollector):
    """Delivery ratio of the data traffic generated after the warm-up.

    Parameters
    ----------
    scalar_name:
        Name of the headline scalar (``pdr`` for hidden-node runs,
        ``overall_pdr`` for the testbed runners).
    per_node:
        Additionally emit one ``pdr_node_<id>`` scalar and a
        ``pdr_per_node`` table (the Fig. 18/19 metric).
    denominator:
        How data packets are counted against deliveries:
        ``"network"`` — network-side generation counters minus management
        generator counts (the hidden-node convention); ``"generators"`` —
        the data generators' own counts (the testbed convention).
    delivered_scalar:
        What ``packets_delivered`` reports: ``"all"`` — every sink
        delivery including warm-up management traffic (hidden-node
        convention); ``"data"`` — post-warm-up data deliveries only.
    """

    def __init__(
        self,
        scalar_name: str = "pdr",
        per_node: bool = False,
        denominator: str = "network",
        delivered_scalar: str = "all",
    ) -> None:
        if denominator not in ("network", "generators"):
            raise ValueError(f"denominator must be 'network' or 'generators', got {denominator!r}")
        if delivered_scalar not in ("all", "data"):
            raise ValueError(f"delivered_scalar must be 'all' or 'data', got {delivered_scalar!r}")
        self.scalar_name = scalar_name
        self.per_node = per_node
        self.denominator = denominator
        self.delivered_scalar = delivered_scalar
        self._sources: frozenset = frozenset()
        self._warmup = 0.0
        self._all_deliveries = 0
        self._data_delivered: Dict[int, int] = {}

    def provides(self) -> Tuple[str, ...]:
        names = [self.scalar_name, "packets_generated", "packets_delivered"]
        if self.per_node:
            names.append("pdr_node_*")
        return tuple(names)

    def attach(self, ctx: CollectionContext) -> None:
        self._sources = frozenset(ctx.sources)
        self._warmup = ctx.warmup
        ctx.network.add_delivery_hook(self._on_delivery, node_ids=(ctx.network.sink.node_id,))

    def _on_delivery(self, node: Node, record: DeliveryRecord) -> None:
        self._all_deliveries += 1
        if record.origin in self._sources and record.created_at >= self._warmup:
            self._data_delivered[record.origin] = self._data_delivered.get(record.origin, 0) + 1

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        delivered_data = sum(self._data_delivered.get(node_id, 0) for node_id in ctx.sources)
        generators = ctx.data_generators
        if generators:
            packets_generated = sum(
                generators[node_id].generated for node_id in ctx.sources if node_id in generators
            )
        else:
            packets_generated = ctx.network.packets_generated(ctx.sources)

        if self.denominator == "network":
            total_generated = ctx.network.packets_generated(ctx.sources)
            management = sum(
                ctx.management_generators[node_id].generated
                for node_id in ctx.sources
                if node_id in ctx.management_generators
            )
            data_generated = total_generated - management
            pdr = 0.0 if data_generated <= 0 else min(1.0, delivered_data / data_generated)
        else:
            data_generated = packets_generated
            pdr = min(1.0, delivered_data / data_generated) if data_generated else 0.0

        if self.per_node:
            per_node_pdr: Dict[int, float] = {}
            for node_id in ctx.sources:
                generated = generators[node_id].generated if node_id in generators else 0
                if generated:
                    per_node_pdr[node_id] = min(
                        1.0, self._data_delivered.get(node_id, 0) / generated
                    )
            report.tables["pdr_per_node"] = per_node_pdr
            for node_id in sorted(per_node_pdr):
                report.scalars[f"pdr_node_{node_id}"] = per_node_pdr[node_id]

        report.scalars[self.scalar_name] = pdr
        report.scalars["packets_generated"] = float(packets_generated)
        report.scalars["packets_delivered"] = float(
            self._all_deliveries if self.delivered_scalar == "all" else delivered_data
        )


@register_collector("delay", description="end-to-end delay of sink deliveries")
class DelayCollector(MetricCollector):
    """Mean (and per-delivery series of) sink-delivery delay, Fig. 9 style.

    The mean covers *all* deliveries recorded at the sink — including
    warm-up management traffic — exactly like the historical
    ``Network.average_end_to_end_delay``.
    """

    def __init__(
        self,
        scalar_name: str = "average_delay",
        record_series: bool = True,
        max_samples: Optional[int] = None,
    ) -> None:
        self.scalar_name = scalar_name
        self.record_series = record_series
        self.max_samples = max_samples
        self._sum = 0.0
        self._count = 0
        self._samples: List[Tuple[float, float]] = []

    def provides(self) -> Tuple[str, ...]:
        return (self.scalar_name,)

    def attach(self, ctx: CollectionContext) -> None:
        ctx.network.add_delivery_hook(self._on_delivery, node_ids=(ctx.network.sink.node_id,))

    def _on_delivery(self, node: Node, record: DeliveryRecord) -> None:
        delay = record.delay
        self._sum += delay
        self._count += 1
        if self.record_series and (
            self.max_samples is None or len(self._samples) < self.max_samples
        ):
            self._samples.append((record.received_at, delay))

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        report.scalars[self.scalar_name] = self._sum / self._count if self._count else 0.0
        if self.record_series:
            report.series["delay"] = self._samples


@register_collector("queue", description="time-weighted average queue occupancy")
class QueueCollector(MetricCollector):
    """Mean queue level over the source nodes (the Fig. 8 metric)."""

    def __init__(self, scalar_name: str = "average_queue_level") -> None:
        self.scalar_name = scalar_name

    def provides(self) -> Tuple[str, ...]:
        return (self.scalar_name,)

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        report.scalars[self.scalar_name] = ctx.network.average_queue_level(ctx.sources)
        report.tables["queue_level"] = {
            node_id: ctx.network.mac(node_id).queue.average_level() for node_id in ctx.sources
        }


@register_collector("attempts", description="transmission attempts (energy proxy)")
class AttemptsCollector(MetricCollector):
    """Total MAC transmission attempts — the paper's energy-consumption proxy."""

    def __init__(self, scalar_name: str = "transmission_attempts") -> None:
        self.scalar_name = scalar_name

    def provides(self) -> Tuple[str, ...]:
        return (self.scalar_name,)

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        report.scalars[self.scalar_name] = float(
            ctx.network.total_transmission_attempts(ctx.sources)
        )
        report.tables["tx_attempts"] = {
            node_id: ctx.network.mac(node_id).stats.tx_attempts for node_id in ctx.sources
        }


@register_collector("convergence", description="cumulative-Q and exploration histories")
class ConvergenceCollector(MetricCollector):
    """Per-node Q-convergence instrumentation of the QMA agents.

    Fills the ``q_history`` / ``rho_history`` / ``policy`` tables (the data
    behind Figs. 10-12) for every source running QMA; emits a
    ``convergence_time`` scalar when ``emit_scalar`` is set (the latest
    per-node stabilisation time, ``inf`` if any node never stabilises).
    """

    def __init__(
        self,
        window: int = 10,
        tolerance: float = 1e-9,
        emit_scalar: bool = False,
    ) -> None:
        self.window = window
        self.tolerance = tolerance
        self.emit_scalar = emit_scalar

    def provides(self) -> Tuple[str, ...]:
        return ("convergence_time",) if self.emit_scalar else ()

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        q_history: Dict[int, List[Tuple[float, float]]] = {}
        rho_history: Dict[int, List[Tuple[float, float]]] = {}
        policy: Dict[int, list] = {}
        for node_id, mac in ctx.qma_macs():
            q_history[node_id] = list(mac.q_history)
            rho_history[node_id] = list(mac.rho_history)
            policy[node_id] = mac.policy_snapshot()
        report.tables["q_history"] = q_history
        report.tables["rho_history"] = rho_history
        report.tables["policy"] = policy
        if self.emit_scalar:
            times = [
                convergence_time(history, window=self.window, tolerance=self.tolerance)
                for history in q_history.values()
            ]
            if times and all(t is not None for t in times):
                report.scalars["convergence_time"] = max(times)
            else:
                report.scalars["convergence_time"] = float("inf")


@register_collector("slots", description="subslot utilisation of the learned schedule")
class SlotUtilisationCollector(MetricCollector):
    """Subslot utilisation of the final (and optionally a mid-run) QMA policy.

    With ``snapshot_time`` set, :meth:`attach` schedules one snapshot event
    — the only built-in collector that touches the event queue, so runs
    with and without it differ in event sequence (documented determinism
    exception; the pure observers never do this).
    """

    def __init__(self, snapshot_time: Optional[float] = None, emit_scalars: bool = False) -> None:
        self.snapshot_time = snapshot_time
        self.emit_scalars = emit_scalars
        self._snapshot_policies: Dict[int, list] = {}

    def provides(self) -> Tuple[str, ...]:
        return ("utilised_subslots", "collision_free") if self.emit_scalars else ()

    def attach(self, ctx: CollectionContext) -> None:
        if self.snapshot_time is not None:
            ctx.sim.schedule_at(self.snapshot_time, self._take_snapshot, ctx)

    def _take_snapshot(self, ctx: CollectionContext) -> None:
        self._snapshot_policies = {
            node_id: mac.policy_snapshot() for node_id, mac in ctx.qma_macs()
        }

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        final_policies = {node_id: mac.policy_snapshot() for node_id, mac in ctx.qma_macs()}
        snapshot_policies = self._snapshot_policies or final_policies
        final = slot_utilisation(final_policies)
        report.details["slot_utilisation"] = final
        report.details["slot_utilisation_snapshot"] = slot_utilisation(snapshot_policies)
        report.tables["subslots"] = {
            node_id: final.node_subslots(node_id) for node_id in final_policies
        }
        if self.emit_scalars:
            report.scalars["utilised_subslots"] = float(final.utilised_subslots())
            report.scalars["collision_free"] = 1.0 if final.collision_free else 0.0


@register_collector("dsme", description="DSME secondary-traffic metrics (CAP)")
class DsmeSecondaryCollector(MetricCollector):
    """Secondary-traffic metrics of a DSME run (Figs. 21-22).

    Requires a DSME scenario (``ctx.dsme``); the observation window for the
    allocation rate is the simulated time minus the warm-up, matching the
    historical scalability runner.
    """

    def provides(self) -> Tuple[str, ...]:
        return (
            "num_nodes",
            "secondary_pdr",
            "gts_request_success",
            "allocation_rate",
            "primary_pdr",
        )

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        if ctx.dsme is None:
            raise ValueError("the 'dsme' collector requires a DSME scenario")
        stats = ctx.dsme.secondary_traffic_stats()
        observation = ctx.sim.now - ctx.warmup
        report.scalars["num_nodes"] = float(ctx.network.topology.num_nodes)
        report.scalars["secondary_pdr"] = stats.pdr
        report.scalars["gts_request_success"] = stats.gts_request_success_ratio
        report.scalars["allocation_rate"] = stats.allocation_rate(observation)
        report.scalars["primary_pdr"] = ctx.dsme.primary_traffic_pdr()
        report.tables["secondary_counts"] = stats.as_scalars()
        report.details["secondary"] = stats


@register_collector(
    "link-asymmetry",
    description="hidden-vs-near delivery asymmetry of the SINR regime",
)
class LinkAsymmetryCollector(MetricCollector):
    """Quantifies the asymmetric-link regime of the SINR hidden-node scenario.

    Two designated sources are compared: the *hidden* sender (geometrically
    in range of the sink but SINR-starved) and the *near* sender (a strong
    link that is captured over the hidden sender's frames).  The scalars
    record both sides of the physics claim — the hidden node keeps
    *receiving* (overheard relay traffic, ``hidden_frames_received``) and
    keeps *sensing* undecodable energy (``hidden_cca_sensed_only``) while
    its own uplink never delivers (``hidden_delivered``/``hidden_pdr``).
    ``delivery_asymmetry`` is the near-minus-hidden PDR gap.
    """

    def __init__(self, hidden_node: int = 3, near_node: int = 1) -> None:
        self.hidden_node = hidden_node
        self.near_node = near_node

    def provides(self) -> Tuple[str, ...]:
        return (
            "hidden_delivered",
            "hidden_pdr",
            "hidden_frames_received",
            "hidden_frames_corrupted",
            "hidden_cca_sensed_only",
            "near_pdr",
            "delivery_asymmetry",
        )

    def _pdr(self, ctx: CollectionContext, node_id: int) -> float:
        generated = ctx.network.node(node_id).packets_generated
        if generated == 0:
            return 0.0
        return ctx.network.sink.delivered_from(node_id) / generated

    def finalize(self, ctx: CollectionContext, report: SimReport) -> None:
        network = ctx.network
        hidden_radio = network.radios[self.hidden_node]
        hidden_pdr = self._pdr(ctx, self.hidden_node)
        near_pdr = self._pdr(ctx, self.near_node)
        report.scalars["hidden_delivered"] = float(
            network.sink.delivered_from(self.hidden_node)
        )
        report.scalars["hidden_pdr"] = hidden_pdr
        report.scalars["hidden_frames_received"] = float(hidden_radio.frames_received)
        report.scalars["hidden_frames_corrupted"] = float(hidden_radio.frames_corrupted)
        report.scalars["hidden_cca_sensed_only"] = float(
            hidden_radio.cca_sensed_only_count
        )
        report.scalars["near_pdr"] = near_pdr
        report.scalars["delivery_asymmetry"] = near_pdr - hidden_pdr
