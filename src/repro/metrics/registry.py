"""The metric-collector registry: instrumentation resolvable by name.

Mirrors the MAC and propagation registries: every built-in collector
registers itself with :func:`register_collector` at class-definition time,
and everything that needs instrumentation by name — the experiment
runners, the campaign layer's ``metrics=`` axis and the CLI — resolves it
here.  Adding a metric is one decorated class; every experiment, sweep and
CLI command can then request it with zero further changes::

    from repro.metrics import MetricCollector, register_collector

    @register_collector("hops", description="mean route length of deliveries")
    class HopCollector(MetricCollector):
        ...
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type, TypeVar

from repro.metrics.base import MetricCollector
from repro.registry import Registry, RegistryError

C = TypeVar("C", bound=MetricCollector)


@dataclass(frozen=True)
class CollectorSpec:
    """One registered metric collector."""

    name: str
    collector_cls: Type[MetricCollector]
    description: str = ""

    def build(self, **params: Any) -> MetricCollector:
        """Instantiate the collector with per-experiment parameters."""
        return self.collector_cls(**params)

    def provides(self, **params: Any) -> Tuple[str, ...]:
        """Scalar names a collector built with ``params`` would emit."""
        return self.build(**params).provides()

    def config_defaults(self) -> Dict[str, Any]:
        """Constructor parameter name -> default value (``...`` if required)."""
        signature = inspect.signature(self.collector_cls.__init__)
        return {
            name: (... if parameter.default is inspect.Parameter.empty else parameter.default)
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind is not inspect.Parameter.VAR_KEYWORD
        }


#: The process-wide collector registry; built-ins register on first lookup.
COLLECTOR_REGISTRY: Registry[CollectorSpec] = Registry(
    "metric collector",
    builtin_modules=("repro.metrics.collectors",),
)


def register_collector(
    name: str,
    description: str = "",
) -> Callable[[Type[C]], Type[C]]:
    """Class decorator registering a :class:`MetricCollector` subclass by name."""

    def decorator(cls: Type[C]) -> Type[C]:
        cls.name = name
        COLLECTOR_REGISTRY.register(name, CollectorSpec(name, cls, description=description))
        return cls

    return decorator


def collector_kinds() -> Tuple[str, ...]:
    """Names of all registered metric collectors (sorted, deterministic)."""
    return tuple(sorted(COLLECTOR_REGISTRY.names()))


def get_collector_spec(name: str) -> CollectorSpec:
    """Resolve a registered collector by name (raises :class:`RegistryError`)."""
    return COLLECTOR_REGISTRY.get(name)


def build_collectors(
    names: Sequence[str],
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> List[MetricCollector]:
    """Instantiate collectors by name, applying per-name constructor overrides.

    ``overrides`` is how an experiment adapts a generic collector to its
    metric conventions (e.g. the testbed runner building ``pdr`` in
    per-node mode); names without an override get registry defaults.
    """
    overrides = overrides or {}
    return [get_collector_spec(name).build(**overrides.get(name, {})) for name in names]


__all__ = [
    "COLLECTOR_REGISTRY",
    "CollectorSpec",
    "RegistryError",
    "build_collectors",
    "collector_kinds",
    "get_collector_spec",
    "register_collector",
]
