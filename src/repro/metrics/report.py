"""The typed simulation report produced by every experiment runner.

A :class:`SimReport` is the single result type of the reproduction: scalar
metrics keyed by name, named time series, per-node tables and typed detail
objects, plus the scenario identity (experiment, MAC, topology, parameters)
and the simulated duration.  It replaces the per-experiment result
dataclasses (``HiddenNodeResult``, ``TestbedResult``, ``ScalabilityResult``)
of earlier releases.

Scalars and scenario parameters are additionally readable as attributes
(``report.pdr``, ``report.delta``), which keeps most existing call sites
working unchanged.  Attributes of the retired result dataclasses that do
not map onto a scalar or parameter (``q_histories``, ``per_node_pdr``,
``secondary``, ...) are resolved through a per-report legacy-attribute map
and emit a :class:`DeprecationWarning`; the map is scheduled for removal
one release after the redesign.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: ``legacy`` map entry: old attribute name -> (report section, key).
LegacyRef = Tuple[str, str]


@dataclass
class SimReport:
    """Structured result of one simulation run.

    Parameters
    ----------
    experiment / mac / topology / params:
        Scenario identity; ``params`` holds the runner's keyword arguments
        (``delta``, ``rings``, ...).
    duration:
        Simulated time at the end of the run (``sim.now``).
    scalars:
        Scalar metrics keyed by name; these are what the campaign layer
        exports and aggregates.
    series:
        Named time series as ``[(time, value), ...]`` lists.
    tables:
        Named per-node tables (``{name: {node_id: value}}``).
    details:
        Typed auxiliary result objects that fit neither scalars nor tables
        (e.g. :class:`~repro.dsme.network.SecondaryTrafficStats`).
    trace_dropped:
        Number of trace records discarded because the run's
        :class:`~repro.sim.trace.TraceRecorder` hit its ``max_records``
        bound (0 when tracing was off or unbounded).
    """

    experiment: str = ""
    mac: str = ""
    topology: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    scalars: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    tables: Dict[str, Dict[Any, Any]] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    trace_dropped: int = 0
    legacy: Dict[str, LegacyRef] = field(default_factory=dict, repr=False, compare=False)

    # -------------------------------------------------------------- accessors
    def scalar(self, name: str) -> float:
        """Look up a scalar metric; raises :class:`KeyError` listing known names."""
        try:
            return self.scalars[name]
        except KeyError:
            known = ", ".join(sorted(self.scalars)) or "<none>"
            raise KeyError(f"report has no scalar {name!r}; available: {known}") from None

    def table(self, name: str) -> Dict[Any, Any]:
        """Look up a per-node table; raises :class:`KeyError` listing known names."""
        try:
            return self.tables[name]
        except KeyError:
            known = ", ".join(sorted(self.tables)) or "<none>"
            raise KeyError(f"report has no table {name!r}; available: {known}") from None

    def __getattr__(self, name: str) -> Any:
        # Only reached when normal attribute lookup fails.  Guard against
        # recursion while the instance dict is still empty (unpickling).
        if name.startswith("_"):
            raise AttributeError(name)
        data = object.__getattribute__(self, "__dict__")
        scalars = data.get("scalars")
        if scalars is not None and name in scalars:
            return scalars[name]
        params = data.get("params")
        if params is not None and name in params:
            return params[name]
        legacy = data.get("legacy")
        if legacy is not None and name in legacy:
            section, key = legacy[name]
            section_data = data.get(section) or {}
            if key in section_data:
                warnings.warn(
                    f"SimReport.{name} is a deprecated alias for "
                    f"report.{section}[{key!r}] and will be removed in the "
                    "next release",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return section_data[key]
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r} "
            f"(scalars: {sorted(scalars or ())}, params: {sorted(params or ())})"
        )

    # ----------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready view: identity, scalars, series, tables and trace info.

        ``details`` objects are omitted (they are arbitrary Python objects);
        table keys are stringified so the result is JSON-serialisable.
        """
        return {
            "experiment": self.experiment,
            "mac": self.mac,
            "topology": self.topology,
            "params": dict(self.params),
            "duration": self.duration,
            "scalars": dict(self.scalars),
            "series": {name: [list(sample) for sample in samples] for name, samples in self.series.items()},
            "tables": {
                name: {str(key): value for key, value in table.items()}
                for name, table in self.tables.items()
            },
            "trace_dropped": self.trace_dropped,
        }
