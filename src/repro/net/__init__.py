"""Network layer: nodes, routing towards a sink and the network builder.

The network layer wires topologies, radios, MAC protocols and traffic
generators together.  Data packets are routed hop-by-hop along the
topology's routing tree towards the sink; the sink records every delivery
with its end-to-end delay, which yields the PDR and delay figures of the
evaluation.
"""

from repro.net.node import DeliveryRecord, Node
from repro.net.routing import RouteDiscoveryBeacon
from repro.net.network import Network

__all__ = ["DeliveryRecord", "Network", "Node", "RouteDiscoveryBeacon"]
