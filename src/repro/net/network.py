"""Network builder: wire a topology, a MAC factory and traffic together.

A :class:`Network` owns the simulator's wireless channel, one radio, MAC
and :class:`~repro.net.node.Node` per topology node, and exposes the
aggregate metrics (PDR, end-to-end delay, queue levels, transmission
attempts) that the experiment runners report.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.net.node import Node
from repro.phy.channel import WirelessChannel
from repro.phy.params import PhyParameters
from repro.phy.radio import Radio
from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.phy.propagation import PropagationModel
    from repro.sim.engine import Simulator

#: Builds a MAC for a given (simulator, radio) pair.
MacFactory = Callable[["Simulator", Radio], "MacProtocol"]


class Network:
    """All simulated objects of one scenario instance."""

    def __init__(
        self,
        sim: "Simulator",
        topology: Topology,
        mac_factory: MacFactory,
        phy: Optional[PhyParameters] = None,
        link_error_rate: float = 0.0,
        static_links: Optional[bool] = None,
        interference: str = "collision",
        sinr_threshold_db: float = 10.0,
        propagation_model: Optional["PropagationModel"] = None,
        prebuilt_links: Optional[Mapping[int, Sequence[Tuple[int, float, float]]]] = None,
        prebuilt_cs: Optional[Mapping[int, Sequence[Tuple[int, float]]]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.channel = WirelessChannel(
            sim,
            phy,
            static_links=static_links,
            interference=interference,
            sinr_threshold_db=sinr_threshold_db,
        )
        self.nodes: Dict[int, Node] = {}
        self.macs: Dict[int, "MacProtocol"] = {}
        self.radios: Dict[int, Radio] = {}

        for node_id in topology.node_ids:
            radio = Radio(sim, self.channel, node_id, topology.position(node_id))
            self.radios[node_id] = radio
            mac = mac_factory(sim, radio)
            self.macs[node_id] = mac
            self.nodes[node_id] = Node(
                sim,
                node_id,
                mac,
                parent=topology.parent(node_id),
                sink_id=topology.sink,
            )

        # This wiring sequence (node-id-ordered set creation above, link-set
        # iteration order here) defines the channel's delivery order;
        # repro.scenario.artifacts.link_table_skeleton replays it verbatim,
        # and the build-cache test suite pins the parity per topology.
        for link in topology.links:
            a, b = tuple(link)
            self.channel.connect(a, b)
            if link_error_rate > 0.0:
                self.channel.set_link_error_rate(a, b, link_error_rate)
        if interference == "sinr":
            self._wire_sinr(propagation_model, prebuilt_links, prebuilt_cs)
        if prebuilt_links is not None:
            # Cached construction artifacts: the channel's first transmission
            # maps these shared (receiver, power, PER) rows onto this run's
            # radios instead of re-deriving receiver order from the
            # neighbour sets.  Installed last — power/sensed wiring above
            # invalidates (and would drop) an earlier preset.
            self.channel.preset_link_table(prebuilt_links)

    def _wire_sinr(
        self,
        model: Optional["PropagationModel"],
        prebuilt_links: Optional[Mapping[int, Sequence[Tuple[int, float, float]]]],
        prebuilt_cs: Optional[Mapping[int, Sequence[Tuple[int, float]]]],
    ) -> None:
        """Wire per-link received powers and carrier-sense-only links.

        Powers and sensed pairs come from the prebuilt construction
        artifacts when available (the cached fast path), otherwise they are
        derived live from the propagation model — the same enumeration
        order :func:`repro.scenario.artifacts.carrier_sense_skeleton` uses,
        so both routes produce identical channel wiring.
        """
        channel = self.channel
        topology = self.topology
        if prebuilt_links is not None and prebuilt_cs is not None:
            for sender, rows in prebuilt_links.items():
                for receiver, power_dbm, _per in rows:
                    channel.set_link_power(sender, receiver, power_dbm)
            for sender, rows in prebuilt_cs.items():
                for receiver, power_dbm in rows:
                    channel.connect_sensed(sender, receiver, power_dbm)
            return
        if model is None:
            raise ValueError(
                "interference='sinr' needs prebuilt link/carrier-sense tables "
                "or a propagation model to derive received powers from"
            )
        positions = {node_id: topology.position(node_id) for node_id in topology.node_ids}
        linked: Dict[int, set] = {node_id: set() for node_id in topology.node_ids}
        for link in topology.links:
            a, b = tuple(link)
            linked[a].add(b)
            linked[b].add(a)
            channel.set_link_power(a, b, model.received_power_dbm(positions[a], positions[b]))
            channel.set_link_power(b, a, model.received_power_dbm(positions[b], positions[a]))
        ids = list(topology.node_ids)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if b in linked[a]:
                    continue
                pos_a, pos_b = positions[a], positions[b]
                if model.in_carrier_sense_range(pos_a, pos_b):
                    channel.connect_sensed(a, b, model.received_power_dbm(pos_a, pos_b))
                if model.in_carrier_sense_range(pos_b, pos_a):
                    channel.connect_sensed(b, a, model.received_power_dbm(pos_b, pos_a))

    # ------------------------------------------------------------------ control
    def start(self) -> None:
        """Start every MAC and every attached traffic generator."""
        for mac in self.macs.values():
            mac.start()
        for node in self.nodes.values():
            if node.traffic is not None:
                node.traffic.start()

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def mac(self, node_id: int) -> "MacProtocol":
        return self.macs[node_id]

    @property
    def sink(self) -> Node:
        """The sink node of the topology."""
        if self.topology.sink is None:
            raise ValueError("topology has no sink")
        return self.nodes[self.topology.sink]

    def sources(self) -> List[Node]:
        """All non-sink nodes."""
        return [node for node in self.nodes.values() if not node.is_sink]

    # ------------------------------------------------------------------- hooks
    def add_delivery_hook(self, hook, node_ids: Optional[Iterable[int]] = None) -> None:
        """Subscribe ``hook(node, record)`` to delivery events.

        The hook fires whenever a selected node records a
        :class:`~repro.net.node.DeliveryRecord` (default: every node).
        Hooks are pure observers — metric collectors subscribe here instead
        of scraping ``sink.deliveries`` after the run.
        """
        nodes = self.nodes.values() if node_ids is None else (self.nodes[i] for i in node_ids)
        for node in nodes:
            node.delivery_hooks.append(hook)

    def add_generate_hook(self, hook, node_ids: Optional[Iterable[int]] = None) -> None:
        """Subscribe ``hook(node, frame)`` to data-packet generation events."""
        nodes = self.nodes.values() if node_ids is None else (self.nodes[i] for i in node_ids)
        for node in nodes:
            node.generate_hooks.append(hook)

    # ------------------------------------------------------------------ metrics
    def packets_generated(self, node_ids: Optional[Iterable[int]] = None) -> int:
        nodes = self._select(node_ids)
        return sum(node.packets_generated for node in nodes)

    def packets_delivered(self, origins: Optional[Iterable[int]] = None) -> int:
        sink = self.sink
        if origins is None:
            return len(sink.deliveries)
        origin_set = set(origins)
        return sum(1 for record in sink.deliveries if record.origin in origin_set)

    def packet_delivery_ratio(self, node_ids: Optional[Iterable[int]] = None) -> float:
        """Delivered / generated over the selected source nodes (the paper's PDR)."""
        generated = self.packets_generated(node_ids)
        if generated == 0:
            return 0.0
        origins = [n.node_id for n in self._select(node_ids)]
        return self.packets_delivered(origins) / generated

    def per_node_pdr(self) -> Dict[int, float]:
        """PDR per source node (Fig. 18 / Fig. 19 metric)."""
        result: Dict[int, float] = {}
        for node in self.sources():
            if node.packets_generated == 0:
                continue
            delivered = self.sink.delivered_from(node.node_id)
            result[node.node_id] = delivered / node.packets_generated
        return result

    def average_end_to_end_delay(self) -> float:
        """Mean delay of all packets delivered to the sink (Fig. 9 metric)."""
        return self.sink.average_delivery_delay()

    def average_queue_level(self, node_ids: Optional[Iterable[int]] = None) -> float:
        """Time-weighted mean queue level averaged over the selected nodes (Fig. 8)."""
        nodes = self._select(node_ids)
        if not nodes:
            return 0.0
        return sum(self.macs[n.node_id].queue.average_level() for n in nodes) / len(nodes)

    def total_transmission_attempts(self, node_ids: Optional[Iterable[int]] = None) -> int:
        """Total MAC transmission attempts (the paper's proxy for energy consumption)."""
        nodes = self._select(node_ids)
        return sum(self.macs[n.node_id].stats.tx_attempts for n in nodes)

    def _select(self, node_ids: Optional[Iterable[int]]) -> List[Node]:
        if node_ids is None:
            return self.sources()
        return [self.nodes[node_id] for node_id in node_ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Network({self.topology.name!r}, nodes={len(self.nodes)})"
