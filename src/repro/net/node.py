"""A network node: traffic source/forwarder/sink on top of a MAC protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.phy.frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.base import MacProtocol
    from repro.sim.engine import Simulator
    from repro.traffic.generators import TrafficGenerator


@dataclass
class DeliveryRecord:
    """A data packet that reached its final destination."""

    origin: int
    created_at: float
    received_at: float
    hops: int

    @property
    def delay(self) -> float:
        """End-to-end delay: reception at the sink minus generation time."""
        return self.received_at - self.created_at


class Node:
    """A node of the simulated network.

    The node generates data packets (if a traffic generator is attached),
    forwards packets of its children towards the sink along the routing
    tree and, if it is the sink, records deliveries.

    Frames that are not plain data (GTS handshake messages, beacons, route
    discovery broadcasts) are dispatched to handlers registered with
    :meth:`register_handler`, which is how the DSME substrate hooks into the
    node without the node knowing about DSME.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        mac: "MacProtocol",
        parent: Optional[int] = None,
        sink_id: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.mac = mac
        self.parent = parent
        self.sink_id = sink_id if sink_id is not None else node_id
        self.traffic: Optional["TrafficGenerator"] = None
        self._handlers: Dict[FrameKind, Callable[[Frame], None]] = {}

        # Typed observation hooks (see repro.metrics): called as
        # hook(node, record) when a delivery is recorded here, and
        # hook(node, frame) when this node generates a data packet.
        # Observers only — they must not send frames or schedule events.
        self.delivery_hooks: List[Callable[["Node", "DeliveryRecord"], None]] = []
        self.generate_hooks: List[Callable[["Node", Frame], None]] = []

        # statistics
        self.packets_generated = 0
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        self.deliveries: List[DeliveryRecord] = []

        mac.receive_callback = self._on_receive

    # ------------------------------------------------------------------ roles
    @property
    def is_sink(self) -> bool:
        return self.node_id == self.sink_id

    def attach_traffic(self, traffic: "TrafficGenerator") -> None:
        """Attach a traffic generator whose callback is :meth:`generate_packet`."""
        self.traffic = traffic

    def register_handler(self, kind: FrameKind, handler: Callable[[Frame], None]) -> None:
        """Register a handler for a non-data frame kind (used by DSME)."""
        self._handlers[kind] = handler

    # ----------------------------------------------------------------- sending
    def generate_packet(self, payload_bytes: Optional[int] = None) -> Optional[Frame]:
        """Generate one data packet addressed to the sink; returns the frame (or None)."""
        if self.is_sink:
            return None
        if self.parent is None:
            self.packets_dropped_no_route += 1
            return None
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=self.parent,
            final_dst=self.sink_id,
            created_at=self.sim.now,
            payload_bytes=payload_bytes,
        )
        self.packets_generated += 1
        self.mac.send(frame)
        if self.generate_hooks:
            for hook in self.generate_hooks:
                hook(self, frame)
        return frame

    def send_frame(self, frame: Frame) -> bool:
        """Hand an arbitrary frame (e.g. a GTS message) to the MAC."""
        return self.mac.send(frame)

    # ---------------------------------------------------------------- receiving
    def _on_receive(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.kind)
        if handler is not None:
            handler(frame)
            return
        if frame.kind is not FrameKind.DATA:
            return
        if frame.final_dst == self.node_id or (self.is_sink and frame.final_dst == self.sink_id):
            record = DeliveryRecord(
                origin=frame.origin,
                created_at=frame.created_at,
                received_at=self.sim.now,
                hops=frame.hops + 1,
            )
            self.deliveries.append(record)
            if self.delivery_hooks:
                for hook in self.delivery_hooks:
                    hook(self, record)
            return
        # Forward towards the sink.
        if self.parent is None:
            self.packets_dropped_no_route += 1
            return
        self.packets_forwarded += 1
        self.mac.send(frame.next_hop_copy(self.node_id, self.parent))

    # ------------------------------------------------------------------ stats
    def delivered_from(self, origin: int) -> int:
        """Number of packets originating at ``origin`` delivered to this node."""
        return sum(1 for record in self.deliveries if record.origin == origin)

    def average_delivery_delay(self) -> float:
        """Mean end-to-end delay of all deliveries recorded at this node."""
        if not self.deliveries:
            return 0.0
        return sum(record.delay for record in self.deliveries) / len(self.deliveries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "sink" if self.is_sink else "source"
        return f"Node({self.node_id}, {role}, mac={self.mac.name})"
