"""Routing-protocol broadcasts as secondary traffic.

The paper's scalability scenario uses greedy perimeter stateless routing
(GPSR) whose periodic route-discovery broadcasts load the contention access
period.  The substitution here keeps exactly that effect: a
:class:`RouteDiscoveryBeacon` periodically broadcasts a ROUTE_DISCOVERY
frame through the node's MAC.  Forwarding decisions themselves use the
static minimum-hop routing tree (see :mod:`repro.topology.base`), which the
greedy geographic next-hop selection reduces to for the paper's concentric
layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.phy.frames import BROADCAST, Frame, FrameKind
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.engine import Simulator


class RouteDiscoveryBeacon:
    """Periodic route-discovery broadcasts (GPSR-style neighbourhood beacons)."""

    def __init__(
        self,
        sim: "Simulator",
        node: "Node",
        period: float = 5.0,
        jitter: float = 0.5,
        start_time: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter < 0 or jitter >= period:
            raise ValueError("jitter must lie in [0, period)")
        self.sim = sim
        self.node = node
        self.period = period
        self.jitter = jitter
        self.start_time = start_time
        self.broadcasts_sent = 0
        self._rng = sim.rng.stream(f"route-discovery-{node.node_id}")
        self._process = PeriodicProcess(
            sim,
            period=self._next_period,
            callback=self._broadcast,
            start_delay=max(start_time - sim.now, 0.0) + self._next_period(),
        )

    def _next_period(self) -> float:
        if self.jitter == 0.0:
            return self.period
        return self.period + self._rng.uniform(-self.jitter, self.jitter)

    def start(self) -> None:
        self._process.start()

    def stop(self) -> None:
        self._process.stop()

    def _broadcast(self) -> None:
        frame = Frame(
            kind=FrameKind.ROUTE_DISCOVERY,
            src=self.node.node_id,
            dst=BROADCAST,
            created_at=self.sim.now,
        )
        self.broadcasts_sent += 1
        self.node.send_frame(frame)
