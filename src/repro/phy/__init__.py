"""Physical layer: frames, radios, the wireless channel and propagation.

This package replaces the OMNeT++ / openDSME radio substrate of the paper.
It models an IEEE 802.15.4-style 2.4 GHz O-QPSK PHY (250 kbit/s, 16 us
symbols), half-duplex transceivers with clear channel assessment, and a
collision model in which a frame is lost at a receiver whenever another
frame from a transmitter *within that receiver's range* overlaps it in time.
The hidden-terminal behaviour studied in the paper follows directly from
this model: a CCA only senses transmitters in range of the sensing node.
"""

from repro.phy.frames import BROADCAST, Frame, FrameKind
from repro.phy.params import PhyParameters
from repro.phy.propagation import (
    LogDistancePathLoss,
    PropagationModel,
    ShadowingPropagation,
    UnitDiskPropagation,
)
from repro.phy.channel import WirelessChannel
from repro.phy.radio import Radio, RadioState
from repro.phy.registry import (
    PROPAGATION_REGISTRY,
    PropagationSpec,
    create_propagation,
    get_propagation_spec,
    propagation_kinds,
    register_propagation,
)

__all__ = [
    "BROADCAST",
    "Frame",
    "FrameKind",
    "LogDistancePathLoss",
    "PROPAGATION_REGISTRY",
    "PhyParameters",
    "PropagationModel",
    "PropagationSpec",
    "Radio",
    "RadioState",
    "ShadowingPropagation",
    "UnitDiskPropagation",
    "WirelessChannel",
    "create_propagation",
    "get_propagation_spec",
    "propagation_kinds",
    "register_propagation",
]
