"""The shared wireless channel and its collision model.

The channel keeps track of every transmission that is currently on the air.
A frame is delivered to a receiver if and only if

* the receiver is within range of the sender,
* no other transmission from a node within range of *that receiver*
  overlaps the frame in time (no capture effect),
* the receiver is not itself transmitting during the frame, and
* the per-link error process (if configured) does not drop the frame.

Because interference is evaluated per receiver, hidden terminals behave as
in the paper: two senders that cannot hear each other will individually pass
their CCA and still collide at their common receiver.

Frames are delivered to every in-range radio, not only the addressed one;
the MAC layer decides what to do with overheard frames.  QMA relies on this
to reward ``QBackoff`` when a foreign DATA or ACK frame is overheard.

Static link table
-----------------
Topologies in this reproduction are static: links are wired (or derived
from a propagation model) once at network construction and never change
during a run.  The channel exploits this with a precomputed *link table* —
per sender, an ordered row of ``(receiver_id, radio, arriving_list,
packet_error_rate)`` tuples — built lazily on the first transmission, so
the per-delivery path is a flat iteration over prebuilt rows instead of
set/dict lookups per receiver.  The receiver order of each row is exactly
the neighbour-set iteration order of the dynamic path, so results are
bit-identical (per-link error draws consume the channel RNG in the same
order).

Mutating the topology (``connect`` / ``disconnect`` /
``set_link_error_rate`` / ``register``) *after* the table was first used
permanently demotes the channel to the dynamic fallback path — mobile or
mutating topologies keep the original per-delivery semantics without any
caller cooperation.  Channels can also be created with
``static_links=False`` to opt out up front.  Transmissions in flight at
demotion time lose their row snapshot and finish on the dynamic path, so
the static and dynamic modes agree even across the mutating event itself.

Prebuilt skeleton
-----------------
The construction cache (:mod:`repro.scenario.artifacts`) shares one
link-table *skeleton* — per sender, the ordered ``(receiver_id, PER)``
pairs — across every run of a sweep.  :meth:`WirelessChannel.preset_link_table`
installs such a skeleton after wiring; the first transmission then maps it
onto this run's radios and arriving lists instead of re-deriving the
receiver order from the neighbour sets.  The skeleton is read-only and
shared: any mutation simply *drops this channel's reference* (before first
use the table is later derived from the live wiring, after first use the
channel demotes to the dynamic path as usual), so a demoting run never
corrupts the bundle other runs still consume (copy-on-demote).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.phy.frames import Frame
from repro.phy.params import PhyParameters
from repro.phy.propagation import PropagationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: One precomputed delivery target: (receiver_id, radio, arriving, per).
_LinkRow = Tuple[int, "Radio", List["ActiveTransmission"], float]


@dataclass
class ActiveTransmission:
    """Book-keeping for a frame that is currently on the air."""

    sender_id: int
    frame: Frame
    start: float
    end: float
    corrupted_for: Set[int] = field(default_factory=set)
    #: Link-table rows snapshotted at transmission start (static path only;
    #: None when the channel runs on the dynamic fallback).
    rows: Optional[Sequence[_LinkRow]] = None


class WirelessChannel:
    """A broadcast medium with per-receiver interference.

    Parameters
    ----------
    sim:
        The simulation engine.
    phy:
        PHY timing parameters (shared by all radios on the channel).
    static_links:
        Use the precomputed link table for deliveries (default: the class
        attribute :attr:`DEFAULT_STATIC_LINKS`, True).  Pass False for
        topologies that mutate mid-run; a mutation after the first
        transmission demotes a static channel automatically.
    """

    #: Process-wide default for the ``static_links`` constructor argument;
    #: tests flip this to verify the dynamic fallback end to end.
    DEFAULT_STATIC_LINKS = True

    def __init__(
        self,
        sim: "Simulator",
        phy: Optional[PhyParameters] = None,
        static_links: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.phy = phy if phy is not None else PhyParameters()
        self._radios: Dict[int, "Radio"] = {}
        self._neighbours: Dict[int, Set[int]] = {}
        self._link_error: Dict[tuple, float] = {}
        #: transmissions currently arriving at each radio (keyed by radio id)
        self._arriving: Dict[int, List[ActiveTransmission]] = {}
        self._rng = sim.rng.stream("channel")
        self._static = (
            self.DEFAULT_STATIC_LINKS if static_links is None else bool(static_links)
        )
        self._link_table: Optional[Dict[int, Tuple[_LinkRow, ...]]] = None
        #: Shared (receiver_id, PER) skeleton installed by preset_link_table;
        #: read-only — mutations drop the reference, never edit it.
        self._skeleton: Optional[Mapping[int, Sequence[Tuple[int, float]]]] = None
        # statistics
        self.transmissions_started = 0
        self.frames_delivered = 0
        self.frames_corrupted = 0
        self.frames_lost_link_error = 0

    # --------------------------------------------------------------- wiring
    def register(self, radio: "Radio") -> None:
        """Attach a radio to the channel."""
        if radio.node_id in self._radios:
            raise ValueError(f"radio id {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        self._neighbours.setdefault(radio.node_id, set())
        arriving: List[ActiveTransmission] = []
        self._arriving.setdefault(radio.node_id, arriving)
        # The radio keeps a direct reference to its arriving list so CCA
        # needs no dict lookups (see Radio.cca).
        radio._rx_arriving = self._arriving[radio.node_id]
        self.invalidate_link_table()

    def radios(self) -> Iterable["Radio"]:
        return self._radios.values()

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]

    def connect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Declare that node ``b`` can hear transmissions of node ``a``."""
        if a == b:
            raise ValueError("a node cannot be its own neighbour")
        self._neighbours.setdefault(a, set()).add(b)
        if bidirectional:
            self._neighbours.setdefault(b, set()).add(a)
        self.invalidate_link_table()

    def disconnect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Remove a previously declared link.

        Frames of the removed link that are still on the air stop arriving
        at the disconnected receiver immediately — otherwise the stale
        book-keeping entry would keep the receiver's CCA busy forever.
        """
        # Demote (clearing in-flight row snapshots) BEFORE purging the
        # arriving lists: a purged transmission would otherwise keep its
        # stale rows and still deliver over the removed link.
        self.invalidate_link_table()
        self._neighbours.get(a, set()).discard(b)
        self._drop_in_flight(a, b)
        if bidirectional:
            self._neighbours.get(b, set()).discard(a)
            self._drop_in_flight(b, a)

    def _drop_in_flight(self, sender_id: int, receiver_id: int) -> None:
        """Purge ``sender_id``'s in-flight transmissions from ``receiver_id``'s
        arriving list after their link was removed."""
        arriving = self._arriving.get(receiver_id)
        if arriving:
            arriving[:] = [tx for tx in arriving if tx.sender_id != sender_id]

    def build_links_from_positions(self, model: PropagationModel) -> None:
        """Derive connectivity from radio positions using a propagation model."""
        ids = list(self._radios)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pos_a = self._radios[a].position
                pos_b = self._radios[b].position
                if pos_a is None or pos_b is None:
                    raise ValueError("all radios need positions to derive links")
                if model.in_range(pos_a, pos_b):
                    self.connect(a, b, bidirectional=False)
                if model.in_range(pos_b, pos_a):
                    self.connect(b, a, bidirectional=False)

    def set_link_error_rate(self, a: int, b: int, per: float, bidirectional: bool = True) -> None:
        """Set the packet error rate of the link from ``a`` to ``b``."""
        if not 0.0 <= per <= 1.0:
            raise ValueError("packet error rate must lie in [0, 1]")
        self._link_error[(a, b)] = per
        if bidirectional:
            self._link_error[(b, a)] = per
        self.invalidate_link_table()

    # ----------------------------------------------------------- link table
    @property
    def static_links(self) -> bool:
        """True while deliveries run over the precomputed link table."""
        return self._static

    def preset_link_table(
        self, skeleton: Mapping[int, Sequence[Tuple[int, float]]]
    ) -> None:
        """Install a shared prebuilt ``sender -> ((receiver, PER), ...)`` skeleton.

        Called by :class:`~repro.net.network.Network` after wiring when the
        scenario builder supplied cached construction artifacts; the first
        transmission then maps the skeleton onto this run's radios and
        arriving lists instead of re-deriving receiver order from the
        neighbour sets.  The skeleton must describe exactly the current
        wiring — any later mutation discards it (see
        :meth:`invalidate_link_table`).  Dynamic channels ignore presets.
        """
        if not self._static:
            return
        if self._link_table is not None:
            raise RuntimeError("cannot preset the link table after its first use")
        self._skeleton = skeleton

    def invalidate_link_table(self) -> None:
        """Drop the precomputed delivery rows after a topology change.

        Called automatically by every mutating method.  Before the table's
        first use this is free (construction-time wiring) — though a preset
        skeleton no longer matching the wiring is dropped, falling back to
        deriving the table from the live neighbour sets; *after* first
        use the channel permanently falls back to the dynamic path, which
        re-reads the neighbour sets per delivery — the correct semantics
        for mobile/mutating topologies.  Transmissions in flight at
        demotion time lose their row snapshot and finish on the dynamic
        path too, so a mid-flight mutation behaves exactly like a channel
        that ran dynamic from the start.  A shared skeleton is never
        edited, only dereferenced — other runs consuming the same bundle
        are unaffected (copy-on-demote).
        """
        self._skeleton = None
        if self._link_table is not None:
            self._link_table = None
            self._static = False
            for arriving in self._arriving.values():
                for tx in arriving:
                    tx.rows = None

    def _build_link_table(self) -> Dict[int, Tuple[_LinkRow, ...]]:
        """Precompute per-sender delivery rows (neighbour-set order kept)."""
        radios = self._radios
        arriving = self._arriving
        skeleton = self._skeleton
        if skeleton is not None:
            table = {
                sender_id: tuple(
                    (receiver_id, radios[receiver_id], arriving[receiver_id], per)
                    for receiver_id, per in skeleton.get(sender_id, ())
                )
                for sender_id in radios
            }
        else:
            link_error = self._link_error
            table = {
                sender_id: tuple(
                    (
                        receiver_id,
                        radios[receiver_id],
                        arriving[receiver_id],
                        link_error.get((sender_id, receiver_id), 0.0),
                    )
                    for receiver_id in self._neighbours.get(sender_id, ())
                )
                for sender_id in radios
            }
        self._link_table = table
        return table

    _EMPTY_NEIGHBOURS: AbstractSet[int] = frozenset()

    def neighbours(self, node_id: int) -> Set[int]:
        """Node ids that can hear transmissions of ``node_id`` (a fresh copy)."""
        return set(self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS))

    def neighbours_view(self, node_id: int) -> AbstractSet[int]:
        """Read-only view of the neighbour set (no copy; do not mutate).

        The dynamic delivery path iterates neighbour sets once per
        transmission through this accessor, avoiding the per-call copy of
        :meth:`neighbours` while keeping the public method's copy semantics.
        """
        return self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS)

    def hears(self, receiver: int, sender: int) -> bool:
        """True if ``receiver`` is within range of ``sender``."""
        return receiver in self._neighbours.get(sender, set())

    # ------------------------------------------------------------- carrier
    def is_busy_for(self, node_id: int) -> bool:
        """Channel state as seen by a CCA performed at ``node_id``.

        The channel is busy if any transmission from a node within range of
        ``node_id`` is currently on the air, or if ``node_id`` itself is
        transmitting.
        """
        radio = self._radios[node_id]
        if radio.transmitting:
            return True
        return bool(self._arriving.get(node_id))

    # --------------------------------------------------------- transmission
    def begin_transmission(self, sender: "Radio", frame: Frame, duration: float) -> None:
        """Start a transmission of ``frame`` by ``sender`` lasting ``duration`` seconds."""
        now = self.sim.now
        tx = ActiveTransmission(sender.node_id, frame, now, now + duration)
        self.transmissions_started += 1
        corrupted_for = tx.corrupted_for
        if self._static:
            table = self._link_table
            if table is None:
                table = self._build_link_table()
            rows = table[sender.node_id]
            tx.rows = rows
            for receiver_id, radio, arriving, _ in rows:
                if arriving:
                    # Overlap with everything currently arriving at this receiver.
                    corrupted_for.add(receiver_id)
                    for other in arriving:
                        other.corrupted_for.add(receiver_id)
                if radio.transmitting:
                    # Half-duplex: a transmitting radio cannot receive.
                    corrupted_for.add(receiver_id)
                arriving.append(tx)
        else:
            radios = self._radios
            arriving_map = self._arriving
            for receiver_id in self.neighbours_view(sender.node_id):
                arriving = arriving_map[receiver_id]
                if arriving:
                    corrupted_for.add(receiver_id)
                    for other in arriving:
                        other.corrupted_for.add(receiver_id)
                if radios[receiver_id].transmitting:
                    corrupted_for.add(receiver_id)
                arriving.append(tx)
        self.sim.schedule_fast(duration, self._end_transmission, tx)

    def notify_transmit_start(self, node_id: int) -> None:
        """Called by a radio when it switches to transmit mode.

        Any frame that is currently being received by this radio is lost
        (half-duplex operation).
        """
        for tx in self._arriving.get(node_id, []):
            tx.corrupted_for.add(node_id)

    def _end_transmission(self, tx: ActiveTransmission) -> None:
        rows = tx.rows
        if rows is not None:
            corrupted_for = tx.corrupted_for
            rng_random = self._rng.random
            for receiver_id, receiver, arriving, per in rows:
                try:
                    arriving.remove(tx)
                except ValueError:
                    # Defensive: rows survive only while the table is
                    # valid (demotion clears them), so the entry should
                    # always still be present.
                    pass
                if receiver_id in corrupted_for:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if receiver.transmitting:
                    # Receiver started transmitting exactly at the boundary.
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if per > 0.0 and rng_random() < per:
                    self.frames_lost_link_error += 1
                    continue
                self.frames_delivered += 1
                receiver.deliver(tx.frame)
        else:
            radios = self._radios
            arriving_map = self._arriving
            for receiver_id in self.neighbours_view(tx.sender_id):
                arriving = arriving_map[receiver_id]
                try:
                    arriving.remove(tx)
                except ValueError:
                    # The link was (dis)connected while the frame was on the air.
                    pass
                receiver = radios[receiver_id]
                if receiver_id in tx.corrupted_for:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if receiver.transmitting:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                per = self._link_error.get((tx.sender_id, receiver_id), 0.0)
                if per > 0.0 and self._rng.random() < per:
                    self.frames_lost_link_error += 1
                    continue
                self.frames_delivered += 1
                receiver.deliver(tx.frame)
        self._radios[tx.sender_id].transmission_finished(tx.frame)
