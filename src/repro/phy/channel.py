"""The shared wireless channel and its interference models.

The channel keeps track of every transmission that is currently on the air.
Two interference models are available:

**Collision model** (``interference="collision"``, the default — the
paper's evaluation world).  A frame is delivered to a receiver if and only
if

* the receiver is within range of the sender,
* no other transmission from a node within range of *that receiver*
  overlaps the frame in time (no capture effect),
* the receiver is not itself transmitting during the frame, and
* the per-link error process (if configured) does not drop the frame.

**SINR model** (``interference="sinr"``).  Every directed link carries a
received power (:meth:`WirelessChannel.set_link_power`, fed from the
propagation model's ``received_power_dbm``).  A frame is decodable at a
receiver while its signal power divided by (noise floor + the sum of every
other concurrently arriving or sensed transmission's power at that
receiver) stays at or above the capture threshold
(``sinr_threshold_db``).  The strongest overlapping frame therefore
*survives* overlap — the capture effect — while the collision model would
destroy both.  Corruption is monotone: interference at a receiver only
grows when a new transmitter starts, so frames are re-evaluated exactly at
each transmission start; a transmitter stopping only lowers interference
and can never corrupt, which makes the sticky per-receiver corruption flag
equivalent to continuous re-evaluation.  Carrier sensing is decoupled from
decoding: :meth:`connect_sensed` links (inside carrier-sense range, beyond
communication range) contribute interference and drive CCA busy but are
never synchronised on, so they produce neither deliveries nor
``notify_corrupted_frame`` events.

Because interference is evaluated per receiver, hidden terminals behave as
in the paper: two senders that cannot hear each other will individually pass
their CCA and still collide at their common receiver.

Frames are delivered to every in-range radio, not only the addressed one;
the MAC layer decides what to do with overheard frames.  QMA relies on this
to reward ``QBackoff`` when a foreign DATA or ACK frame is overheard.

Static link table
-----------------
Topologies in this reproduction are static: links are wired (or derived
from a propagation model) once at network construction and never change
during a run.  The channel exploits this with a precomputed *link table* —
per sender, an ordered row of ``(receiver_id, radio, arriving_list,
packet_error_rate)`` tuples — built lazily on the first transmission, so
the per-delivery path is a flat iteration over prebuilt rows instead of
set/dict lookups per receiver.  The receiver order of each row is exactly
the neighbour-set iteration order of the dynamic path, so results are
bit-identical (per-link error draws consume the channel RNG in the same
order).

Mutating the topology (``connect`` / ``disconnect`` /
``set_link_error_rate`` / ``register``) *after* the table was first used
permanently demotes the channel to the dynamic fallback path — mobile or
mutating topologies keep the original per-delivery semantics without any
caller cooperation.  Channels can also be created with
``static_links=False`` to opt out up front.  Transmissions in flight at
demotion time lose their row snapshot and finish on the dynamic path, so
the static and dynamic modes agree even across the mutating event itself.

Prebuilt skeleton
-----------------
The construction cache (:mod:`repro.scenario.artifacts`) shares one
link-table *skeleton* — per sender, the ordered ``(receiver_id,
rx_power_dbm, PER)`` rows — across every run of a sweep.
:meth:`WirelessChannel.preset_link_table` installs such a skeleton after
wiring; the first transmission then maps it onto this run's radios and
arriving lists instead of re-deriving the receiver order from the
neighbour sets.  The skeleton is read-only and shared: any mutation simply
*drops this channel's reference* (before first use the table is later
derived from the live wiring, after first use the channel demotes to the
dynamic path as usual), so a demoting run never corrupts the bundle other
runs still consume (copy-on-demote).  The SINR model rides the same fast
path: its rows additionally carry the precomputed linear signal power, and
a parallel *sense table* maps senders onto the sensing lists of their
carrier-sense-only receivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.phy.frames import Frame
from repro.phy.params import PhyParameters
from repro.phy.propagation import PropagationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator

#: One precomputed delivery target:
#: (receiver_id, radio, arriving, per, signal_mw).  ``signal_mw`` is the
#: linear received power of the directed link, 0.0 under the collision
#: model (which never reads it).
_LinkRow = Tuple[int, "Radio", List["ActiveTransmission"], float, float]

#: One precomputed carrier-sense-only target: (receiver_id, sensing list).
_SenseRow = Tuple[int, List["ActiveTransmission"]]

#: Interference models accepted by :class:`WirelessChannel`.
INTERFERENCE_MODELS = ("collision", "sinr")

#: Default capture threshold of the SINR model, in dB.  A frame survives
#: while its signal exceeds noise + interference by at least this margin —
#: the usual O-QPSK co-channel rejection ballpark.
DEFAULT_SINR_THRESHOLD_DB = 10.0


@dataclass
class ActiveTransmission:
    """Book-keeping for a frame that is currently on the air."""

    sender_id: int
    frame: Frame
    start: float
    end: float
    corrupted_for: Set[int] = field(default_factory=set)
    #: Link-table rows snapshotted at transmission start (static path only;
    #: None when the channel runs on the dynamic fallback).
    rows: Optional[Sequence[_LinkRow]] = None
    #: Sense-table rows snapshotted at transmission start (static SINR path
    #: only; cleared together with ``rows`` on demotion).
    sense_rows: Optional[Sequence[_SenseRow]] = None


class WirelessChannel:
    """A broadcast medium with per-receiver interference.

    Parameters
    ----------
    sim:
        The simulation engine.
    phy:
        PHY timing parameters (shared by all radios on the channel).
    static_links:
        Use the precomputed link table for deliveries (default: the class
        attribute :attr:`DEFAULT_STATIC_LINKS`, True).  Pass False for
        topologies that mutate mid-run; a mutation after the first
        transmission demotes a static channel automatically.
    interference:
        ``"collision"`` (default) — the paper's binary overlap model;
        ``"sinr"`` — signal-power interference with capture (see the
        module docstring).  SINR channels need per-link received powers
        (:meth:`set_link_power`); :class:`~repro.net.network.Network`
        wires them from the propagation model or the cached skeleton.
    sinr_threshold_db:
        Capture threshold of the SINR model (ignored by the collision
        model).
    """

    #: Process-wide default for the ``static_links`` constructor argument;
    #: tests flip this to verify the dynamic fallback end to end.
    DEFAULT_STATIC_LINKS = True

    def __init__(
        self,
        sim: "Simulator",
        phy: Optional[PhyParameters] = None,
        static_links: Optional[bool] = None,
        interference: str = "collision",
        sinr_threshold_db: float = DEFAULT_SINR_THRESHOLD_DB,
    ) -> None:
        if interference not in INTERFERENCE_MODELS:
            raise ValueError(
                f"unknown interference model {interference!r}; "
                f"expected one of {INTERFERENCE_MODELS}"
            )
        self.sim = sim
        self.phy = phy if phy is not None else PhyParameters()
        self.interference = interference
        self.sinr_threshold_db = sinr_threshold_db
        self._sinr = interference == "sinr"
        self._radios: Dict[int, "Radio"] = {}
        self._neighbours: Dict[int, Set[int]] = {}
        #: carrier-sense-only neighbours: sensed (energy, CCA) but not
        #: decodable.  Disjoint from ``_neighbours`` by construction.
        self._cs_neighbours: Dict[int, Set[int]] = {}
        self._link_error: Dict[tuple, float] = {}
        #: linear received power (mW) per directed (sender, receiver) link,
        #: covering communication and carrier-sense-only links alike.
        self._power_mw: Dict[Tuple[int, int], float] = {}
        #: transmissions currently arriving at each radio (keyed by radio id)
        self._arriving: Dict[int, List[ActiveTransmission]] = {}
        #: transmissions currently sensed-only at each radio
        self._sensing: Dict[int, List[ActiveTransmission]] = {}
        self._rng = sim.rng.stream("channel")
        self._static = (
            self.DEFAULT_STATIC_LINKS if static_links is None else bool(static_links)
        )
        self._link_table: Optional[Dict[int, Tuple[_LinkRow, ...]]] = None
        self._sense_table: Optional[Dict[int, Tuple[_SenseRow, ...]]] = None
        #: Shared (receiver_id, power_dbm, PER) skeleton installed by
        #: preset_link_table; read-only — mutations drop the reference,
        #: never edit it.
        self._skeleton: Optional[Mapping[int, Sequence[Tuple[int, float, float]]]] = None
        self._noise_mw = 10.0 ** (self.phy.noise_floor_dbm / 10.0)
        self._capture_ratio = 10.0 ** (sinr_threshold_db / 10.0)
        # statistics
        self.transmissions_started = 0
        self.frames_delivered = 0
        self.frames_corrupted = 0
        self.frames_lost_link_error = 0

    # --------------------------------------------------------------- wiring
    def register(self, radio: "Radio") -> None:
        """Attach a radio to the channel."""
        if radio.node_id in self._radios:
            raise ValueError(f"radio id {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        self._neighbours.setdefault(radio.node_id, set())
        arriving: List[ActiveTransmission] = []
        self._arriving.setdefault(radio.node_id, arriving)
        self._sensing.setdefault(radio.node_id, [])
        # The radio keeps direct references to its arriving and sensing
        # lists so CCA needs no dict lookups (see Radio.cca).
        radio._rx_arriving = self._arriving[radio.node_id]
        radio._rx_sensing = self._sensing[radio.node_id]
        self.invalidate_link_table()

    def radios(self) -> Iterable["Radio"]:
        return self._radios.values()

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]

    def connect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Declare that node ``b`` can hear transmissions of node ``a``."""
        if a == b:
            raise ValueError("a node cannot be its own neighbour")
        self._neighbours.setdefault(a, set()).add(b)
        if bidirectional:
            self._neighbours.setdefault(b, set()).add(a)
        self.invalidate_link_table()

    def disconnect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Remove a previously declared link.

        Frames of the removed link that are still on the air stop arriving
        at the disconnected receiver immediately — otherwise the stale
        book-keeping entry would keep the receiver's CCA busy forever.
        """
        # Demote (clearing in-flight row snapshots) BEFORE purging the
        # arriving lists: a purged transmission would otherwise keep its
        # stale rows and still deliver over the removed link.
        self.invalidate_link_table()
        self._neighbours.get(a, set()).discard(b)
        self._drop_in_flight(a, b)
        if bidirectional:
            self._neighbours.get(b, set()).discard(a)
            self._drop_in_flight(b, a)

    def _drop_in_flight(self, sender_id: int, receiver_id: int) -> None:
        """Purge ``sender_id``'s in-flight transmissions from ``receiver_id``'s
        arriving list after their link was removed."""
        arriving = self._arriving.get(receiver_id)
        if arriving:
            arriving[:] = [tx for tx in arriving if tx.sender_id != sender_id]

    def build_links_from_positions(self, model: PropagationModel) -> None:
        """Derive connectivity from radio positions using a propagation model."""
        ids = list(self._radios)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pos_a = self._radios[a].position
                pos_b = self._radios[b].position
                if pos_a is None or pos_b is None:
                    raise ValueError("all radios need positions to derive links")
                if model.in_range(pos_a, pos_b):
                    self.connect(a, b, bidirectional=False)
                if model.in_range(pos_b, pos_a):
                    self.connect(b, a, bidirectional=False)

    def set_link_error_rate(self, a: int, b: int, per: float, bidirectional: bool = True) -> None:
        """Set the packet error rate of the link from ``a`` to ``b``."""
        if not 0.0 <= per <= 1.0:
            raise ValueError("packet error rate must lie in [0, 1]")
        self._link_error[(a, b)] = per
        if bidirectional:
            self._link_error[(b, a)] = per
        self.invalidate_link_table()

    # ------------------------------------------------------ SINR link wiring
    def set_link_power(self, sender: int, receiver: int, power_dbm: float) -> None:
        """Set the received power of the directed link ``sender -> receiver``.

        Consumed by the SINR interference model for both decodable links
        (signal and interference) and sensed-only links (interference).
        Harmless no-op data under the collision model.
        """
        self._power_mw[(sender, receiver)] = 10.0 ** (power_dbm / 10.0)
        self.invalidate_link_table()

    def connect_sensed(self, sender: int, receiver: int, power_dbm: float) -> None:
        """Declare that ``receiver`` *senses* (but cannot decode) ``sender``.

        Sensed-only transmissions contribute interference at the receiver
        and drive its CCA busy, but are never delivered and never raise
        ``notify_corrupted_frame`` — the receiver cannot synchronise on
        them in the first place.
        """
        if sender == receiver:
            raise ValueError("a node cannot sense itself")
        if receiver in self._neighbours.get(sender, ()):
            raise ValueError(
                f"link {sender}->{receiver} is already a communication link"
            )
        self._cs_neighbours.setdefault(sender, set()).add(receiver)
        self._power_mw[(sender, receiver)] = 10.0 ** (power_dbm / 10.0)
        self.invalidate_link_table()

    def disconnect_sensed(self, sender: int, receiver: int) -> None:
        """Remove a sensed-only link.

        Mirrors :meth:`disconnect`: sensed transmissions still in flight
        are purged from the receiver's sensing list immediately, so a
        removed link can never strand the sensed-energy book-keeping and
        pin the receiver's CCA busy.
        """
        self.invalidate_link_table()
        self._cs_neighbours.get(sender, set()).discard(receiver)
        sensing = self._sensing.get(receiver)
        if sensing:
            sensing[:] = [tx for tx in sensing if tx.sender_id != sender]

    def senses(self, receiver: int, sender: int) -> bool:
        """True if ``receiver`` senses (without decoding) ``sender``."""
        return receiver in self._cs_neighbours.get(sender, self._EMPTY_NEIGHBOURS)

    # ----------------------------------------------------------- link table
    @property
    def static_links(self) -> bool:
        """True while deliveries run over the precomputed link table."""
        return self._static

    def preset_link_table(
        self, skeleton: Mapping[int, Sequence[Tuple[int, float, float]]]
    ) -> None:
        """Install a shared ``sender -> ((receiver, power_dbm, PER), ...)`` skeleton.

        Called by :class:`~repro.net.network.Network` after wiring when the
        scenario builder supplied cached construction artifacts; the first
        transmission then maps the skeleton onto this run's radios and
        arriving lists instead of re-deriving receiver order from the
        neighbour sets.  The skeleton must describe exactly the current
        wiring — any later mutation discards it (see
        :meth:`invalidate_link_table`).  Dynamic channels ignore presets.
        """
        if not self._static:
            return
        if self._link_table is not None:
            raise RuntimeError("cannot preset the link table after its first use")
        self._skeleton = skeleton

    def invalidate_link_table(self) -> None:
        """Drop the precomputed delivery rows after a topology change.

        Called automatically by every mutating method.  Before the table's
        first use this is free (construction-time wiring) — though a preset
        skeleton no longer matching the wiring is dropped, falling back to
        deriving the table from the live neighbour sets; *after* first
        use the channel permanently falls back to the dynamic path, which
        re-reads the neighbour sets per delivery — the correct semantics
        for mobile/mutating topologies.  Transmissions in flight at
        demotion time lose their row snapshot and finish on the dynamic
        path too, so a mid-flight mutation behaves exactly like a channel
        that ran dynamic from the start.  A shared skeleton is never
        edited, only dereferenced — other runs consuming the same bundle
        are unaffected (copy-on-demote).
        """
        self._skeleton = None
        if self._link_table is not None:
            self._link_table = None
            self._sense_table = None
            self._static = False
            for arriving in self._arriving.values():
                for tx in arriving:
                    tx.rows = None
                    tx.sense_rows = None
            for sensing in self._sensing.values():
                for tx in sensing:
                    tx.rows = None
                    tx.sense_rows = None

    def _build_link_table(self) -> Dict[int, Tuple[_LinkRow, ...]]:
        """Precompute per-sender delivery rows (neighbour-set order kept).

        Signal powers come from the channel's own ``_power_mw`` wiring (the
        skeleton's power column was already applied through
        :meth:`set_link_power` at construction), so the skeleton-mapped and
        live-derived tables agree by construction.
        """
        radios = self._radios
        arriving = self._arriving
        power = self._power_mw
        skeleton = self._skeleton
        if skeleton is not None:
            table = {
                sender_id: tuple(
                    (
                        receiver_id,
                        radios[receiver_id],
                        arriving[receiver_id],
                        per,
                        power.get((sender_id, receiver_id), 0.0),
                    )
                    for receiver_id, _power_dbm, per in skeleton.get(sender_id, ())
                )
                for sender_id in radios
            }
        else:
            link_error = self._link_error
            table = {
                sender_id: tuple(
                    (
                        receiver_id,
                        radios[receiver_id],
                        arriving[receiver_id],
                        link_error.get((sender_id, receiver_id), 0.0),
                        power.get((sender_id, receiver_id), 0.0),
                    )
                    for receiver_id in self._neighbours.get(sender_id, ())
                )
                for sender_id in radios
            }
        self._link_table = table
        if self._sinr:
            sensing = self._sensing
            self._sense_table = {
                sender_id: tuple(
                    (receiver_id, sensing[receiver_id])
                    for receiver_id in self._cs_neighbours.get(sender_id, ())
                )
                for sender_id in radios
            }
        return table

    _EMPTY_NEIGHBOURS: AbstractSet[int] = frozenset()

    def neighbours(self, node_id: int) -> Set[int]:
        """Node ids that can hear transmissions of ``node_id`` (a fresh copy)."""
        return set(self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS))

    def neighbours_view(self, node_id: int) -> AbstractSet[int]:
        """Read-only view of the neighbour set (no copy; do not mutate).

        The dynamic delivery path iterates neighbour sets once per
        transmission through this accessor, avoiding the per-call copy of
        :meth:`neighbours` while keeping the public method's copy semantics.
        """
        return self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS)

    def hears(self, receiver: int, sender: int) -> bool:
        """True if ``receiver`` is within range of ``sender``."""
        return receiver in self._neighbours.get(sender, set())

    # ------------------------------------------------------------- carrier
    def is_busy_for(self, node_id: int) -> bool:
        """Channel state as seen by a CCA performed at ``node_id``.

        The channel is busy if any transmission from a node within range of
        ``node_id`` is currently on the air, or if ``node_id`` itself is
        transmitting.  Under the SINR model, sensed-only energy (inside
        carrier-sense range, beyond decode range) also reads busy.
        """
        radio = self._radios[node_id]
        if radio.transmitting:
            return True
        if self._arriving.get(node_id):
            return True
        return bool(self._sensing.get(node_id))

    # --------------------------------------------------------- transmission
    def begin_transmission(self, sender: "Radio", frame: Frame, duration: float) -> None:
        """Start a transmission of ``frame`` by ``sender`` lasting ``duration`` seconds."""
        now = self.sim.now
        tx = ActiveTransmission(sender.node_id, frame, now, now + duration)
        self.transmissions_started += 1
        if self._sinr:
            self._begin_sinr(sender, tx)
            self.sim.schedule_fast(duration, self._end_transmission, tx)
            return
        corrupted_for = tx.corrupted_for
        if self._static:
            table = self._link_table
            if table is None:
                table = self._build_link_table()
            rows = table[sender.node_id]
            tx.rows = rows
            for receiver_id, radio, arriving, _per, _signal in rows:
                if arriving:
                    # Overlap with everything currently arriving at this receiver.
                    corrupted_for.add(receiver_id)
                    for other in arriving:
                        other.corrupted_for.add(receiver_id)
                if radio.transmitting:
                    # Half-duplex: a transmitting radio cannot receive.
                    corrupted_for.add(receiver_id)
                arriving.append(tx)
        else:
            radios = self._radios
            arriving_map = self._arriving
            for receiver_id in self.neighbours_view(sender.node_id):
                arriving = arriving_map[receiver_id]
                if arriving:
                    corrupted_for.add(receiver_id)
                    for other in arriving:
                        other.corrupted_for.add(receiver_id)
                if radios[receiver_id].transmitting:
                    corrupted_for.add(receiver_id)
                arriving.append(tx)
        self.sim.schedule_fast(duration, self._end_transmission, tx)

    def _begin_sinr(self, sender: "Radio", tx: ActiveTransmission) -> None:
        """Start a transmission under the SINR interference model.

        The new frame is appended to the arriving list of each decodable
        receiver and the sensing list of each carrier-sense-only receiver;
        every receiver whose interference grew is re-evaluated once
        (corruption is monotone, so starts are the only points where a
        frame can newly fail the threshold).
        """
        sender_id = sender.node_id
        corrupted_for = tx.corrupted_for
        if self._static:
            table = self._link_table
            if table is None:
                table = self._build_link_table()
            rows = table[sender_id]
            sense_rows = self._sense_table[sender_id]
            tx.rows = rows
            tx.sense_rows = sense_rows
            for receiver_id, radio, arriving, _per, _signal in rows:
                if radio.transmitting:
                    # Half-duplex: a transmitting radio cannot receive.
                    corrupted_for.add(receiver_id)
                arriving.append(tx)
                self._reevaluate(receiver_id, arriving)
            for receiver_id, sensing in sense_rows:
                sensing.append(tx)
                arriving = self._arriving[receiver_id]
                if arriving:
                    self._reevaluate(receiver_id, arriving)
        else:
            radios = self._radios
            arriving_map = self._arriving
            for receiver_id in self.neighbours_view(sender_id):
                if radios[receiver_id].transmitting:
                    corrupted_for.add(receiver_id)
                arriving = arriving_map[receiver_id]
                arriving.append(tx)
                self._reevaluate(receiver_id, arriving)
            for receiver_id in self._cs_neighbours.get(sender_id, self._EMPTY_NEIGHBOURS):
                self._sensing[receiver_id].append(tx)
                arriving = arriving_map[receiver_id]
                if arriving:
                    self._reevaluate(receiver_id, arriving)

    def _reevaluate(self, receiver_id: int, arriving: List[ActiveTransmission]) -> None:
        """Re-apply the SINR threshold to every frame arriving at a receiver.

        Interference is summed fresh over the arriving and sensing lists in
        insertion (chronological) order — identical on the static and
        dynamic paths, so float summation order can never diverge between
        them.  Already-corrupted frames stay corrupted (sticky flag).
        """
        power = self._power_mw
        noise = self._noise_mw
        threshold = self._capture_ratio
        if len(arriving) == 1 and not self._sensing[receiver_id]:
            # Lone frame: only the noise floor opposes it.
            tx = arriving[0]
            if receiver_id not in tx.corrupted_for:
                signal = power.get((tx.sender_id, receiver_id), 0.0)
                if signal < threshold * noise:
                    tx.corrupted_for.add(receiver_id)
            return
        total = noise
        for other in arriving:
            total += power.get((other.sender_id, receiver_id), 0.0)
        for other in self._sensing[receiver_id]:
            total += power.get((other.sender_id, receiver_id), 0.0)
        for tx in arriving:
            if receiver_id in tx.corrupted_for:
                continue
            signal = power.get((tx.sender_id, receiver_id), 0.0)
            if signal < threshold * (total - signal):
                tx.corrupted_for.add(receiver_id)

    def notify_transmit_start(self, node_id: int) -> None:
        """Called by a radio when it switches to transmit mode.

        Any frame that is currently being received by this radio is lost
        (half-duplex operation).
        """
        for tx in self._arriving.get(node_id, []):
            tx.corrupted_for.add(node_id)

    def _end_transmission(self, tx: ActiveTransmission) -> None:
        rows = tx.rows
        if rows is not None:
            corrupted_for = tx.corrupted_for
            rng_random = self._rng.random
            for receiver_id, receiver, arriving, per, _signal in rows:
                try:
                    arriving.remove(tx)
                except ValueError:
                    # Defensive: rows survive only while the table is
                    # valid (demotion clears them), so the entry should
                    # always still be present.
                    pass
                if receiver_id in corrupted_for:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if receiver.transmitting:
                    # Receiver started transmitting exactly at the boundary.
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if per > 0.0 and rng_random() < per:
                    self.frames_lost_link_error += 1
                    continue
                self.frames_delivered += 1
                receiver.deliver(tx.frame)
            if tx.sense_rows is not None:
                # Sensed-only receivers just stop seeing the energy — no
                # delivery, no corruption notification (they never
                # synchronised on the frame).
                for _receiver_id, sensing in tx.sense_rows:
                    try:
                        sensing.remove(tx)
                    except ValueError:
                        pass
        else:
            radios = self._radios
            arriving_map = self._arriving
            for receiver_id in self.neighbours_view(tx.sender_id):
                arriving = arriving_map[receiver_id]
                try:
                    arriving.remove(tx)
                except ValueError:
                    # The link was (dis)connected while the frame was on the air.
                    pass
                receiver = radios[receiver_id]
                if receiver_id in tx.corrupted_for:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                if receiver.transmitting:
                    self.frames_corrupted += 1
                    receiver.notify_corrupted_frame(tx.frame)
                    continue
                per = self._link_error.get((tx.sender_id, receiver_id), 0.0)
                if per > 0.0 and self._rng.random() < per:
                    self.frames_lost_link_error += 1
                    continue
                self.frames_delivered += 1
                receiver.deliver(tx.frame)
            if self._sinr:
                for receiver_id in self._cs_neighbours.get(
                    tx.sender_id, self._EMPTY_NEIGHBOURS
                ):
                    sensing = self._sensing[receiver_id]
                    try:
                        sensing.remove(tx)
                    except ValueError:
                        # The sensed link was removed while the frame was
                        # on the air (disconnect_sensed purges eagerly).
                        pass
        self._radios[tx.sender_id].transmission_finished(tx.frame)
