"""The shared wireless channel and its collision model.

The channel keeps track of every transmission that is currently on the air.
A frame is delivered to a receiver if and only if

* the receiver is within range of the sender,
* no other transmission from a node within range of *that receiver*
  overlaps the frame in time (no capture effect),
* the receiver is not itself transmitting during the frame, and
* the per-link error process (if configured) does not drop the frame.

Because interference is evaluated per receiver, hidden terminals behave as
in the paper: two senders that cannot hear each other will individually pass
their CCA and still collide at their common receiver.

Frames are delivered to every in-range radio, not only the addressed one;
the MAC layer decides what to do with overheard frames.  QMA relies on this
to reward ``QBackoff`` when a foreign DATA or ACK frame is overheard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, Iterable, List, Optional, Set, TYPE_CHECKING

from repro.phy.frames import Frame
from repro.phy.params import PhyParameters
from repro.phy.propagation import PropagationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.phy.radio import Radio
    from repro.sim.engine import Simulator


@dataclass
class ActiveTransmission:
    """Book-keeping for a frame that is currently on the air."""

    sender_id: int
    frame: Frame
    start: float
    end: float
    corrupted_for: Set[int] = field(default_factory=set)


class WirelessChannel:
    """A broadcast medium with per-receiver interference.

    Parameters
    ----------
    sim:
        The simulation engine.
    phy:
        PHY timing parameters (shared by all radios on the channel).
    """

    def __init__(self, sim: "Simulator", phy: Optional[PhyParameters] = None) -> None:
        self.sim = sim
        self.phy = phy if phy is not None else PhyParameters()
        self._radios: Dict[int, "Radio"] = {}
        self._neighbours: Dict[int, Set[int]] = {}
        self._link_error: Dict[tuple, float] = {}
        #: transmissions currently arriving at each radio (keyed by radio id)
        self._arriving: Dict[int, List[ActiveTransmission]] = {}
        self._rng = sim.rng.stream("channel")
        # statistics
        self.transmissions_started = 0
        self.frames_delivered = 0
        self.frames_corrupted = 0
        self.frames_lost_link_error = 0

    # --------------------------------------------------------------- wiring
    def register(self, radio: "Radio") -> None:
        """Attach a radio to the channel."""
        if radio.node_id in self._radios:
            raise ValueError(f"radio id {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        self._neighbours.setdefault(radio.node_id, set())
        self._arriving.setdefault(radio.node_id, [])

    def radios(self) -> Iterable["Radio"]:
        return self._radios.values()

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]

    def connect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Declare that node ``b`` can hear transmissions of node ``a``."""
        if a == b:
            raise ValueError("a node cannot be its own neighbour")
        self._neighbours.setdefault(a, set()).add(b)
        if bidirectional:
            self._neighbours.setdefault(b, set()).add(a)

    def disconnect(self, a: int, b: int, bidirectional: bool = True) -> None:
        """Remove a previously declared link."""
        self._neighbours.get(a, set()).discard(b)
        if bidirectional:
            self._neighbours.get(b, set()).discard(a)

    def build_links_from_positions(self, model: PropagationModel) -> None:
        """Derive connectivity from radio positions using a propagation model."""
        ids = list(self._radios)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pos_a = self._radios[a].position
                pos_b = self._radios[b].position
                if pos_a is None or pos_b is None:
                    raise ValueError("all radios need positions to derive links")
                if model.in_range(pos_a, pos_b):
                    self.connect(a, b, bidirectional=False)
                if model.in_range(pos_b, pos_a):
                    self.connect(b, a, bidirectional=False)

    def set_link_error_rate(self, a: int, b: int, per: float, bidirectional: bool = True) -> None:
        """Set the packet error rate of the link from ``a`` to ``b``."""
        if not 0.0 <= per <= 1.0:
            raise ValueError("packet error rate must lie in [0, 1]")
        self._link_error[(a, b)] = per
        if bidirectional:
            self._link_error[(b, a)] = per

    _EMPTY_NEIGHBOURS: AbstractSet[int] = frozenset()

    def neighbours(self, node_id: int) -> Set[int]:
        """Node ids that can hear transmissions of ``node_id`` (a fresh copy)."""
        return set(self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS))

    def neighbours_view(self, node_id: int) -> AbstractSet[int]:
        """Read-only view of the neighbour set (no copy; do not mutate).

        The delivery hot path (:meth:`begin_transmission` /
        :meth:`_end_transmission`) iterates neighbour sets once per
        transmission through this accessor, avoiding the per-call copy of
        :meth:`neighbours` while keeping the public method's copy semantics.
        """
        return self._neighbours.get(node_id, self._EMPTY_NEIGHBOURS)

    def hears(self, receiver: int, sender: int) -> bool:
        """True if ``receiver`` is within range of ``sender``."""
        return receiver in self._neighbours.get(sender, set())

    # ------------------------------------------------------------- carrier
    def is_busy_for(self, node_id: int) -> bool:
        """Channel state as seen by a CCA performed at ``node_id``.

        The channel is busy if any transmission from a node within range of
        ``node_id`` is currently on the air, or if ``node_id`` itself is
        transmitting.
        """
        radio = self._radios[node_id]
        if radio.transmitting:
            return True
        return bool(self._arriving.get(node_id))

    # --------------------------------------------------------- transmission
    def begin_transmission(self, sender: "Radio", frame: Frame, duration: float) -> None:
        """Start a transmission of ``frame`` by ``sender`` lasting ``duration`` seconds."""
        now = self.sim.now
        tx = ActiveTransmission(sender.node_id, frame, now, now + duration)
        self.transmissions_started += 1
        radios = self._radios
        arriving_map = self._arriving
        corrupted_for = tx.corrupted_for
        for receiver_id in self.neighbours_view(sender.node_id):
            arriving = arriving_map[receiver_id]
            if arriving:
                # Overlap with everything currently arriving at this receiver.
                corrupted_for.add(receiver_id)
                for other in arriving:
                    other.corrupted_for.add(receiver_id)
            if radios[receiver_id].transmitting:
                # Half-duplex: a transmitting radio cannot receive.
                corrupted_for.add(receiver_id)
            arriving.append(tx)
        self.sim.schedule(duration, self._end_transmission, tx)

    def notify_transmit_start(self, node_id: int) -> None:
        """Called by a radio when it switches to transmit mode.

        Any frame that is currently being received by this radio is lost
        (half-duplex operation).
        """
        for tx in self._arriving.get(node_id, []):
            tx.corrupted_for.add(node_id)

    def _end_transmission(self, tx: ActiveTransmission) -> None:
        sender = self._radios[tx.sender_id]
        radios = self._radios
        arriving_map = self._arriving
        for receiver_id in self.neighbours_view(tx.sender_id):
            arriving = arriving_map[receiver_id]
            try:
                arriving.remove(tx)
            except ValueError:
                # The link was (dis)connected while the frame was on the air.
                pass
            receiver = radios[receiver_id]
            if receiver_id in tx.corrupted_for:
                self.frames_corrupted += 1
                receiver.notify_corrupted_frame(tx.frame)
                continue
            if receiver.transmitting:
                # Receiver started transmitting exactly at the boundary.
                self.frames_corrupted += 1
                receiver.notify_corrupted_frame(tx.frame)
                continue
            per = self._link_error.get((tx.sender_id, receiver_id), 0.0)
            if per > 0.0 and self._rng.random() < per:
                self.frames_lost_link_error += 1
                continue
            self.frames_delivered += 1
            receiver.deliver(tx.frame)
        sender.transmission_finished(tx.frame)
