"""Frame definitions shared by all MAC protocols and the DSME substrate.

A :class:`Frame` is a MAC-layer protocol data unit.  Frames carry both the
link-layer addressing (``src`` / ``dst`` for the current hop) and the
network-layer addressing (``origin`` / ``final_dst``) so that multi-hop
scenarios (tree and concentric topologies) can be expressed without a
separate network-layer header object.

The ``queue_level`` field implements the piggybacking described in
Sect. 4.2 of the paper: QMA's parameter-based exploration needs the average
queue level of the neighbouring nodes, which is carried in regular data
messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum, auto
from typing import Any, Dict, Optional

#: Link-layer broadcast address.
BROADCAST = -1

_frame_ids = itertools.count(1)


class FrameKind(Enum):
    """The kinds of frames exchanged in the reproduction."""

    DATA = auto()
    ACK = auto()
    BEACON = auto()
    GTS_REQUEST = auto()
    GTS_RESPONSE = auto()
    GTS_NOTIFY = auto()
    ROUTE_DISCOVERY = auto()

    @property
    def is_gts_management(self) -> bool:
        """True for the three messages of the DSME GTS handshake."""
        return self in (
            FrameKind.GTS_REQUEST,
            FrameKind.GTS_RESPONSE,
            FrameKind.GTS_NOTIFY,
        )


#: Default MAC payload sizes in bytes, loosely following IEEE 802.15.4 /
#: openDSME frame formats.  Sizes only influence frame air-time.
DEFAULT_FRAME_SIZES: Dict[FrameKind, int] = {
    FrameKind.DATA: 75,
    FrameKind.ACK: 5,
    FrameKind.BEACON: 30,
    FrameKind.GTS_REQUEST: 20,
    FrameKind.GTS_RESPONSE: 22,
    FrameKind.GTS_NOTIFY: 20,
    FrameKind.ROUTE_DISCOVERY: 24,
}


@dataclass
class Frame:
    """A MAC-layer frame.

    Parameters
    ----------
    kind:
        The frame type.
    src / dst:
        Link-layer source and destination of the current hop.  ``dst`` may be
        :data:`BROADCAST`.
    origin / final_dst:
        End-to-end source and destination; default to ``src`` / ``dst``.
    payload_bytes:
        MAC payload size used to compute the frame's air time.
    created_at:
        Simulation time at which the upper layer generated the frame
        (used for end-to-end delay).
    seq:
        Per-frame unique identifier.
    queue_level:
        Queue occupancy of the sender at transmission time (piggybacked for
        QMA's parameter-based exploration).
    priority:
        Frames with ``priority=True`` may use QMA's ``QSend`` action without
        a preceding CCA.
    meta:
        Free-form metadata used by higher layers (e.g. GTS handshake ids).
    """

    kind: FrameKind
    src: int
    dst: int
    origin: Optional[int] = None
    final_dst: Optional[int] = None
    payload_bytes: Optional[int] = None
    created_at: float = 0.0
    seq: int = field(default_factory=lambda: next(_frame_ids))
    queue_level: int = 0
    priority: bool = False
    retries: int = 0
    hops: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.origin is None:
            self.origin = self.src
        if self.final_dst is None:
            self.final_dst = self.dst
        if self.payload_bytes is None:
            self.payload_bytes = DEFAULT_FRAME_SIZES[self.kind]
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")

    # ------------------------------------------------------------------ api
    @property
    def is_broadcast(self) -> bool:
        """True if the frame is link-layer broadcast (never acknowledged)."""
        return self.dst == BROADCAST

    @property
    def requires_ack(self) -> bool:
        """Unicast non-ACK frames are acknowledged."""
        return not self.is_broadcast and self.kind is not FrameKind.ACK

    def next_hop_copy(self, src: int, dst: int) -> "Frame":
        """Copy the frame for forwarding to the next hop.

        The end-to-end fields (``origin``, ``final_dst``, ``created_at``) are
        preserved while the link-layer addressing is rewritten and the hop
        counter incremented.
        """
        return replace(
            self,
            src=src,
            dst=dst,
            retries=0,
            hops=self.hops + 1,
            seq=next(_frame_ids),
            meta=dict(self.meta),
        )

    def make_ack(self, src: int) -> "Frame":
        """Build the acknowledgement frame for this frame."""
        if self.is_broadcast:
            raise ValueError("broadcast frames are not acknowledged")
        return Frame(
            kind=FrameKind.ACK,
            src=src,
            dst=self.src,
            created_at=self.created_at,
            meta={"acked_seq": self.seq},
        )

    def acknowledges(self, frame: "Frame") -> bool:
        """True if this ACK acknowledges the given frame."""
        return self.kind is FrameKind.ACK and self.meta.get("acked_seq") == frame.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        dst = "BCAST" if self.is_broadcast else self.dst
        return f"Frame({self.kind.name} #{self.seq} {self.src}->{dst})"
