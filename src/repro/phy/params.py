"""PHY and MAC timing parameters of IEEE 802.15.4 (2.4 GHz O-QPSK).

All timing constants follow the 2.4 GHz PHY used by the paper's testbed
(M3 Open Nodes with AT86RF231 transceivers) and by openDSME:

* 250 kbit/s data rate, 16 us symbol period;
* ``aUnitBackoffPeriod`` = 20 symbols (320 us);
* ``aTurnaroundTime`` = 12 symbols (192 us);
* CCA duration = 8 symbols (128 us);
* PHY preamble + SFD + length field = 6 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.phy.frames import Frame, FrameKind


@dataclass(frozen=True)
class PhyParameters:
    """Timing parameters of the physical layer."""

    bitrate_bps: float = 250_000.0
    symbol_time_s: float = 16e-6
    phy_overhead_bytes: int = 6
    mac_header_bytes: int = 11
    cca_symbols: int = 8
    turnaround_symbols: int = 12
    unit_backoff_symbols: int = 20
    ack_wait_symbols: int = 54  # macAckWaitDuration for the 2.4 GHz PHY
    #: Receiver noise floor: thermal noise over the 2 MHz O-QPSK channel
    #: (-174 dBm/Hz + 63 dB) plus a ~11 dB transceiver noise figure.  Only
    #: the SINR interference model reads it.
    noise_floor_dbm: float = -100.0

    #: Air-time cache keyed by (kind is ACK, payload bytes).  Air time is a
    #: pure function of those two and the (frozen) timing fields, and the
    #: delivery hot path computes it once per transmission — memoising here
    #: removes the repeated float arithmetic.  Excluded from eq/hash.
    _airtime_cache: Dict[Tuple[bool, int], float] = field(
        default_factory=dict, compare=False, repr=False
    )

    # ------------------------------------------------------------ durations
    @property
    def cca_duration(self) -> float:
        """Duration of a single clear channel assessment in seconds."""
        return self.cca_symbols * self.symbol_time_s

    @property
    def turnaround_time(self) -> float:
        """RX/TX turnaround time in seconds."""
        return self.turnaround_symbols * self.symbol_time_s

    @property
    def unit_backoff_period(self) -> float:
        """``aUnitBackoffPeriod`` in seconds."""
        return self.unit_backoff_symbols * self.symbol_time_s

    @property
    def ack_wait_duration(self) -> float:
        """Time a transmitter waits for an acknowledgement, in seconds."""
        return self.ack_wait_symbols * self.symbol_time_s

    def frame_airtime(self, frame: Frame) -> float:
        """Air time of a frame in seconds, including PHY and MAC overhead."""
        is_ack = frame.kind is FrameKind.ACK
        key = (is_ack, frame.payload_bytes)
        airtime = self._airtime_cache.get(key)
        if airtime is None:
            if is_ack:
                total_bytes = self.phy_overhead_bytes + 5
            else:
                total_bytes = (
                    self.phy_overhead_bytes + self.mac_header_bytes + frame.payload_bytes
                )
            airtime = total_bytes * 8.0 / self.bitrate_bps
            self._airtime_cache[key] = airtime
        return airtime

    def ack_airtime(self) -> float:
        """Air time of an acknowledgement frame in seconds."""
        return (self.phy_overhead_bytes + 5) * 8.0 / self.bitrate_bps

    def transaction_time(self, frame: Frame) -> float:
        """Worst-case duration of a complete unicast transaction.

        Frame air time + turnaround + ACK wait.  Used by MAC layers to decide
        how long a transmission occupies the medium from the sender's point
        of view.
        """
        if frame.requires_ack:
            return self.frame_airtime(frame) + self.turnaround_time + self.ack_wait_duration
        return self.frame_airtime(frame)
