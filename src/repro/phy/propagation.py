"""Propagation models deciding which nodes can hear each other.

Three models are provided (all registered by name in
:mod:`repro.phy.registry`):

* :class:`UnitDiskPropagation` (``unit-disk``) — nodes hear each other iff
  their distance is below a configurable communication range.  Used for the
  hidden-node and concentric scenarios, where the paper only specifies
  connectivity.
* :class:`LogDistancePathLoss` (``log-distance``) — a log-distance path-loss
  model combined with a transmit power and a receiver sensitivity.  This
  reproduces the topology-construction procedure of Kauer & Turau used for
  the FIT IoT-LAB experiments (transmit power -9 dBm / 3 dBm, sensitivity
  -72 dBm / -90 dBm).
* :class:`ShadowingPropagation` (``fading``) — log-distance path loss plus
  per-link log-normal shadowing (slow Rayleigh-style fading margin), opening
  irregular-connectivity scenarios as a sweepable axis.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

Position = Tuple[float, float]


def distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two positions (2-D or 3-D)."""
    if len(a) != len(b):
        raise ValueError("positions must have the same dimensionality")
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class PropagationModel(ABC):
    """Decides link existence (and quality) between node positions."""

    @abstractmethod
    def in_range(self, a: Position, b: Position) -> bool:
        """True if a transmission from ``a`` can be *decoded* at ``b``."""

    def in_carrier_sense_range(self, a: Position, b: Position) -> bool:
        """True if a transmission from ``a`` raises the energy seen at ``b``.

        Energy detection reaches further than frame decoding on real
        transceivers; models that distinguish the two override this.  The
        default couples both ranges (carrier sense == communication range),
        which is the paper's original binary-collision world.
        """
        return self.in_range(a, b)

    def received_power_dbm(self, a: Position, b: Position) -> float:
        """Received power at ``b`` for a transmission from ``a`` in dBm.

        Required by the SINR interference model
        (:class:`repro.phy.channel.WirelessChannel` with
        ``interference="sinr"``); purely geometric models must synthesise a
        consistent value (see :class:`UnitDiskPropagation`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} defines no received power; "
            "interference='sinr' needs a model with received_power_dbm()"
        )

    def link_quality(self, a: Position, b: Position) -> float:
        """A value in [0, 1] describing link quality; 0 if out of range."""
        return 1.0 if self.in_range(a, b) else 0.0


class UnitDiskPropagation(PropagationModel):
    """Binary connectivity based on a fixed communication range.

    The default range of 60 m connects the adjacent links of the default
    scenario geometries (hidden-node spacing 50 m, concentric ring spacing
    40 m) without bridging their hidden-terminal pairs.

    ``carrier_sense_range`` optionally decouples energy detection from
    frame decoding: a transmitter between the two radii is *sensed* (CCA
    busy, interference energy) but cannot be decoded.  None (the default)
    keeps both ranges equal — the legacy coupled behaviour.

    Although the disk model is purely geometric, it synthesises a received
    power (a log-distance budget with the constants below) so the SINR
    interference model serves all propagation models through one code path.
    """

    #: Synthetic link budget of the disk model's received power.  The
    #: constants mirror :class:`LogDistancePathLoss` defaults, so at the
    #: default 60 m range the weakest decodable link still clears the
    #: default capture threshold against the noise floor alone.
    SYNTHETIC_TX_POWER_DBM = 0.0
    SYNTHETIC_REFERENCE_LOSS_DB = 40.0
    SYNTHETIC_PATH_LOSS_EXPONENT = 2.6

    def __init__(
        self,
        communication_range: float = 60.0,
        carrier_sense_range: Optional[float] = None,
    ) -> None:
        if communication_range <= 0:
            raise ValueError("communication_range must be positive")
        if carrier_sense_range is not None and carrier_sense_range < communication_range:
            raise ValueError(
                "carrier_sense_range must be >= communication_range "
                f"({carrier_sense_range} < {communication_range})"
            )
        self.communication_range = communication_range
        self.carrier_sense_range = (
            communication_range if carrier_sense_range is None else carrier_sense_range
        )

    def in_range(self, a: Position, b: Position) -> bool:
        if len(a) == 2 and len(b) == 2:
            # Inlined 2-D distance: link derivation evaluates every ordered
            # node pair, so the generator overhead of distance() is worth
            # skipping.  The sqrt is kept (not a squared comparison) so the
            # boundary decision is bit-identical to distance().
            dx = a[0] - b[0]
            dy = a[1] - b[1]
            return math.sqrt(dx * dx + dy * dy) <= self.communication_range
        return distance(a, b) <= self.communication_range

    def in_carrier_sense_range(self, a: Position, b: Position) -> bool:
        if len(a) == 2 and len(b) == 2:
            dx = a[0] - b[0]
            dy = a[1] - b[1]
            return math.sqrt(dx * dx + dy * dy) <= self.carrier_sense_range
        return distance(a, b) <= self.carrier_sense_range

    def received_power_dbm(self, a: Position, b: Position) -> float:
        d = max(distance(a, b), 1.0)
        return (
            self.SYNTHETIC_TX_POWER_DBM
            - self.SYNTHETIC_REFERENCE_LOSS_DB
            - 10.0 * self.SYNTHETIC_PATH_LOSS_EXPONENT * math.log10(d)
        )

    def link_quality(self, a: Position, b: Position) -> float:
        if not self.in_range(a, b):
            return 0.0
        d = distance(a, b)
        return max(0.0, 1.0 - 0.5 * d / self.communication_range)


class LogDistancePathLoss(PropagationModel):
    """Log-distance path loss with a sensitivity threshold.

    Received power is ``tx_power_dbm - pl0_db - 10 * n * log10(d / d0)``;
    a node is in range if the received power exceeds ``sensitivity_dbm``.

    ``cca_sensitivity_dbm`` optionally decouples the energy-detection
    threshold from the decode sensitivity: power between the two thresholds
    is *sensed* (CCA busy, interference energy) but not decodable.  It must
    lie at or below ``sensitivity_dbm`` (a lower threshold senses further);
    None (the default) couples both thresholds — the legacy behaviour.
    """

    def __init__(
        self,
        tx_power_dbm: float = 0.0,
        sensitivity_dbm: float = -90.0,
        path_loss_exponent: float = 2.6,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
        cca_sensitivity_dbm: Optional[float] = None,
    ) -> None:
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        if reference_distance_m <= 0:
            raise ValueError("reference_distance_m must be positive")
        if cca_sensitivity_dbm is not None and cca_sensitivity_dbm > sensitivity_dbm:
            raise ValueError(
                "cca_sensitivity_dbm must be <= sensitivity_dbm "
                f"({cca_sensitivity_dbm} > {sensitivity_dbm})"
            )
        self.tx_power_dbm = tx_power_dbm
        self.sensitivity_dbm = sensitivity_dbm
        self.path_loss_exponent = path_loss_exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance_m = reference_distance_m
        self.cca_sensitivity_dbm = (
            sensitivity_dbm if cca_sensitivity_dbm is None else cca_sensitivity_dbm
        )

    def received_power_dbm(self, a: Position, b: Position) -> float:
        """Received power at ``b`` for a transmission from ``a``."""
        d = max(distance(a, b), self.reference_distance_m)
        path_loss = self.reference_loss_db + 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance_m
        )
        return self.tx_power_dbm - path_loss

    def in_range(self, a: Position, b: Position) -> bool:
        return self.received_power_dbm(a, b) >= self.sensitivity_dbm

    def in_carrier_sense_range(self, a: Position, b: Position) -> bool:
        return self.received_power_dbm(a, b) >= self.cca_sensitivity_dbm

    def link_quality(self, a: Position, b: Position) -> float:
        margin = self.received_power_dbm(a, b) - self.sensitivity_dbm
        if margin < 0:
            return 0.0
        return min(1.0, margin / 20.0)

    def max_range(self) -> float:
        """Distance at which the received power equals the sensitivity."""
        budget = self.tx_power_dbm - self.sensitivity_dbm - self.reference_loss_db
        return self.reference_distance_m * 10.0 ** (budget / (10.0 * self.path_loss_exponent))

    def carrier_sense_max_range(self) -> float:
        """Distance at which the received power equals the CCA threshold."""
        budget = self.tx_power_dbm - self.cca_sensitivity_dbm - self.reference_loss_db
        return self.reference_distance_m * 10.0 ** (budget / (10.0 * self.path_loss_exponent))


class ShadowingPropagation(LogDistancePathLoss):
    """Log-distance path loss with per-link log-normal shadowing.

    Every unordered node pair draws one Gaussian shadowing value (in dB, the
    slow-fading margin of a Rayleigh/log-normal channel) that is added to
    the deterministic log-distance received power.  The draw is a pure
    function of the model ``seed`` and the two positions — independent of
    call order and process — so campaigns over this model stay bit-identical
    regardless of worker count.  Links are symmetric: both directions of a
    pair share the same shadowing value.
    """

    def __init__(
        self,
        tx_power_dbm: float = 0.0,
        sensitivity_dbm: float = -90.0,
        path_loss_exponent: float = 2.6,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
        shadowing_sigma_db: float = 4.0,
        seed: int = 0,
        cca_sensitivity_dbm: Optional[float] = None,
    ) -> None:
        super().__init__(
            tx_power_dbm=tx_power_dbm,
            sensitivity_dbm=sensitivity_dbm,
            path_loss_exponent=path_loss_exponent,
            reference_loss_db=reference_loss_db,
            reference_distance_m=reference_distance_m,
            cca_sensitivity_dbm=cca_sensitivity_dbm,
        )
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        self.shadowing_sigma_db = shadowing_sigma_db
        self.seed = seed
        self._shadowing_cache: Dict[Tuple[Position, Position], float] = {}

    def shadowing_db(self, a: Position, b: Position) -> float:
        """The (cached) shadowing value of the unordered pair ``{a, b}``.

        Symmetric by construction: ``shadowing_db(a, b) == shadowing_db(b,
        a)`` for every position pair, so ``in_range``/``link_quality`` can
        never disagree across the two directions of one link.  The pair is
        canonicalised by numeric order; numerically *equal* but distinct
        positions (``0.0`` vs ``-0.0``, ``50`` vs ``50.0``) compare equal
        in both orders yet repr differently, so they are tie-broken by repr
        — without the tie-break the seed string (and hence the draw) would
        depend on the call direction.
        """
        if a < b:
            key = (a, b)
        elif b < a:
            key = (b, a)
        else:
            key = (a, b) if repr(a) <= repr(b) else (b, a)
        cached = self._shadowing_cache.get(key)
        if cached is None:
            # random.Random seeded with a string hashes it via SHA-512, so
            # the draw is stable across processes and Python invocations.
            rng = random.Random(f"shadowing:{self.seed}:{key[0]!r}:{key[1]!r}")
            cached = rng.gauss(0.0, self.shadowing_sigma_db)
            self._shadowing_cache[key] = cached
        return cached

    def received_power_dbm(self, a: Position, b: Position) -> float:
        power = super().received_power_dbm(a, b)
        if self.shadowing_sigma_db == 0.0:
            return power
        return power + self.shadowing_db(a, b)
