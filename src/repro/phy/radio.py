"""Half-duplex transceiver model.

A :class:`Radio` belongs to exactly one node and is attached to a
:class:`~repro.phy.channel.WirelessChannel`.  The MAC layer drives it with
:meth:`transmit` and :meth:`cca` and receives frames through the
``frame_listener`` callback.  Every frame that arrives uncorrupted is
delivered, including frames addressed to other nodes — overhearing is part
of QMA's reward function.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.phy.frames import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.phy.channel import WirelessChannel
    from repro.sim.engine import Simulator

FrameListener = Callable[[Frame], None]
TxCompleteListener = Callable[[Frame], None]


class RadioState(Enum):
    """Coarse transceiver state (receive/idle listening vs. transmitting)."""

    IDLE = auto()
    TRANSMITTING = auto()


class RadioError(RuntimeError):
    """Raised for invalid radio operations (e.g. transmitting while busy)."""


class Radio:
    """A node's transceiver.

    Parameters
    ----------
    sim:
        Simulation engine.
    channel:
        The wireless channel this radio is attached to.
    node_id:
        Identifier of the owning node; must be unique per channel.
    position:
        Optional 2-D position, required when links are derived from a
        propagation model.
    """

    def __init__(
        self,
        sim: "Simulator",
        channel: "WirelessChannel",
        node_id: int,
        position: Optional[Sequence[float]] = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.node_id = node_id
        self.position = tuple(position) if position is not None else None
        self.state = RadioState.IDLE
        self.frame_listener: Optional[FrameListener] = None
        self.tx_complete_listener: Optional[TxCompleteListener] = None
        self.corrupted_listener: Optional[FrameListener] = None
        self._current_frame: Optional[Frame] = None
        #: transmissions currently arriving at this radio — bound to the
        #: channel's book-keeping list by ``channel.register`` so a CCA
        #: needs no dict lookups.
        self._rx_arriving: list = []
        #: transmissions currently *sensed only* at this radio (inside
        #: carrier-sense range, beyond decode range) — also bound by
        #: ``channel.register``; always empty under the collision model.
        self._rx_sensing: list = []
        # statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_corrupted = 0
        self.cca_count = 0
        self.cca_busy_count = 0
        self.cca_sensed_only_count = 0
        self.tx_airtime = 0.0
        channel.register(self)

    # ------------------------------------------------------------------ api
    @property
    def transmitting(self) -> bool:
        return self.state is RadioState.TRANSMITTING

    def cca(self) -> bool:
        """Perform a clear channel assessment.

        Returns True if the channel is *clear* (idle) as seen by this radio.
        Mirrors :meth:`WirelessChannel.is_busy_for` over the radio's direct
        view of its arriving and sensed-only transmissions (no per-call
        dict lookups).  Energy the radio cannot decode still reads busy —
        ``cca_sensed_only_count`` counts the assessments where undecodable
        energy alone made the call.
        """
        self.cca_count += 1
        if self.state is RadioState.TRANSMITTING or self._rx_arriving:
            self.cca_busy_count += 1
            return False
        if self._rx_sensing:
            self.cca_busy_count += 1
            self.cca_sensed_only_count += 1
            return False
        return True

    def transmit(self, frame: Frame, duration: Optional[float] = None) -> float:
        """Transmit a frame; returns the frame's air time in seconds.

        The radio must be idle.  ``duration`` overrides the air time computed
        from the PHY parameters (used in tests).
        """
        if self.transmitting:
            raise RadioError(f"radio {self.node_id} is already transmitting")
        airtime = duration if duration is not None else self.channel.phy.frame_airtime(frame)
        self.state = RadioState.TRANSMITTING
        self._current_frame = frame
        self.frames_sent += 1
        self.tx_airtime += airtime
        if self.sim.tracing:
            # Guarded so the kwargs dict is never built on the untraced hot path.
            self.sim.record(
                "tx", node=self.node_id, dst=frame.dst, kind=frame.kind.name, airtime=airtime
            )
        self.channel.notify_transmit_start(self.node_id)
        self.channel.begin_transmission(self, frame, airtime)
        return airtime

    # ---------------------------------------------------------- channel API
    def deliver(self, frame: Frame) -> None:
        """Called by the channel when a frame arrives uncorrupted."""
        self.frames_received += 1
        if self.frame_listener is not None:
            self.frame_listener(frame)

    def notify_corrupted_frame(self, frame: Frame) -> None:
        """Called by the channel when a frame addressed at (or overheard by)
        this radio was destroyed by interference."""
        self.frames_corrupted += 1
        if self.corrupted_listener is not None:
            self.corrupted_listener(frame)

    def transmission_finished(self, frame: Frame) -> None:
        """Called by the channel when this radio's transmission ends."""
        self.state = RadioState.IDLE
        self._current_frame = None
        if self.tx_complete_listener is not None:
            self.tx_complete_listener(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Radio(id={self.node_id}, state={self.state.name})"
