"""The propagation-model registry: channel models resolvable by name.

Built-in entries (registered on import of :mod:`repro.phy.propagation`
would create a cycle, so they are registered here directly):

* ``unit-disk`` — :class:`repro.phy.propagation.UnitDiskPropagation`
* ``log-distance`` — :class:`repro.phy.propagation.LogDistancePathLoss`
* ``fading`` — :class:`repro.phy.propagation.ShadowingPropagation`
  (log-distance + per-link log-normal shadowing)

The scenario builder, the campaign layer and the CLI resolve propagation
models here, so ``--grid propagation=unit-disk,fading`` needs no per-model
code.  Adding a model is one decorated class::

    from repro.phy.propagation import PropagationModel
    from repro.phy.registry import register_propagation

    @register_propagation("my-channel")
    class MyChannel(PropagationModel):
        ...

Models that draw randomness must derive it deterministically from a ``seed``
constructor parameter (see :class:`ShadowingPropagation`); the scenario
builder forwards the scenario's master seed into that parameter so parallel
campaigns stay bit-identical.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple, Type, TypeVar

from repro.phy.propagation import (
    LogDistancePathLoss,
    PropagationModel,
    ShadowingPropagation,
    UnitDiskPropagation,
)
from repro.registry import Registry, RegistryError

P = TypeVar("P")


@dataclass(frozen=True)
class PropagationSpec:
    """One registered propagation model."""

    name: str
    model: Type[PropagationModel]
    description: str = ""

    def config_defaults(self) -> Dict[str, Any]:
        """Constructor parameter -> default value (required params map to ``...``)."""
        signature = inspect.signature(self.model.__init__)
        return {
            param.name: (param.default if param.default is not param.empty else ...)
            for param in signature.parameters.values()
            if param.name != "self"
        }

    def build(self, **params: Any) -> PropagationModel:
        return self.model(**params)

    def accepts_seed(self) -> bool:
        """True if the model's constructor takes a ``seed`` parameter."""
        return "seed" in inspect.signature(self.model.__init__).parameters


#: The process-wide propagation registry.
PROPAGATION_REGISTRY: Registry[PropagationSpec] = Registry("propagation model")


def register_propagation(
    name: str, description: str = ""
) -> Callable[[Type[P]], Type[P]]:
    """Class decorator registering a :class:`PropagationModel` by name."""

    def decorator(cls: Type[P]) -> Type[P]:
        PROPAGATION_REGISTRY.register(
            name, PropagationSpec(name, cls, description=description)
        )
        return cls

    return decorator


def propagation_kinds() -> Tuple[str, ...]:
    """Names of all registered propagation models (sorted, deterministic)."""
    return tuple(sorted(PROPAGATION_REGISTRY.names()))


def get_propagation_spec(name: str) -> PropagationSpec:
    """Resolve a registered propagation model by name."""
    return PROPAGATION_REGISTRY.get(name)


def create_propagation(name: str, **params: Any) -> PropagationModel:
    """Build a propagation model by registered name."""
    return get_propagation_spec(name).build(**params)


# Built-ins are registered here (not via decorators in propagation.py) to
# keep repro.phy.propagation import-cycle-free for repro.topology.
PROPAGATION_REGISTRY.register(
    "unit-disk",
    PropagationSpec("unit-disk", UnitDiskPropagation, "binary disk connectivity"),
)
PROPAGATION_REGISTRY.register(
    "log-distance",
    PropagationSpec(
        "log-distance", LogDistancePathLoss, "log-distance path loss + sensitivity"
    ),
)
PROPAGATION_REGISTRY.register(
    "fading",
    PropagationSpec(
        "fading",
        ShadowingPropagation,
        "log-distance + per-link log-normal shadowing",
    ),
)


__all__ = [
    "PROPAGATION_REGISTRY",
    "PropagationSpec",
    "RegistryError",
    "create_propagation",
    "get_propagation_spec",
    "propagation_kinds",
    "register_propagation",
]
