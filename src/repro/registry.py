"""A small named-component registry with lazy built-in loading.

The MAC-protocol and propagation-model registries (and the topology table
of the scenario builder) are all instances of :class:`Registry`: components
register themselves under a name via a decorator at class-definition time,
and callers resolve them by name.  Because registration happens as a side
effect of importing the defining module, every registry carries the list of
modules providing its built-in entries and imports them on first use — so
``mac_registry.get("qma")`` works without the caller having to import
:mod:`repro.core.mac` first, and third-party plugins can still register at
any time simply by importing :mod:`repro.mac.registry` and decorating their
class.
"""

from __future__ import annotations

import importlib
from typing import Dict, Generic, Iterator, Sequence, Tuple, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """Raised when a name cannot be resolved (or is registered twice)."""


class Registry(Generic[T]):
    """Ordered mapping of names to registered entries.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered ("MAC protocol",
        "propagation model", ...), used in error messages.
    builtin_modules:
        Modules whose import registers the built-in entries; imported
        lazily on first lookup/listing.
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._loaded = False
        self._entries: Dict[str, T] = {}

    # ---------------------------------------------------------------- loading
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True  # set first: the imports below re-enter register()
        for module in self._builtin_modules:
            importlib.import_module(module)

    # ------------------------------------------------------------------- api
    def register(self, name: str, entry: T, replace: bool = False) -> T:
        """Register ``entry`` under ``name``; names are unique unless ``replace``."""
        if not name:
            raise ValueError(f"{self.kind} name must be non-empty")
        if not replace and name in self._entries:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> T:
        """Resolve a name; raises :class:`RegistryError` listing known names."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered names in registration order."""
        self._ensure_loaded()
        return tuple(self._entries)

    def items(self) -> Tuple[Tuple[str, T], ...]:
        self._ensure_loaded()
        return tuple(self._entries.items())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        self._ensure_loaded()
        return iter(tuple(self._entries))

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry({self.kind!r}, entries={list(self._entries)})"
