"""Declarative scenario assembly on top of the component registries.

A :class:`~repro.scenario.config.ScenarioConfig` names topology,
propagation model, MAC and link quality as plain data; the
:class:`~repro.scenario.builder.ScenarioBuilder` resolves the names through
the MAC/propagation/topology registries and assembles the live simulation
objects.  The experiment runners in :mod:`repro.experiments` are thin
layers over this pipeline: they declare a config, attach figure-specific
traffic, run, and collect metrics.
"""

from repro.scenario.artifacts import (
    ARTIFACT_CACHE,
    ArtifactCache,
    CarrierSenseSkeleton,
    ScenarioArtifacts,
    artifact_cache_stats,
    carrier_sense_skeleton,
    configure_artifact_cache,
    link_table_skeleton,
)
from repro.scenario.builder import (
    BuiltDsmeScenario,
    BuiltScenario,
    ScenarioBuilder,
    TOPOLOGY_REGISTRY,
    build_scenario,
    topology_accepts_node_count,
    topology_accepts_seed,
    topology_kinds,
)
from repro.scenario.config import ScenarioConfig

__all__ = [
    "ARTIFACT_CACHE",
    "ArtifactCache",
    "BuiltDsmeScenario",
    "CarrierSenseSkeleton",
    "BuiltScenario",
    "ScenarioArtifacts",
    "ScenarioBuilder",
    "ScenarioConfig",
    "TOPOLOGY_REGISTRY",
    "artifact_cache_stats",
    "build_scenario",
    "carrier_sense_skeleton",
    "configure_artifact_cache",
    "link_table_skeleton",
    "topology_accepts_node_count",
    "topology_accepts_seed",
    "topology_kinds",
]
