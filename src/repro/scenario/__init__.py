"""Declarative scenario assembly on top of the component registries.

A :class:`~repro.scenario.config.ScenarioConfig` names topology,
propagation model, MAC and link quality as plain data; the
:class:`~repro.scenario.builder.ScenarioBuilder` resolves the names through
the MAC/propagation/topology registries and assembles the live simulation
objects.  The experiment runners in :mod:`repro.experiments` are thin
layers over this pipeline: they declare a config, attach figure-specific
traffic, run, and collect metrics.
"""

from repro.scenario.builder import (
    BuiltDsmeScenario,
    BuiltScenario,
    ScenarioBuilder,
    TOPOLOGY_REGISTRY,
    build_scenario,
    topology_kinds,
)
from repro.scenario.config import ScenarioConfig

__all__ = [
    "BuiltDsmeScenario",
    "BuiltScenario",
    "ScenarioBuilder",
    "ScenarioConfig",
    "TOPOLOGY_REGISTRY",
    "build_scenario",
    "topology_kinds",
]
