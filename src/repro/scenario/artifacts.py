"""Configuration-keyed construction artifacts and their per-process cache.

Building a scenario splits into two very different kinds of work:

* **artifacts** — the topology (positions, O(n²) propagation-derived links,
  routing tree) and the channel's link-table skeleton (per-sender ordered
  ``(receiver, packet-error-rate)`` rows).  These depend only on the
  construction-relevant half of a :class:`~repro.scenario.config.ScenarioConfig`
  (its :meth:`~repro.scenario.config.ScenarioConfig.cache_key`), not on the
  master seed, the MAC kind or tracing — so every run of a sweep that
  shares the key can share one artifact bundle;
* **per-run assembly** — the :class:`~repro.sim.engine.Simulator`, radios,
  MAC instances, nodes and RNG streams, which are stateful and rebuilt for
  every run.

:class:`ArtifactCache` is a small LRU keyed by ``cache_key()``.  One
process-wide instance (:data:`ARTIFACT_CACHE`) backs the scenario builder:
repeat builds of the same configuration reuse the cached bundle, and each
campaign worker process keeps its own copy (the cache is a fork-safe module
global), so a multi-seed sweep pays construction once per worker instead of
once per run.  The campaign runner configures it through the pool
initializer; ``--no-build-cache`` (or ``CampaignRunner(build_cache=False)``)
disables it.

Staleness: artifacts snapshot ``topology.version`` at build time.  Builder-
produced cached artifacts freeze their topology, so mutation raises; for
explicitly constructed (unfrozen) artifact bundles, a topology mutated
between runs is detected via the version counter and the stale link-table
skeleton is discarded — the next run re-derives delivery rows from the live
topology state instead of serving stale rows (see
:meth:`ScenarioArtifacts.current_link_table`).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, Optional, Tuple, TYPE_CHECKING

from repro.topology.base import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking
    from repro.phy.propagation import PropagationModel

#: Per-sender ordered delivery rows:
#: sender id -> ((receiver id, rx power dBm, PER), ...).  The power column
#: feeds the SINR interference model; collision-model runs carry 0.0.
LinkTableSkeleton = Dict[int, Tuple[Tuple[int, float, float], ...]]

#: Per-sender ordered carrier-sense-only rows:
#: sender id -> ((receiver id, rx power dBm), ...).  Receivers that sense a
#: sender's energy (CCA busy, interference) without being able to decode it.
CarrierSenseSkeleton = Dict[int, Tuple[Tuple[int, float], ...]]

#: Default LRU capacity: small on purpose — a sweep rarely interleaves more
#: than a handful of construction configurations per worker.
DEFAULT_CACHE_SIZE = 8


def link_table_skeleton(
    topology: Topology,
    link_error_rate: float,
    model: Optional["PropagationModel"] = None,
) -> LinkTableSkeleton:
    """Precompute the channel's per-sender ``(receiver, power, PER)`` rows.

    The receiver order of each row reproduces exactly the neighbour-set
    iteration order a :class:`~repro.phy.channel.WirelessChannel` arrives at
    when :class:`~repro.net.network.Network` wires the same topology: sets
    are created in node-id order and filled in ``topology.links`` iteration
    order, the same insertion sequence the channel's ``connect`` calls
    perform — so deliveries (and therefore per-link error draws, which
    consume the channel RNG in delivery order) are bit-identical whether
    the skeleton or the channel's own lazy build produced the table.

    ``model`` (the settled propagation model the topology was derived from)
    supplies each directed link's received power; without one the power
    column is 0.0 — correct for the collision model, which never reads it.
    """
    neighbours: Dict[int, set] = {node_id: set() for node_id in topology.node_ids}
    for link in topology.links:
        a, b = tuple(link)
        neighbours[a].add(b)
        neighbours[b].add(a)
    per = float(link_error_rate)
    if model is None:
        return {
            sender: tuple((receiver, 0.0, per) for receiver in neighbours[sender])
            for sender in topology.node_ids
        }
    positions = topology.positions
    return {
        sender: tuple(
            (
                receiver,
                model.received_power_dbm(positions[sender], positions[receiver]),
                per,
            )
            for receiver in neighbours[sender]
        )
        for sender in topology.node_ids
    }


def carrier_sense_skeleton(
    topology: Topology, model: "PropagationModel"
) -> CarrierSenseSkeleton:
    """Precompute per-sender carrier-sense-only rows for the SINR model.

    A receiver is sensed-only for a sender when it lies inside the model's
    carrier-sense range but shares no communication link with it in the
    topology.  Pairs are enumerated in node-id order — the same ordered
    iteration :meth:`Network` uses when wiring sensed links live, so the
    channel's ``_cs_neighbours`` insertion order is identical either way.
    """
    linked: Dict[int, set] = {node_id: set() for node_id in topology.node_ids}
    for link in topology.links:
        a, b = tuple(link)
        linked[a].add(b)
        linked[b].add(a)
    positions = topology.positions
    ids = list(topology.node_ids)
    sensed: Dict[int, list] = {node_id: [] for node_id in ids}
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            if b in linked[a]:
                continue
            pos_a, pos_b = positions[a], positions[b]
            if model.in_carrier_sense_range(pos_a, pos_b):
                sensed[a].append((b, model.received_power_dbm(pos_a, pos_b)))
            if model.in_carrier_sense_range(pos_b, pos_a):
                sensed[b].append((a, model.received_power_dbm(pos_b, pos_a)))
    return {sender: tuple(rows) for sender, rows in sensed.items()}


@dataclass(frozen=True)
class ScenarioArtifacts:
    """The immutable, run-independent part of one scenario configuration.

    ``key`` is the producing config's ``cache_key()`` (None when the config
    is uncacheable); ``topology_version`` snapshots ``topology.version`` at
    build time so stale bundles are detected when an unfrozen shared
    topology is mutated between runs.
    """

    key: Optional[Hashable]
    topology: Topology
    topology_version: int
    link_table: LinkTableSkeleton
    #: Registered topology name of the producing config; lets the builder
    #: reject cross-config bundle reuse even when ``key`` is None
    #: (uncacheable configs).  None for hand-assembled bundles, which opt
    #: out of validation entirely.
    topology_kind: Optional[str] = None
    #: Carrier-sense-only rows for SINR runs; None for collision-model
    #: bundles (whose cache keys can never collide with SINR ones — the
    #: interference model is part of the key).
    cs_table: Optional[CarrierSenseSkeleton] = None

    def is_current(self) -> bool:
        """True while the topology still matches the snapshotted artifacts."""
        return self.topology.version == self.topology_version

    def current_link_table(self) -> Optional[LinkTableSkeleton]:
        """The skeleton, or None when the topology was mutated after build.

        The None fallback is the cross-run analogue of the channel's
        mutation auto-demote: a stale skeleton is never served, the channel
        falls back to deriving delivery rows from the live topology wiring.
        """
        return self.link_table if self.is_current() else None

    def current_cs_table(self) -> Optional[CarrierSenseSkeleton]:
        """The carrier-sense skeleton, guarded by the same staleness check."""
        return self.cs_table if self.is_current() else None


@dataclass
class ArtifactCache:
    """A small LRU of :class:`ScenarioArtifacts`, keyed by ``cache_key()``.

    ``enabled=False`` turns :meth:`get`/:meth:`put` into no-ops without
    dropping the stored entries, so a temporarily disabled cache (e.g. one
    ``build_cache=False`` campaign) resumes with its working set intact.
    Hit/miss/eviction counters feed the benchmarks and tests.
    """

    maxsize: int = DEFAULT_CACHE_SIZE
    enabled: bool = True
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    _entries: "OrderedDict[Hashable, ScenarioArtifacts]" = field(
        default_factory=OrderedDict, repr=False
    )

    def get(self, key: Optional[Hashable]) -> Optional[ScenarioArtifacts]:
        """The cached bundle for ``key``, refreshing its LRU position.

        Stale bundles (topology mutated since build) are dropped and
        reported as misses, so callers always rebuild from a clean slate.
        """
        if not self.enabled or key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_current():
            del self._entries[key]
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Optional[Hashable], artifacts: ScenarioArtifacts) -> None:
        """Store a bundle, evicting least-recently-used entries beyond maxsize."""
        if not self.enabled or key is None or self.maxsize < 1:
            return
        self._entries[key] = artifacts
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Counters plus current size, for benchmarks and diagnostics."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def configure(
        self, enabled: Optional[bool] = None, maxsize: Optional[int] = None
    ) -> None:
        """Reconfigure in place (campaign workers call this at pool init)."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if maxsize is not None:
            if maxsize < 1:
                raise ValueError(f"cache maxsize must be positive, got {maxsize}")
            self.maxsize = maxsize
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    @contextmanager
    def override(
        self, enabled: Optional[bool] = None, maxsize: Optional[int] = None
    ) -> Iterator["ArtifactCache"]:
        """Temporarily reconfigure; the previous settings are restored on exit.

        Entries evicted by a temporarily smaller ``maxsize`` stay evicted
        (restoring them would misrepresent the LRU history).
        """
        previous = (self.enabled, self.maxsize)
        try:
            self.configure(enabled=enabled, maxsize=maxsize)
            yield self
        finally:
            self.enabled, self.maxsize = previous


#: The process-wide construction cache used by :class:`ScenarioBuilder`.
#: Campaign workers reconfigure it through the pool initializer; each
#: forked worker holds its own copy.
ARTIFACT_CACHE = ArtifactCache()


def configure_artifact_cache(
    enabled: Optional[bool] = None, maxsize: Optional[int] = None
) -> None:
    """Module-level convenience over :meth:`ArtifactCache.configure`."""
    ARTIFACT_CACHE.configure(enabled=enabled, maxsize=maxsize)


def artifact_cache_stats() -> Dict[str, int]:
    """Counters of the process-wide cache (see :meth:`ArtifactCache.stats`)."""
    return ARTIFACT_CACHE.stats()
