"""Assemble simulations from declarative :class:`ScenarioConfig` specs.

The builder is the single place where topology + propagation + MAC +
link-quality wiring happens; the experiment runners only declare *what* to
build and attach their figure-specific traffic and instrumentation on top.
Every axis is resolved through a registry, so new MAC protocols,
propagation models and topologies become available to all experiments, the
campaign layer and the CLI without touching any of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.mac.registry import get_mac_spec
from repro.net.network import MacFactory, Network
from repro.phy.registry import get_propagation_spec
from repro.registry import Registry
from repro.scenario.config import ScenarioConfig
from repro.sim.engine import Simulator
from repro.topology.base import Topology
from repro.topology.concentric import concentric_topology
from repro.topology.hidden_node import hidden_node_topology
from repro.topology.iotlab import iot_lab_star_topology, iot_lab_tree_topology
from repro.traffic.generators import (
    FluctuatingPoissonTraffic,
    PeriodicTraffic,
    PoissonTraffic,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsme.network import DsmeNetwork
    from repro.dsme.superframe import SuperframeConfig

#: Topology factories resolvable by name (name -> callable(**params) -> Topology).
TOPOLOGY_REGISTRY: Registry = Registry("topology")
TOPOLOGY_REGISTRY.register("hidden-node", hidden_node_topology)
TOPOLOGY_REGISTRY.register("iotlab-tree", iot_lab_tree_topology)
TOPOLOGY_REGISTRY.register("iotlab-star", iot_lab_star_topology)
TOPOLOGY_REGISTRY.register("concentric", concentric_topology)


def topology_kinds() -> Tuple[str, ...]:
    """Names of all registered topologies (sorted, deterministic)."""
    return tuple(sorted(TOPOLOGY_REGISTRY.names()))


@dataclass
class BuiltScenario:
    """The live objects assembled from one :class:`ScenarioConfig`.

    Carries small traffic helpers so that runners attach their workload
    without repeating the generator wiring; helpers preserve the exact
    construction/scheduling order the runners historically used (event
    ties are broken by scheduling order, so order is part of determinism).
    """

    config: ScenarioConfig
    sim: Simulator
    topology: Topology
    network: Network

    # ------------------------------------------------------------- traffic
    def attach_management(
        self,
        node_id: int,
        period: float,
        start_time: float,
        jitter: float,
        rng_name: str,
    ) -> PeriodicTraffic:
        """Attach low-rate periodic management traffic to a node.

        The generator starts with :meth:`Network.start` (it is attached to
        the node); stop it with ``sim.schedule_at(t, generator.stop)``.
        """
        node = self.network.node(node_id)
        generator = PeriodicTraffic(
            self.sim,
            node.generate_packet,
            period=period,
            start_time=start_time,
            jitter=jitter,
            rng_name=rng_name,
        )
        node.attach_traffic(generator)
        return generator

    def poisson_source(
        self,
        node_id: int,
        rate: float,
        start_time: float,
        rng_name: str,
        max_packets: Optional[int] = None,
        start_at: Optional[float] = None,
    ) -> PoissonTraffic:
        """Create a Poisson data source; started at ``start_at`` when given."""
        node = self.network.node(node_id)
        generator = PoissonTraffic(
            self.sim,
            node.generate_packet,
            rate=rate,
            start_time=start_time,
            max_packets=max_packets,
            rng_name=rng_name,
        )
        if start_at is not None:
            self.sim.schedule_at(start_at, generator.start)
        return generator

    def fluctuating_source(
        self,
        node_id: int,
        phases: Sequence[Tuple[float, float]],
        start_time: float,
        rng_name: str,
    ) -> FluctuatingPoissonTraffic:
        """Create (unattached) fluctuating Poisson traffic for a node."""
        node = self.network.node(node_id)
        return FluctuatingPoissonTraffic(
            self.sim,
            node.generate_packet,
            phases=list(phases),
            start_time=start_time,
            rng_name=rng_name,
        )


@dataclass
class BuiltDsmeScenario:
    """A DSME scenario: the contention MACs live inside the CAP."""

    config: ScenarioConfig
    sim: Simulator
    topology: Topology
    dsme: "DsmeNetwork"

    @property
    def network(self) -> Network:
        return self.dsme.network


class ScenarioBuilder:
    """Resolve a :class:`ScenarioConfig` into live simulation objects."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config

    #: Connectivity redraw budget for seeded stochastic propagation models.
    MAX_CONNECTIVITY_DRAWS = 16

    #: Stride between redraw seeds, large so that scenario seeds k and k+1
    #: never share a propagation draw.
    _RESEED_STRIDE = 1_000_003

    # ----------------------------------------------------------- resolution
    def make_simulator(self) -> Simulator:
        return Simulator(
            seed=self.config.seed,
            trace=self.config.trace,
            trace_limit=self.config.trace_limit,
        )

    def make_topology(self) -> Topology:
        """Build the topology; with a propagation model, re-derive its links.

        Stochastic models (a ``seed`` parameter the builder injects itself)
        may disconnect the topology from its sink; following the usual
        topology-construction procedure the links are then redrawn with a
        deterministically derived seed, up to :data:`MAX_CONNECTIVITY_DRAWS`
        times — a pure function of the scenario seed, so parallel campaigns
        stay bit-identical.  A seed pinned via ``propagation_params`` is
        never resampled: a disconnecting pinned draw raises.
        """
        factory = TOPOLOGY_REGISTRY.get(self.config.topology)
        topology = factory(**self.config.topology_params)
        if self.config.propagation is None:
            return topology

        spec = get_propagation_spec(self.config.propagation)
        params = dict(self.config.propagation_params)
        resample = spec.accepts_seed() and "seed" not in params
        draws = self.MAX_CONNECTIVITY_DRAWS if resample else 1
        last_error: Optional[Exception] = None
        for draw in range(draws):
            if resample:
                params["seed"] = self.config.seed + draw * self._RESEED_STRIDE
            topology.derive_links(spec.build(**params))
            if topology.sink is None:
                return topology
            try:
                topology.build_routing_tree(topology.sink)
                return topology
            except ValueError as exc:
                last_error = exc
        raise ValueError(
            f"propagation model {self.config.propagation!r} left topology "
            f"{self.config.topology!r} disconnected after {draws} draw(s): {last_error}"
        )

    def make_propagation(self):
        """Build the propagation model of the *initial* draw.

        The scenario seed is injected when the model accepts one and
        ``propagation_params`` does not pin it.  Note that
        :meth:`make_topology` may settle on a later redraw when the first
        draw disconnects the topology — derive links through
        :meth:`make_topology`, not through this model, when connectivity
        matters.
        """
        if self.config.propagation is None:
            raise ValueError("scenario config has no propagation model set")
        spec = get_propagation_spec(self.config.propagation)
        params = dict(self.config.propagation_params)
        if spec.accepts_seed():
            params.setdefault("seed", self.config.seed)
        return spec.build(**params)

    def make_mac_factory(self) -> MacFactory:
        """A :data:`MacFactory` resolving the configured MAC through the registry.

        ``mac_params`` may carry per-protocol constructor knobs; a value
        under the key ``exploration`` is treated as a zero-argument factory
        and called once per node (exploration strategies are stateful and
        must not be shared between nodes).
        """
        spec = get_mac_spec(self.config.mac)
        mac_config = self.config.mac_config
        mac_params = dict(self.config.mac_params)
        exploration_factory = mac_params.pop("exploration", None)

        def factory(sim: Simulator, radio) -> Any:
            kwargs = dict(mac_params)
            if exploration_factory is not None:
                kwargs["exploration"] = exploration_factory()
            return spec.build(sim, radio, config=mac_config, **kwargs)

        return factory

    # ------------------------------------------------------------- assembly
    def build(self) -> BuiltScenario:
        """Assemble simulator, topology, MACs and network."""
        sim = self.make_simulator()
        topology = self.make_topology()
        network = Network(
            sim,
            topology,
            self.make_mac_factory(),
            link_error_rate=self.config.link_error_rate,
            static_links=self.config.static_links,
        )
        return BuiltScenario(config=self.config, sim=sim, topology=topology, network=network)

    def build_dsme(
        self,
        superframe_config: Optional["SuperframeConfig"] = None,
        route_discovery_period: Optional[float] = 2.0,
    ) -> BuiltDsmeScenario:
        """Assemble a DSME network whose CAP uses the configured MAC.

        ``mac_config`` is forwarded as the CAP MAC's config; the DSME layer
        owns the activity gate confining contention traffic to the CAP.
        """
        from repro.dsme.network import DsmeNetwork

        sim = self.make_simulator()
        topology = self.make_topology()
        dsme = DsmeNetwork(
            sim,
            topology,
            cap_mac=self.config.mac,
            config=superframe_config,
            cap_mac_config=self.config.mac_config,
            route_discovery_period=route_discovery_period,
        )
        return BuiltDsmeScenario(config=self.config, sim=sim, topology=topology, dsme=dsme)


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Convenience wrapper: ``ScenarioBuilder(config).build()``."""
    return ScenarioBuilder(config).build()
