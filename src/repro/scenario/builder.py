"""Assemble simulations from declarative :class:`ScenarioConfig` specs.

The builder is the single place where topology + propagation + MAC +
link-quality wiring happens; the experiment runners only declare *what* to
build and attach their figure-specific traffic and instrumentation on top.
Every axis is resolved through a registry, so new MAC protocols,
propagation models and topologies become available to all experiments, the
campaign layer and the CLI without touching any of them.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.mac.registry import get_mac_spec
from repro.net.network import MacFactory, Network
from repro.phy.registry import get_propagation_spec
from repro.registry import Registry
from repro.scenario.artifacts import (
    ARTIFACT_CACHE,
    ScenarioArtifacts,
    carrier_sense_skeleton,
    link_table_skeleton,
)
from repro.scenario.config import ScenarioConfig
from repro.sim.engine import Simulator
from repro.topology.base import Topology
from repro.topology.concentric import concentric_topology
from repro.topology.hidden_node import hidden_node_topology
from repro.topology.iotlab import iot_lab_star_topology, iot_lab_tree_topology
from repro.topology.random_topo import random_topology
from repro.topology.sinr_hidden_node import sinr_hidden_node_topology
from repro.traffic.generators import (
    FluctuatingPoissonTraffic,
    PeriodicTraffic,
    PoissonTraffic,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsme.network import DsmeNetwork
    from repro.dsme.superframe import SuperframeConfig

#: Topology factories resolvable by name (name -> callable(**params) -> Topology).
TOPOLOGY_REGISTRY: Registry = Registry("topology")
TOPOLOGY_REGISTRY.register("hidden-node", hidden_node_topology)
TOPOLOGY_REGISTRY.register("iotlab-tree", iot_lab_tree_topology)
TOPOLOGY_REGISTRY.register("iotlab-star", iot_lab_star_topology)
TOPOLOGY_REGISTRY.register("concentric", concentric_topology)
TOPOLOGY_REGISTRY.register("random", random_topology)
TOPOLOGY_REGISTRY.register("sinr-hidden-node", sinr_hidden_node_topology)


def topology_kinds() -> Tuple[str, ...]:
    """Names of all registered topologies (sorted, deterministic)."""
    return tuple(sorted(TOPOLOGY_REGISTRY.names()))


@lru_cache(maxsize=None)
def _factory_parameters(factory: Callable[..., Any]) -> Tuple[str, ...]:
    """Keyword parameter names of a topology factory (signature-cached)."""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins without signature
        return ()
    return tuple(signature.parameters)


def topology_accepts_seed(name: str) -> bool:
    """Whether the named topology factory is seeded (placement RNG input).

    Seeded factories (e.g. ``random``) receive the scenario seed from the
    builder unless ``topology_params`` pins one — making the placement seed
    part of the configuration and hence of the construction cache key.
    """
    return "seed" in _factory_parameters(TOPOLOGY_REGISTRY.get(name))


def topology_accepts_node_count(name: str) -> bool:
    """Whether the named topology factory is sized by a ``num_nodes`` count
    (e.g. ``random``), as opposed to fixed-size or ring-sized factories."""
    return "num_nodes" in _factory_parameters(TOPOLOGY_REGISTRY.get(name))


@dataclass
class BuiltScenario:
    """The live objects assembled from one :class:`ScenarioConfig`.

    Carries small traffic helpers so that runners attach their workload
    without repeating the generator wiring; helpers preserve the exact
    construction/scheduling order the runners historically used (event
    ties are broken by scheduling order, so order is part of determinism).
    """

    config: ScenarioConfig
    sim: Simulator
    topology: Topology
    network: Network

    # ------------------------------------------------------------- traffic
    def attach_management(
        self,
        node_id: int,
        period: float,
        start_time: float,
        jitter: float,
        rng_name: str,
    ) -> PeriodicTraffic:
        """Attach low-rate periodic management traffic to a node.

        The generator starts with :meth:`Network.start` (it is attached to
        the node); stop it with ``sim.schedule_at(t, generator.stop)``.
        """
        node = self.network.node(node_id)
        generator = PeriodicTraffic(
            self.sim,
            node.generate_packet,
            period=period,
            start_time=start_time,
            jitter=jitter,
            rng_name=rng_name,
        )
        node.attach_traffic(generator)
        return generator

    def poisson_source(
        self,
        node_id: int,
        rate: float,
        start_time: float,
        rng_name: str,
        max_packets: Optional[int] = None,
        start_at: Optional[float] = None,
    ) -> PoissonTraffic:
        """Create a Poisson data source; started at ``start_at`` when given."""
        node = self.network.node(node_id)
        generator = PoissonTraffic(
            self.sim,
            node.generate_packet,
            rate=rate,
            start_time=start_time,
            max_packets=max_packets,
            rng_name=rng_name,
        )
        if start_at is not None:
            self.sim.schedule_at(start_at, generator.start)
        return generator

    def fluctuating_source(
        self,
        node_id: int,
        phases: Sequence[Tuple[float, float]],
        start_time: float,
        rng_name: str,
    ) -> FluctuatingPoissonTraffic:
        """Create (unattached) fluctuating Poisson traffic for a node."""
        node = self.network.node(node_id)
        return FluctuatingPoissonTraffic(
            self.sim,
            node.generate_packet,
            phases=list(phases),
            start_time=start_time,
            rng_name=rng_name,
        )


@dataclass
class BuiltDsmeScenario:
    """A DSME scenario: the contention MACs live inside the CAP."""

    config: ScenarioConfig
    sim: Simulator
    topology: Topology
    dsme: "DsmeNetwork"

    @property
    def network(self) -> Network:
        return self.dsme.network


class ScenarioBuilder:
    """Resolve a :class:`ScenarioConfig` into live simulation objects."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config

    #: Connectivity redraw budget for seeded stochastic propagation models.
    MAX_CONNECTIVITY_DRAWS = 16

    #: Stride between redraw seeds, large so that scenario seeds k and k+1
    #: never share a propagation draw.
    _RESEED_STRIDE = 1_000_003

    # ----------------------------------------------------------- resolution
    def make_simulator(self) -> Simulator:
        return Simulator(
            seed=self.config.seed,
            trace=self.config.trace,
            trace_limit=self.config.trace_limit,
        )

    def make_topology(self) -> Topology:
        """Build the topology; with a propagation model, re-derive its links.

        See :meth:`make_topology_and_model`; this accessor discards the
        settled model for callers that only need connectivity.
        """
        return self.make_topology_and_model()[0]

    def make_topology_and_model(self) -> Tuple[Topology, Optional[Any]]:
        """Build the topology plus the propagation model it settled on.

        Seeded topology factories (a ``seed`` keyword, e.g. ``random``
        placement) receive the scenario seed unless ``topology_params``
        pins one, so placements are deterministic per scenario seed.

        Stochastic models (a ``seed`` parameter the builder injects itself)
        may disconnect the topology from its sink; following the usual
        topology-construction procedure the links are then redrawn with a
        deterministically derived seed, up to :data:`MAX_CONNECTIVITY_DRAWS`
        times — a pure function of the scenario seed, so parallel campaigns
        stay bit-identical.  A seed pinned via ``propagation_params`` is
        never resampled: a disconnecting pinned draw raises.

        Returns the topology together with the model instance of the draw
        that settled the links (None without a propagation model) — the
        SINR artifacts derive per-link received powers from exactly this
        instance, never from a fresh first-draw model whose shadowing seed
        may differ after redraws.
        """
        factory = TOPOLOGY_REGISTRY.get(self.config.topology)
        topology_params = dict(self.config.topology_params)
        if "seed" not in topology_params and "seed" in _factory_parameters(factory):
            topology_params["seed"] = self.config.seed
        topology = factory(**topology_params)
        if self.config.propagation is None:
            return topology, None

        spec = get_propagation_spec(self.config.propagation)
        params = dict(self.config.propagation_params)
        resample = spec.accepts_seed() and "seed" not in params
        draws = self.MAX_CONNECTIVITY_DRAWS if resample else 1
        last_error: Optional[Exception] = None
        for draw in range(draws):
            if resample:
                params["seed"] = self.config.seed + draw * self._RESEED_STRIDE
            model = spec.build(**params)
            topology.derive_links(model)
            if topology.sink is None:
                return topology, model
            try:
                topology.build_routing_tree(topology.sink)
                return topology, model
            except ValueError as exc:
                last_error = exc
        raise ValueError(
            f"propagation model {self.config.propagation!r} left topology "
            f"{self.config.topology!r} disconnected after {draws} draw(s): {last_error}"
        )

    def make_propagation(self):
        """Build the propagation model of the *initial* draw.

        The scenario seed is injected when the model accepts one and
        ``propagation_params`` does not pin it.  Note that
        :meth:`make_topology` may settle on a later redraw when the first
        draw disconnects the topology — derive links through
        :meth:`make_topology`, not through this model, when connectivity
        matters.
        """
        if self.config.propagation is None:
            raise ValueError("scenario config has no propagation model set")
        spec = get_propagation_spec(self.config.propagation)
        params = dict(self.config.propagation_params)
        if spec.accepts_seed():
            params.setdefault("seed", self.config.seed)
        return spec.build(**params)

    def make_mac_factory(self) -> MacFactory:
        """A :data:`MacFactory` resolving the configured MAC through the registry.

        ``mac_params`` may carry per-protocol constructor knobs; a value
        under the key ``exploration`` is treated as a zero-argument factory
        and called once per node (exploration strategies are stateful and
        must not be shared between nodes).
        """
        spec = get_mac_spec(self.config.mac)
        mac_config = self.config.mac_config
        mac_params = dict(self.config.mac_params)
        exploration_factory = mac_params.pop("exploration", None)

        def factory(sim: Simulator, radio) -> Any:
            kwargs = dict(mac_params)
            if exploration_factory is not None:
                kwargs["exploration"] = exploration_factory()
            return spec.build(sim, radio, config=mac_config, **kwargs)

        return factory

    # ------------------------------------------------------------- artifacts
    def build_artifacts(self, freeze: bool = True) -> ScenarioArtifacts:
        """Build the run-independent construction artifacts of this config.

        The expensive half of assembly: topology factory, O(n²)
        propagation-derived links (with connectivity redraws), routing tree
        and the channel's link-table skeleton.  With ``freeze`` (the
        default for cached bundles) the topology is sealed so sharing it
        across runs is safe; pass ``freeze=False`` to keep it mutable —
        the version counter then guards consumers against stale skeletons.
        """
        topology, model = self.make_topology_and_model()
        sinr = self.config.interference == "sinr"
        # The power column (and the carrier-sense rows) are only derived for
        # SINR runs — collision-model bundles stay exactly as cheap (and as
        # bit-identical) as before the column existed.
        skeleton = link_table_skeleton(
            topology, self.config.link_error_rate, model=model if sinr else None
        )
        cs_table = carrier_sense_skeleton(topology, model) if sinr else None
        if freeze:
            topology.freeze()
        return ScenarioArtifacts(
            key=self.config.cache_key(),
            topology=topology,
            topology_version=topology.version,
            link_table=skeleton,
            topology_kind=self.config.topology,
            cs_table=cs_table,
        )

    def resolve_artifacts(
        self, artifacts: Optional[ScenarioArtifacts] = None
    ) -> ScenarioArtifacts:
        """The artifact bundle a build should consume.

        Explicit ``artifacts`` are validated against this config's cache
        key (a mismatch means they were built for a different scenario);
        for uncacheable configs (key None) the bundle's recorded topology
        kind still guards against cross-config reuse.  Hand-assembled
        bundles with neither field opt out of validation — the caller
        vouches for them.  Otherwise the process-wide
        :data:`ARTIFACT_CACHE` is consulted when enabled; misses build
        (and cache) a frozen bundle, uncacheable configs build a fresh
        mutable bundle per run.
        """
        if artifacts is not None:
            key = self.config.cache_key()
            if artifacts.key is not None and key is not None and artifacts.key != key:
                raise ValueError(
                    "artifact bundle was built for a different scenario "
                    "configuration (cache keys differ)"
                )
            if (
                artifacts.topology_kind is not None
                and artifacts.topology_kind != self.config.topology
            ):
                raise ValueError(
                    f"artifact bundle was built for topology "
                    f"{artifacts.topology_kind!r}, not {self.config.topology!r}"
                )
            return artifacts
        key = self.config.cache_key() if ARTIFACT_CACHE.enabled else None
        if key is None:
            return self.build_artifacts(freeze=False)
        cached = ARTIFACT_CACHE.get(key)
        if cached is not None:
            return cached
        artifacts = self.build_artifacts(freeze=True)
        ARTIFACT_CACHE.put(key, artifacts)
        return artifacts

    # ------------------------------------------------------------- assembly
    def build(self, artifacts: Optional[ScenarioArtifacts] = None) -> BuiltScenario:
        """Assemble simulator, topology, MACs and network.

        Per-run assembly consumes an artifact bundle (cached, explicit via
        ``artifacts``, or freshly built) and only creates the stateful
        objects: Simulator, radios, MAC instances, nodes and RNG streams.
        Results are bit-identical with and without the cache.
        """
        artifacts = self.resolve_artifacts(artifacts)
        sim = self.make_simulator()
        topology = artifacts.topology
        network = Network(
            sim,
            topology,
            self.make_mac_factory(),
            link_error_rate=self.config.link_error_rate,
            static_links=self.config.static_links,
            interference=self.config.interference,
            sinr_threshold_db=self.config.sinr_threshold_db,
            prebuilt_links=artifacts.current_link_table(),
            prebuilt_cs=artifacts.current_cs_table(),
        )
        return BuiltScenario(config=self.config, sim=sim, topology=topology, network=network)

    def build_dsme(
        self,
        superframe_config: Optional["SuperframeConfig"] = None,
        route_discovery_period: Optional[float] = 2.0,
        artifacts: Optional[ScenarioArtifacts] = None,
    ) -> BuiltDsmeScenario:
        """Assemble a DSME network whose CAP uses the configured MAC.

        ``mac_config`` is forwarded as the CAP MAC's config; the DSME layer
        owns the activity gate confining contention traffic to the CAP.
        Construction artifacts are cached/consumed exactly as in
        :meth:`build`.
        """
        from repro.dsme.network import DsmeNetwork

        artifacts = self.resolve_artifacts(artifacts)
        sim = self.make_simulator()
        topology = artifacts.topology
        dsme = DsmeNetwork(
            sim,
            topology,
            cap_mac=self.config.mac,
            config=superframe_config,
            cap_mac_config=self.config.mac_config,
            route_discovery_period=route_discovery_period,
            link_error_rate=self.config.link_error_rate,
            static_links=self.config.static_links,
            interference=self.config.interference,
            sinr_threshold_db=self.config.sinr_threshold_db,
            prebuilt_links=artifacts.current_link_table(),
            prebuilt_cs=artifacts.current_cs_table(),
        )
        return BuiltDsmeScenario(config=self.config, sim=sim, topology=topology, dsme=dsme)


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Convenience wrapper: ``ScenarioBuilder(config).build()``."""
    return ScenarioBuilder(config).build()
