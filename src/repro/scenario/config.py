"""The declarative scenario specification consumed by the builder.

A :class:`ScenarioConfig` names every axis of a simulation — topology,
propagation model, channel-access scheme, link quality and master seed — as
plain data.  Names are resolved through the registries
(:mod:`repro.mac.registry`, :mod:`repro.phy.registry` and the topology
table of :mod:`repro.scenario.builder`), so a config mentioning a new MAC
or channel model works the moment the providing module is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def _hashable(value: Any) -> Any:
    """Recursively normalise a parameter value into a hashable equivalent.

    Dicts become sorted item tuples, sequences become tuples, sets become
    repr-sorted tuples.  Raises TypeError for values that stay unhashable —
    the caller then treats the configuration as uncacheable.
    """
    if isinstance(value, dict):
        return tuple((key, _hashable(item)) for key, item in sorted(value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_hashable(item) for item in value), key=repr))
    hash(value)  # TypeError for unhashable leaves
    return value


@dataclass
class ScenarioConfig:
    """Everything needed to assemble one simulation.

    Parameters
    ----------
    topology:
        Registered topology name (``hidden-node``, ``iotlab-tree``,
        ``iotlab-star``, ``concentric``); ``topology_params`` are forwarded
        to the topology factory.
    mac:
        Registered MAC name.  ``mac_config`` optionally carries the
        protocol's config dataclass instance; ``mac_params`` extra
        per-protocol constructor knobs (e.g. QMA's ``rewards``).
    propagation:
        Optional registered propagation-model name.  When set, the
        topology's link set is re-derived from node positions through the
        model (and the routing tree rebuilt); when None the topology's
        explicit links are used.  Models with a ``seed`` constructor
        parameter receive the scenario seed unless ``propagation_params``
        overrides it.
    link_error_rate:
        Uniform per-link packet error rate applied to every link.
    interference:
        Channel interference model: ``"collision"`` (default, the paper's
        binary overlap world) or ``"sinr"`` (signal-power interference with
        capture and a decoupled carrier-sense range; see
        :mod:`repro.phy.channel`).  SINR requires a propagation model —
        received powers come from its ``received_power_dbm``.
    sinr_threshold_db:
        Capture threshold of the SINR model; ignored under ``collision``.
    static_links:
        Channel delivery mode: None (default) uses
        :attr:`repro.phy.channel.WirelessChannel.DEFAULT_STATIC_LINKS`
        (the precomputed link table); False forces the dynamic per-delivery
        path for topologies that mutate mid-run.  Results are bit-identical
        either way for static topologies.
    seed:
        Master seed of the simulation's RNG registry.
    trace / trace_limit:
        Enable the simulator's trace recorder, optionally bounded to
        ``trace_limit`` records (further records are counted as dropped,
        see :class:`repro.sim.trace.TraceRecorder`); campaign sweeps bound
        traced runs by default.
    """

    topology: str = "hidden-node"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    mac: str = "qma"
    mac_config: Optional[Any] = None
    mac_params: Dict[str, Any] = field(default_factory=dict)
    propagation: Optional[str] = None
    propagation_params: Dict[str, Any] = field(default_factory=dict)
    link_error_rate: float = 0.0
    interference: str = "collision"
    sinr_threshold_db: float = 10.0
    static_links: Optional[bool] = None
    seed: int = 0
    trace: bool = False
    trace_limit: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.mac.registry import MAC_REGISTRY
        from repro.phy.channel import INTERFERENCE_MODELS
        from repro.phy.registry import PROPAGATION_REGISTRY

        if self.mac not in MAC_REGISTRY:
            raise ValueError(
                f"unknown MAC kind {self.mac!r}; expected one of "
                f"{tuple(sorted(MAC_REGISTRY.names()))}"
            )
        if self.propagation is not None and self.propagation not in PROPAGATION_REGISTRY:
            raise ValueError(
                f"unknown propagation model {self.propagation!r}; expected one of "
                f"{tuple(sorted(PROPAGATION_REGISTRY.names()))}"
            )
        if not 0.0 <= self.link_error_rate <= 1.0:
            raise ValueError("link_error_rate must lie in [0, 1]")
        if self.interference not in INTERFERENCE_MODELS:
            raise ValueError(
                f"unknown interference model {self.interference!r}; "
                f"expected one of {INTERFERENCE_MODELS}"
            )
        if self.interference == "sinr" and self.propagation is None:
            raise ValueError(
                "interference='sinr' needs a propagation model "
                "(received powers come from received_power_dbm)"
            )
        if self.trace_limit is not None and self.trace_limit < 0:
            raise ValueError("trace_limit must be non-negative (or None for unbounded)")

    # -------------------------------------------------------------- caching
    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        """Deterministic key of the construction-relevant half of the config.

        Two configs with equal keys build identical construction artifacts
        (topology, link set, PER rows) — so artifacts can be cached under
        the key and shared across runs.  The key covers topology,
        topology params, propagation model/params, link error rate and the
        channel mode; it deliberately *excludes* the master ``seed``, the
        MAC axis and tracing, which only shape per-run state.

        The seed re-enters the key exactly where it feeds construction:
        when the topology factory or the propagation model accepts a
        ``seed`` the builder injects the scenario seed (unless the params
        pin one), so the effective construction seed is part of the key —
        seeded random topologies and unpinned ``fading`` links are cached
        per seed, never shared across different draws.

        Returns None for uncacheable configs (unhashable parameter values
        or an unregistered topology); the builder then skips the cache.
        """
        from repro.phy.registry import get_propagation_spec
        from repro.registry import RegistryError
        from repro.scenario.builder import topology_accepts_seed

        try:
            topology_params = _hashable(self.topology_params)
            propagation_params = _hashable(self.propagation_params)
            topology_seeded = (
                "seed" not in self.topology_params and topology_accepts_seed(self.topology)
            )
        except (TypeError, RegistryError):
            return None
        # Version bumped to /2 when the skeleton rows grew the received-power
        # column — a /1-era bundle must never be served to this code.
        parts: list = ["scenario-artifacts/2", self.topology, topology_params]
        if topology_seeded:
            parts.append(("topology-seed", self.seed))
        parts.append(self.propagation)
        if self.propagation is not None:
            parts.append(propagation_params)
            spec = get_propagation_spec(self.propagation)
            if "seed" not in self.propagation_params and spec.accepts_seed():
                parts.append(("propagation-seed", self.seed))
        parts.append(self.link_error_rate)
        # The interference model shapes the artifacts themselves (power
        # column, carrier-sense rows), so a collision-era bundle can never
        # be served to a SINR run or vice versa.  The carrier-sense range /
        # CCA sensitivity is part of propagation_params and therefore
        # already covered above; the SINR threshold only matters when the
        # SINR model is active.
        parts.append(("interference", self.interference))
        if self.interference == "sinr":
            parts.append(("sinr-threshold", self.sinr_threshold_db))
        parts.append(self.static_links)
        return tuple(parts)
