"""The declarative scenario specification consumed by the builder.

A :class:`ScenarioConfig` names every axis of a simulation — topology,
propagation model, channel-access scheme, link quality and master seed — as
plain data.  Names are resolved through the registries
(:mod:`repro.mac.registry`, :mod:`repro.phy.registry` and the topology
table of :mod:`repro.scenario.builder`), so a config mentioning a new MAC
or channel model works the moment the providing module is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class ScenarioConfig:
    """Everything needed to assemble one simulation.

    Parameters
    ----------
    topology:
        Registered topology name (``hidden-node``, ``iotlab-tree``,
        ``iotlab-star``, ``concentric``); ``topology_params`` are forwarded
        to the topology factory.
    mac:
        Registered MAC name.  ``mac_config`` optionally carries the
        protocol's config dataclass instance; ``mac_params`` extra
        per-protocol constructor knobs (e.g. QMA's ``rewards``).
    propagation:
        Optional registered propagation-model name.  When set, the
        topology's link set is re-derived from node positions through the
        model (and the routing tree rebuilt); when None the topology's
        explicit links are used.  Models with a ``seed`` constructor
        parameter receive the scenario seed unless ``propagation_params``
        overrides it.
    link_error_rate:
        Uniform per-link packet error rate applied to every link.
    static_links:
        Channel delivery mode: None (default) uses
        :attr:`repro.phy.channel.WirelessChannel.DEFAULT_STATIC_LINKS`
        (the precomputed link table); False forces the dynamic per-delivery
        path for topologies that mutate mid-run.  Results are bit-identical
        either way for static topologies.
    seed:
        Master seed of the simulation's RNG registry.
    trace / trace_limit:
        Enable the simulator's trace recorder, optionally bounded to
        ``trace_limit`` records (further records are counted as dropped,
        see :class:`repro.sim.trace.TraceRecorder`); campaign sweeps bound
        traced runs by default.
    """

    topology: str = "hidden-node"
    topology_params: Dict[str, Any] = field(default_factory=dict)
    mac: str = "qma"
    mac_config: Optional[Any] = None
    mac_params: Dict[str, Any] = field(default_factory=dict)
    propagation: Optional[str] = None
    propagation_params: Dict[str, Any] = field(default_factory=dict)
    link_error_rate: float = 0.0
    static_links: Optional[bool] = None
    seed: int = 0
    trace: bool = False
    trace_limit: Optional[int] = None

    def __post_init__(self) -> None:
        from repro.mac.registry import MAC_REGISTRY
        from repro.phy.registry import PROPAGATION_REGISTRY

        if self.mac not in MAC_REGISTRY:
            raise ValueError(
                f"unknown MAC kind {self.mac!r}; expected one of "
                f"{tuple(sorted(MAC_REGISTRY.names()))}"
            )
        if self.propagation is not None and self.propagation not in PROPAGATION_REGISTRY:
            raise ValueError(
                f"unknown propagation model {self.propagation!r}; expected one of "
                f"{tuple(sorted(PROPAGATION_REGISTRY.names()))}"
            )
        if not 0.0 <= self.link_error_rate <= 1.0:
            raise ValueError("link_error_rate must lie in [0, 1]")
        if self.trace_limit is not None and self.trace_limit < 0:
            raise ValueError("trace_limit must be non-negative (or None for unbounded)")
