"""Campaign service: resumable, checkpointed, sharded, supervised sweeps.

The service layer turns the campaign runner into infrastructure for
million-run sweeps:

* :mod:`repro.service.manifest` — deterministic run identity (spec
  digests, expansion indices, affinity-ordered shard splits);
* :mod:`repro.service.journal` — the append-only, crash-tolerant
  checkpoint journal (with event audit lines and sealed-segment
  compaction);
* :mod:`repro.service.backends` — pluggable dispatch (warm in-process
  pool, subprocess shards, isolated serial);
* :mod:`repro.service.supervisor` — fault tolerance: per-run timeouts,
  heartbeats, bounded retry with backoff, poison-run quarantine, and
  graceful backend degradation;
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness behind the chaos test matrix;
* :mod:`repro.service.checkpoint` — the resume-safe driver shared by the
  CLI and the service;
* :mod:`repro.service.remote` / :mod:`repro.service.agent` — cross-host
  shard dispatch: per-host agents executing shard job documents, with
  host-health quarantine and byte-offset-resumable journal streaming;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  long-lived asyncio front end and its blocking client.
"""

from repro.service.backends import (
    DispatchBackend,
    PoolBackend,
    SerialBackend,
    ShardBackend,
    ShardFailure,
    make_backend,
)
from repro.service.checkpoint import CheckpointOutcome, run_checkpointed
from repro.service.client import ServiceClient, ServiceError
from repro.service.faults import Fault, FaultPlan, InjectedFault
from repro.service.journal import (
    CheckpointJournal,
    JournalError,
    SweepMismatchError,
)
from repro.service.manifest import (
    affinity_order,
    record_digest,
    run_id,
    split_shards,
    sweep_digest,
)
from repro.service.agent import AgentServer, CampaignAgent
from repro.service.remote import (
    HostRegistry,
    HostSpec,
    RemoteBackend,
    RemoteDispatchError,
    parse_hosts,
)
from repro.service.server import CampaignServer, CampaignService
from repro.service.supervisor import (
    RetryPolicy,
    SupervisedBackend,
    load_quarantine,
    make_supervised,
    quarantine_path,
    retry_quarantined,
)

__all__ = [
    "AgentServer",
    "CampaignAgent",
    "CampaignServer",
    "CampaignService",
    "CheckpointJournal",
    "CheckpointOutcome",
    "DispatchBackend",
    "Fault",
    "FaultPlan",
    "HostRegistry",
    "HostSpec",
    "InjectedFault",
    "JournalError",
    "PoolBackend",
    "RemoteBackend",
    "RemoteDispatchError",
    "RetryPolicy",
    "SerialBackend",
    "ServiceClient",
    "ServiceError",
    "ShardBackend",
    "ShardFailure",
    "SupervisedBackend",
    "SweepMismatchError",
    "affinity_order",
    "load_quarantine",
    "make_backend",
    "make_supervised",
    "parse_hosts",
    "quarantine_path",
    "record_digest",
    "retry_quarantined",
    "run_checkpointed",
    "run_id",
    "split_shards",
    "sweep_digest",
]
