"""Campaign service: resumable, checkpointed, sharded sweep execution.

The service layer turns the campaign runner into infrastructure for
million-run sweeps:

* :mod:`repro.service.manifest` — deterministic run identity (spec
  digests, expansion indices, affinity-ordered shard splits);
* :mod:`repro.service.journal` — the append-only, crash-tolerant
  checkpoint journal;
* :mod:`repro.service.backends` — pluggable dispatch (warm in-process
  pool, subprocess shards);
* :mod:`repro.service.checkpoint` — the resume-safe driver shared by the
  CLI and the service;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  long-lived asyncio front end and its blocking client.
"""

from repro.service.backends import (
    DispatchBackend,
    PoolBackend,
    ShardBackend,
    ShardFailure,
    make_backend,
)
from repro.service.checkpoint import CheckpointOutcome, run_checkpointed
from repro.service.client import ServiceClient, ServiceError
from repro.service.journal import (
    CheckpointJournal,
    JournalError,
    SweepMismatchError,
)
from repro.service.manifest import (
    affinity_order,
    record_digest,
    run_id,
    split_shards,
    sweep_digest,
)
from repro.service.server import CampaignServer, CampaignService

__all__ = [
    "CampaignServer",
    "CampaignService",
    "CheckpointJournal",
    "CheckpointOutcome",
    "DispatchBackend",
    "JournalError",
    "PoolBackend",
    "ServiceClient",
    "ServiceError",
    "ShardBackend",
    "ShardFailure",
    "SweepMismatchError",
    "affinity_order",
    "make_backend",
    "record_digest",
    "run_checkpointed",
    "run_id",
    "split_shards",
    "sweep_digest",
]
