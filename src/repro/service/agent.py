"""Per-host campaign agent: executes shard jobs, streams journals back.

An agent is the remote half of :class:`repro.service.remote.RemoteBackend`:
a small TCP server (``qma-repro agent``) that accepts the service's shard
job documents, runs each one through the ordinary
:mod:`repro.service.shard_worker` subprocess, and streams the growing
shard journal back to the dispatcher as raw byte chunks.  The protocol is
the service's line-delimited JSON, one request line per connection::

    -> {"op": "run", "id": ..., "job": {...}, "offset": N, "stream": SID}
    <- {"hello": {"agent": ..., "id": ..., "stream": SID, "offset": N,
                  "size": ..., "state": "running"|"done"}}
    <- {"chunk": {"offset": N, "data": "<raw journal bytes, latin-1>"}}
    <- {"heartbeat": {"size": N}}
    <- {"done": {"exit": RC, "size": N[, "stderr": "<tail>"]}}

plus ``{"op": "ping"}`` -> ``{"pong": ...}`` and ``{"op": "cancel",
"id": ...}`` -> ``{"cancelled": ...}``.  Design decisions that make the
transport partition-safe:

* **The journal is the state.**  The agent never interprets journal
  lines; it ships file bytes from a requested offset.  A dispatcher that
  reconnects after a dropped link resumes at the byte offset it had
  fully processed — nothing is recomputed and nothing is duplicated
  (the dispatcher's merger deduplicates by run index anyway).
* **Streams are identified.**  Each job gets a random ``stream`` token;
  the hello echoes the authoritative token and start offset.  A
  dispatcher holding an offset from a *different* agent incarnation
  (the agent restarted, the job re-ran from scratch) sees the token
  mismatch and restarts its merge from offset 0 instead of splicing two
  unrelated byte streams.
* **Connections are disposable, jobs are not.**  A broken connection
  stops the streaming loop but leaves the shard worker running; the job
  stays attachable (also after completion) until the agent exits.
* **Heartbeats carry the journal size.**  The dispatcher only counts a
  heartbeat as *progress* when the size grew, so a slow link does not
  false-trip ``run_timeout`` watchdogs while a genuinely hung worker
  still does.

Agent-side chaos faults ride in on the job document: ``agent-crash``
kills the whole agent process before a matched shard starts (a dead-box
stand-in), ``slow-link`` stalls chunk delivery while the worker keeps
running (heartbeats still flow).
"""

from __future__ import annotations

import argparse
import json
import os
import socketserver
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.backends import STDERR_TAIL_LINES, _tail_lines, _worker_env

__all__ = ["AgentServer", "CampaignAgent"]

#: Maximum raw journal bytes per ``chunk`` message.
CHUNK_BYTES = 57344

#: Seconds between ``heartbeat`` lines while the journal is not growing.
HEARTBEAT_INTERVAL = 0.5

#: Journal growth / worker liveness poll period.
POLL_INTERVAL = 0.05

Send = Callable[[Dict[str, Any]], None]


class _AgentJob:
    """One shard job owned by this agent (worker subprocess + journal)."""

    def __init__(self, job_id: str, jobdir: str) -> None:
        self.job_id = job_id
        self.dir = jobdir
        self.journal_path = os.path.join(jobdir, "journal.jsonl")
        self.stderr_path = os.path.join(jobdir, "stderr")
        #: Stream identity: a reconnecting dispatcher may only resume its
        #: byte offset against the same token (same job incarnation).
        self.stream = uuid.uuid4().hex[:16]
        self.proc: Optional[subprocess.Popen] = None
        self.stderr_handle: Optional[Any] = None
        self.plan: Optional[Any] = None

    @property
    def running(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def size(self) -> int:
        try:
            return os.path.getsize(self.journal_path)
        except OSError:
            return 0


class CampaignAgent:
    """Job table + protocol logic of one agent process (transport-free).

    ``max_jobs`` bounds *running* shard workers (0 = unbounded; the
    dispatcher's per-host caps are the intended scheduling control).
    Finished jobs stay in the table so late re-attachments can still
    drain their journals.
    """

    def __init__(
        self,
        workdir: Optional[str] = None,
        max_jobs: int = 0,
        name: Optional[str] = None,
        python: Optional[str] = None,
    ) -> None:
        self._owns_workdir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="qma-agent-")
        os.makedirs(self.workdir, exist_ok=True)
        self.max_jobs = int(max_jobs)
        self.name = name or f"agent-{os.getpid()}"
        self.python = python or sys.executable
        self._lock = threading.Lock()
        self._jobs: Dict[str, _AgentJob] = {}

    # ------------------------------------------------------------- protocol
    def handle(self, request: Dict[str, Any], send: Send) -> None:
        op = request.get("op")
        if op == "ping":
            with self._lock:
                running = sum(1 for job in self._jobs.values() if job.running)
            send({"pong": {"agent": self.name, "jobs": running}})
            return
        if op == "cancel":
            self._handle_cancel(request, send)
            return
        if op == "run":
            self._handle_run(request, send)
            return
        send({"error": {"kind": "bad-request", "message": f"unknown op {op!r}"}})

    def _handle_cancel(self, request: Dict[str, Any], send: Send) -> None:
        job_id = str(request.get("id"))
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            send({"error": {"kind": "unknown-job", "message": f"no job {job_id!r}"}})
            return
        if job.proc is not None and job.proc.poll() is None:
            job.proc.terminate()
        send({"cancelled": {"id": job_id}})

    def _handle_run(self, request: Dict[str, Any], send: Send) -> None:
        job_id = str(request.get("id"))
        offset = int(request.get("offset", 0) or 0)
        stream = request.get("stream")
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                job_doc = request.get("job")
                if not isinstance(job_doc, dict):
                    send({
                        "error": {
                            "kind": "unknown-job",
                            "message": f"no job {job_id!r} and no job document",
                        }
                    })
                    return
                if self.max_jobs > 0:
                    running = sum(1 for j in self._jobs.values() if j.running)
                    if running >= self.max_jobs:
                        send({
                            "error": {
                                "kind": "busy",
                                "message": f"agent {self.name} already runs "
                                f"{running}/{self.max_jobs} job(s)",
                            }
                        })
                        return
                job = self._start_job(job_id, job_doc)
                self._jobs[job_id] = job
        # Offset/stream reconciliation: resuming a byte offset is only
        # valid against the same stream token and within the file.
        if stream != job.stream or offset > job.size():
            offset = 0
        send({
            "hello": {
                "agent": self.name,
                "id": job_id,
                "stream": job.stream,
                "offset": offset,
                "size": job.size(),
                "state": "running" if job.running else "done",
            }
        })
        self._stream(job, offset, send)

    # ------------------------------------------------------------ job start
    def _start_job(self, job_id: str, job_doc: Dict[str, Any]) -> _AgentJob:
        jobdir = os.path.join(self.workdir, job_id)
        os.makedirs(jobdir, exist_ok=True)
        job = _AgentJob(job_id, jobdir)
        shard = (job_doc.get("shard") or {}).get("index")
        if job_doc.get("faults") is not None:
            from repro.service.faults import CRASH_EXIT_STATUS, FaultPlan

            job.plan = FaultPlan.from_dict(job_doc["faults"])
            if job.plan.take_agent_crash(shard):
                # A dead box, not a dead worker: the whole agent dies and
                # every connection to it breaks mid-stream.
                os._exit(CRASH_EXIT_STATUS)
        doc = dict(job_doc)
        doc["journal"] = job.journal_path
        job_path = os.path.join(jobdir, "job.json")
        with open(job_path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        job.stderr_handle = open(job.stderr_path, "wb")
        job.proc = subprocess.Popen(
            [self.python, "-m", "repro.service.shard_worker", job_path],
            stdout=subprocess.DEVNULL,
            stderr=job.stderr_handle,
            env=_worker_env(),
        )
        return job

    # ------------------------------------------------------------ streaming
    def _stream(self, job: _AgentJob, offset: int, send: Send) -> None:
        """Ship journal bytes from ``offset`` until the worker finishes.

        The returncode poll happens *before* the size read, so bytes the
        worker wrote just before exiting are always shipped before the
        ``done`` line — no lost-tail race.
        """
        pos = offset
        last_beat = time.monotonic()
        while True:
            returncode = None if job.proc is None else job.proc.poll()
            size = job.size()
            if size > pos:
                self._maybe_stall(job, send)
                with open(job.journal_path, "rb") as handle:
                    handle.seek(pos)
                    data = handle.read(CHUNK_BYTES)
                if data:
                    send({
                        "chunk": {"offset": pos, "data": data.decode("latin-1")}
                    })
                    pos += len(data)
                    continue
            if returncode is not None:
                payload: Dict[str, Any] = {"exit": returncode, "size": size}
                if returncode != 0:
                    payload["stderr"] = _tail_lines(
                        job.stderr_path, STDERR_TAIL_LINES
                    )
                send({"done": payload})
                return
            now = time.monotonic()
            if now - last_beat >= HEARTBEAT_INTERVAL:
                send({"heartbeat": {"size": size}})
                last_beat = now
            time.sleep(POLL_INTERVAL)

    def _maybe_stall(self, job: _AgentJob, send: Send) -> None:
        """``slow-link`` fault: hold chunk delivery, keep heartbeats flowing.

        The worker keeps running during the stall, so the heartbeats
        carry a *growing* journal size — exactly the signal that lets the
        dispatcher's watchdog tell a slow link from a hung worker.
        """
        if job.plan is None:
            return
        stall = job.plan.take_slow_link()
        if stall is None:
            return
        deadline = time.monotonic() + float(stall)
        while time.monotonic() < deadline:
            send({"heartbeat": {"size": job.size()}})
            time.sleep(min(HEARTBEAT_INTERVAL, max(0.01, deadline - time.monotonic())))

    # ------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Kill running workers and release file handles (jobs stay on disk)."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.proc is not None and job.proc.poll() is None:
                job.proc.kill()
                job.proc.wait()
            if job.stderr_handle is not None:
                job.stderr_handle.close()
                job.stderr_handle = None
        if self._owns_workdir:
            import shutil

            shutil.rmtree(self.workdir, ignore_errors=True)


class _AgentTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True


class AgentServer:
    """Threaded TCP front end over a :class:`CampaignAgent`.

    One request line per connection; responses stream back as ndjson on
    the same socket.  A client that disappears mid-stream only ends its
    handler thread — the agent's jobs keep running.
    """

    def __init__(
        self, agent: CampaignAgent, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.agent = agent
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # noqa: A003 - socketserver API
                try:
                    line = self.rfile.readline(4 * 1024 * 1024)
                    if not line.strip():
                        return
                    try:
                        request = json.loads(line)
                    except json.JSONDecodeError:
                        self._send({
                            "error": {
                                "kind": "bad-request",
                                "message": "request is not a JSON line",
                            }
                        })
                        return
                    outer.agent.handle(request, self._send)
                except (BrokenPipeError, ConnectionError, OSError):
                    return  # client went away; the job keeps running

            def _send(self, obj: Dict[str, Any]) -> None:
                data = (
                    json.dumps(obj, separators=(",", ":")) + "\n"
                ).encode("utf-8")
                self.wfile.write(data)
                self.wfile.flush()

        self._server = _AgentTCPServer((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="campaign-agent",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def wait(self) -> None:
        """Block until the server is stopped (interruptible)."""
        while self._thread is not None and self._thread.is_alive():
            self._thread.join(0.5)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self.agent.shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="qma-repro agent",
        description="Run a campaign agent executing shard jobs for a "
        "remote dispatcher (see 'qma-repro sweep --hosts').",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral, printed)"
    )
    parser.add_argument(
        "--workdir", default=None, help="job/journal scratch directory"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=0,
        help="maximum concurrent shard workers (0 = unbounded)",
    )
    parser.add_argument("--name", default=None, help="agent name in hellos")
    args = parser.parse_args(argv)
    agent = CampaignAgent(
        workdir=args.workdir, max_jobs=args.max_jobs, name=args.name
    )
    server = AgentServer(agent, args.host, args.port)
    host, port = server.start()
    # Harnesses parse this line to find an ephemeral port.
    print(
        f"campaign agent {agent.name} listening on {host}:{port} "
        f"(workdir: {agent.workdir})",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:
        print("campaign agent stopped")
    finally:
        server.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
