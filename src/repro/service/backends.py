"""Pluggable campaign dispatch: in-process pool and subprocess shards.

A :class:`DispatchBackend` executes the pending runs of a sweep and
appends every finished record to the campaign's checkpoint journal.  The
contract is deliberately small — ``run(sweep, indices, journal,
on_record)`` — so new execution substrates (a remote-host dispatcher, a
batch scheduler) plug in without touching the journal, the service front
end or the CLI:

* :class:`PoolBackend` — the default: one warm
  :class:`~repro.campaign.runner.CampaignRunner` (persistent worker pool,
  build cache, seed batches) executing the pending set in expansion order.
* :class:`ShardBackend` — splits the pending set into contiguous
  *affinity-ordered* shards (see :func:`repro.service.manifest.affinity_order`)
  and runs each shard as a subprocess (:mod:`repro.service.shard_worker`)
  with its own journal; shard journals are merged into the main journal as
  each shard completes.  Because shards are contiguous slices of the
  affinity order, each shard keeps the PR 5 build-cache streaks and PR 7
  seed-batch groups intact — and because every record is a pure function
  of its scenario, the merged results are bit-identical to a single-process
  run.  This is the seam where cross-host dispatch attaches later: ship
  the same job document to another machine instead of a local subprocess.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.campaign.records import RunRecord
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.service.journal import CheckpointJournal, JournalError
from repro.service.manifest import affinity_order, split_shards

__all__ = [
    "DispatchBackend",
    "PoolBackend",
    "ShardBackend",
    "ShardFailure",
    "make_backend",
]

#: Callback invoked per finished record: ``on_record(index, record)``.
RecordCallback = Callable[[int, RunRecord], None]


class DispatchBackend:
    """Protocol of campaign execution substrates.

    ``run`` executes the given pending expansion indices of the sweep,
    appending each finished record to ``journal`` (atomically per record,
    so a crash loses at most in-flight work) and invoking ``on_record``
    live as results arrive.  Completion order is backend-defined; callers
    that need expansion order replay the journal afterwards.
    """

    name = "abstract"

    #: True when ``run`` invokes ``on_record`` in expansion order of the
    #: given indices.  Lets :func:`~repro.service.checkpoint.run_checkpointed`
    #: stream records straight into sinks on a cold run instead of paying
    #: the journal replay pass.
    ordered = False

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any persistent resources (worker pools, ...)."""


class PoolBackend(DispatchBackend):
    """Warm in-process worker-pool execution (the default backend).

    Wraps a persistent :class:`CampaignRunner`: the subset flows through
    the same template dispatch, affinity ordering and seed batching as a
    full sweep.  ``throttle`` sleeps after each record — a testing and
    demo aid that makes "mid-campaign" externally observable on sweeps
    that would otherwise finish in milliseconds.
    """

    name = "pool"
    # iter_records re-emits in expansion order regardless of jobs/affinity
    # reordering/seed batching, so completions arrive index-sorted.
    ordered = True

    def __init__(
        self,
        jobs: int = 1,
        chunksize: Any = "auto",
        build_cache: bool = True,
        cache_size: Optional[int] = None,
        batch_seeds: int = 1,
        throttle: float = 0.0,
    ) -> None:
        self.throttle = float(throttle)
        self._runner = CampaignRunner(
            jobs=jobs,
            chunksize=chunksize,
            build_cache=build_cache,
            cache_size=cache_size,
            batch_seeds=batch_seeds,
        )

    @property
    def runner(self) -> CampaignRunner:
        return self._runner

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        indices = list(indices)
        if not indices:
            return
        results = self._runner.iter_records(sweep, indices=indices)
        for index, record in zip(indices, results):
            journal.append(index, record)
            if on_record is not None:
                on_record(index, record)
            if self.throttle > 0:
                time.sleep(self.throttle)

    def close(self) -> None:
        self._runner.close()


class ShardFailure(RuntimeError):
    """A shard subprocess exited non-zero; carries its stderr tail."""


class ShardBackend(DispatchBackend):
    """Contiguous affinity-ordered shards, one subprocess per shard.

    Each shard worker writes its own journal (same format, same spec
    digest, shard provenance in the header meta); as each worker exits the
    parent verifies the shard journal against the manifest and merges its
    records into the main journal.  A crash in the parent between shard
    completion and merge loses only the unmerged shard's progress — the
    shard journals themselves live next to the main journal (in
    ``<journal>.shards/``) until the whole dispatch succeeds.

    ``jobs`` is the per-shard worker-pool size (total process count is
    roughly ``shards * jobs`` while running).
    """

    name = "shard"

    #: Seconds between subprocess liveness polls.
    POLL_INTERVAL = 0.05

    def __init__(
        self,
        shards: int = 2,
        jobs: int = 1,
        chunksize: Any = "auto",
        build_cache: bool = True,
        batch_seeds: int = 1,
        python: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = int(shards)
        self.options = {
            "jobs": int(jobs),
            "chunksize": chunksize,
            "build_cache": bool(build_cache),
            "batch_seeds": int(batch_seeds),
        }
        self.python = python or sys.executable

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        indices = list(indices)
        if not indices:
            return
        chunks = split_shards(affinity_order(sweep, indices), self.shards)
        workdir = self._workdir(journal)
        sweep_data = sweep.to_dict()
        procs: Dict[int, subprocess.Popen] = {}
        shard_paths: Dict[int, str] = {}
        try:
            for shard_index, chunk in enumerate(chunks):
                job_path = os.path.join(workdir, f"shard_{shard_index}.job.json")
                shard_paths[shard_index] = os.path.join(
                    workdir, f"shard_{shard_index}.journal.jsonl"
                )
                with open(job_path, "w", encoding="utf-8") as handle:
                    json.dump(
                        {
                            "sweep": sweep_data,
                            # Workers run their slice in expansion order;
                            # affinity clustering is preserved by the
                            # contiguous split, not by the within-shard order.
                            "indices": sorted(chunk),
                            "journal": shard_paths[shard_index],
                            "shard": {"index": shard_index, "of": len(chunks)},
                            "options": self.options,
                        },
                        handle,
                    )
                procs[shard_index] = subprocess.Popen(
                    [self.python, "-m", "repro.service.shard_worker", job_path],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=_worker_env(),
                )
            pending = dict(procs)
            while pending:
                finished = [
                    shard for shard, proc in pending.items() if proc.poll() is not None
                ]
                if not finished:
                    time.sleep(self.POLL_INTERVAL)
                    continue
                for shard in finished:
                    proc = pending.pop(shard)
                    _, err = proc.communicate()
                    if proc.returncode != 0:
                        raise ShardFailure(
                            f"shard {shard} exited with status {proc.returncode}:\n"
                            + err.decode("utf-8", errors="replace")[-2000:]
                        )
                    self._merge(shard_paths[shard], journal, on_record)
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            shutil.rmtree(workdir, ignore_errors=True)

    @staticmethod
    def _workdir(journal: CheckpointJournal) -> str:
        path = journal.path + ".shards"
        try:
            os.makedirs(path, exist_ok=True)
            return path
        except OSError:  # journal on a read-only mount? fall back to tmp
            return tempfile.mkdtemp(prefix="qma-shards-")

    @staticmethod
    def _merge(
        shard_path: str,
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback],
    ) -> None:
        shard = CheckpointJournal.open(shard_path)
        try:
            if shard.spec_digest != journal.spec_digest:
                raise JournalError(
                    f"{shard_path}: shard journal spec digest "
                    f"{shard.spec_digest[:12]} does not match campaign "
                    f"{journal.spec_digest[:12]}"
                )
            for index, record in shard.iter_completed():
                journal.append(index, record)
                if on_record is not None:
                    on_record(index, record)
        finally:
            shard.close()


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with the repro package importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


#: Option keys understood by each backend kind (validated by make_backend).
_BACKEND_OPTIONS = {
    "pool": ("jobs", "chunksize", "build_cache", "cache_size", "batch_seeds", "throttle"),
    "shard": ("shards", "jobs", "chunksize", "build_cache", "batch_seeds", "python"),
}


def make_backend(options: Optional[Mapping[str, Any]] = None) -> DispatchBackend:
    """Build a dispatch backend from a plain options mapping.

    ``{"backend": "pool"|"shard", ...}`` — remaining keys are forwarded to
    the backend constructor; unknown keys raise :class:`ValueError` (the
    service front end surfaces this as a 400 instead of running a sweep
    under silently-dropped options).
    """
    options = dict(options or {})
    kind = options.pop("backend", "pool")
    allowed = _BACKEND_OPTIONS.get(kind)
    if allowed is None:
        raise ValueError(
            f"unknown dispatch backend {kind!r}; expected one of "
            f"{sorted(_BACKEND_OPTIONS)}"
        )
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for backend {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    if kind == "shard":
        return ShardBackend(**options)
    return PoolBackend(**options)


def backend_pool_config(options: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Effective backend description for status output and export meta."""
    options = dict(options or {})
    kind = options.get("backend", "pool")
    return {"backend": kind, **{k: v for k, v in options.items() if k != "backend"}}


_ = List  # typing import kept for annotations in docstrings
