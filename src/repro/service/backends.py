"""Pluggable campaign dispatch: in-process pool, subprocess shards, serial.

A :class:`DispatchBackend` executes the pending runs of a sweep and
appends every finished record to the campaign's checkpoint journal.  The
contract is deliberately small — ``run(sweep, indices, journal,
on_record)`` — so new execution substrates (a remote-host dispatcher, a
batch scheduler) plug in without touching the journal, the service front
end or the CLI:

* :class:`PoolBackend` — the default: one warm
  :class:`~repro.campaign.runner.CampaignRunner` (persistent worker pool,
  build cache, seed batches) executing the pending set in expansion order.
* :class:`ShardBackend` — splits the pending set into contiguous
  *affinity-ordered* shards (see :func:`repro.service.manifest.affinity_order`)
  and runs each shard as a subprocess (:mod:`repro.service.shard_worker`)
  with its own journal; shard journals are merged into the main journal as
  each shard completes.  Because shards are contiguous slices of the
  affinity order, each shard keeps the PR 5 build-cache streaks and PR 7
  seed-batch groups intact — and because every record is a pure function
  of its scenario, the merged results are bit-identical to a single-process
  run.  :class:`~repro.service.remote.RemoteBackend` rides this seam:
  it ships the same job document to per-host agent processes instead of
  local subprocesses and merges the streamed-back journals identically.
* :class:`SerialBackend` — one run at a time in (or forked from) the
  calling process.  With ``isolate`` each run executes in a disposable
  child process with an optional wall-clock timeout, so a poison scenario
  that segfaults or loops cannot take the caller down — this is the
  supervision layer's last-resort degradation tier and the substrate that
  attributes failures to *specific* runs for quarantine.

Every backend shares a small supervision surface: :meth:`~DispatchBackend.
touch` timestamps progress (``last_progress``) for heartbeat watchdogs,
:meth:`~DispatchBackend.cancel` requests a graceful stop (finish/drain
in-flight runs into the journal, then return), :meth:`~DispatchBackend.
abort` a forced one (return as soon as possible; in-flight work is
abandoned to the journal's atomicity), and :meth:`~DispatchBackend.reset`
re-arms an aborted backend for a retry attempt.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import shutil
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.records import RunRecord
from repro.campaign.runner import CampaignRunner, execute_scenario
from repro.campaign.spec import Scenario, Sweep
from repro.service.journal import CheckpointJournal, JournalError
from repro.service.manifest import affinity_order, shard_job_document, split_shards

__all__ = [
    "DispatchBackend",
    "PoolBackend",
    "SerialBackend",
    "ShardBackend",
    "ShardFailure",
    "make_backend",
]

#: Callback invoked per finished record: ``on_record(index, record)``.
RecordCallback = Callable[[int, RunRecord], None]

#: Lines of child stderr surfaced in a :class:`ShardFailure`.
STDERR_TAIL_LINES = 50


class DispatchBackend:
    """Protocol of campaign execution substrates.

    ``run`` executes the given pending expansion indices of the sweep,
    appending each finished record to ``journal`` (atomically per record,
    so a crash loses at most in-flight work) and invoking ``on_record``
    live as results arrive.  Completion order is backend-defined; callers
    that need expansion order replay the journal afterwards.

    ``run`` returning with indices still pending is not an error at this
    layer: a cancelled or aborted backend stops early by design, and the
    supervision layer decides whether that means retry, degrade or
    quarantine.  Backends honour :meth:`cancel` / :meth:`abort` promptly
    (within a poll interval) and never block forever on a dead worker.
    """

    name = "abstract"

    #: True when ``run`` invokes ``on_record`` in expansion order of the
    #: given indices.  Lets :func:`~repro.service.checkpoint.run_checkpointed`
    #: stream records straight into sinks on a cold run instead of paying
    #: the journal replay pass.
    ordered = False

    def __init__(self) -> None:
        self.last_progress = time.monotonic()
        self._stop = threading.Event()
        self._cancel = threading.Event()

    # --------------------------------------------------------- supervision
    def touch(self) -> None:
        """Record liveness; heartbeat watchdogs compare ``last_progress``."""
        self.last_progress = time.monotonic()

    def cancel(self) -> None:
        """Request a graceful stop: drain in-flight runs, then return."""
        self._cancel.set()

    def abort(self) -> None:
        """Request a forced stop: return as soon as possible."""
        self._stop.set()

    def reset(self) -> None:
        """Re-arm an aborted backend for another attempt (keeps ``cancel``)."""
        self._stop.clear()
        self.touch()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def aborted(self) -> bool:
        return self._stop.is_set()

    # ----------------------------------------------------------- execution
    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any persistent resources (worker pools, ...)."""


class PoolBackend(DispatchBackend):
    """Warm in-process worker-pool execution (the default backend).

    Wraps a persistent :class:`CampaignRunner`: the subset flows through
    the same template dispatch, affinity ordering and seed batching as a
    full sweep.  ``throttle`` sleeps after each record — a testing and
    demo aid that makes "mid-campaign" externally observable on sweeps
    that would otherwise finish in milliseconds.

    Results are consumed through a bounded queue fed by a daemon pump
    thread, so ``run`` itself never blocks on the pool: a dead or wedged
    worker shows up as a stalled ``last_progress`` (caught by the
    supervisor's watchdog) and :meth:`abort` returns promptly even while
    the pump is stuck mid-``imap`` — ``Pool.terminate`` cannot unblock a
    waiting ``IMapIterator``, so the pump is abandoned (daemon) rather
    than joined.
    """

    name = "pool"
    # iter_records re-emits in expansion order regardless of jobs/affinity
    # reordering/seed batching, so completions arrive index-sorted.
    ordered = True

    #: Queue poll period — the latency bound on cancel/abort.
    POLL_INTERVAL = 0.2

    def __init__(
        self,
        jobs: int = 1,
        chunksize: Any = "auto",
        build_cache: bool = True,
        cache_size: Optional[int] = None,
        batch_seeds: int = 1,
        throttle: float = 0.0,
        fault_plan: Optional[Any] = None,
    ) -> None:
        super().__init__()
        self.throttle = float(throttle)
        self._runner = CampaignRunner(
            jobs=jobs,
            chunksize=chunksize,
            build_cache=build_cache,
            cache_size=cache_size,
            batch_seeds=batch_seeds,
            fault_plan=fault_plan,
        )

    @property
    def runner(self) -> CampaignRunner:
        return self._runner

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        indices = list(indices)
        if not indices:
            return
        self.touch()
        results: "queue.Queue[Tuple[str, Any]]" = queue.Queue(maxsize=64)
        stop = self._stop

        def pump() -> None:
            try:
                for record in self._runner.iter_records(sweep, indices=indices):
                    while not stop.is_set():
                        try:
                            results.put(("rec", record), timeout=PoolBackend.POLL_INTERVAL)
                            break
                        except queue.Full:
                            continue
                    else:
                        return
                    # Throttling on the dispatch side keeps tiny campaigns
                    # genuinely mid-flight: a graceful cancel then finds
                    # uncomputed runs to skip rather than a full queue.
                    if self.throttle > 0 and not stop.is_set():
                        time.sleep(self.throttle)
            except BaseException as exc:  # surfaced in run()'s thread
                try:
                    results.put(("err", exc), timeout=1.0)
                except queue.Full:
                    pass
            else:
                try:
                    results.put(("done", None), timeout=1.0)
                except queue.Full:
                    pass

        thread = threading.Thread(target=pump, name="pool-backend-pump", daemon=True)
        thread.start()
        position = 0
        interrupted = True
        try:
            while not stop.is_set():
                if self._cancel.is_set():
                    # Graceful: journal everything that already finished,
                    # then stop dispatching.
                    while True:
                        try:
                            kind, payload = results.get_nowait()
                        except queue.Empty:
                            break
                        if kind == "rec":
                            position = self._deliver(
                                payload, indices, position, journal, on_record
                            )
                    return
                try:
                    kind, payload = results.get(timeout=PoolBackend.POLL_INTERVAL)
                except queue.Empty:
                    continue
                if kind == "rec":
                    position = self._deliver(
                        payload, indices, position, journal, on_record
                    )
                    self.touch()
                elif kind == "err":
                    raise payload
                else:  # done
                    interrupted = False
                    return
        finally:
            if interrupted:
                # Cancelled, aborted, or an error: drop the pool so
                # outstanding tasks die with it (the abandoned pump thread
                # then unblocks or exits with the pool's pipes).
                self._runner.close()

    @staticmethod
    def _deliver(
        record: RunRecord,
        indices: List[int],
        position: int,
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback],
    ) -> int:
        index = indices[position]
        journal.append(index, record)
        if on_record is not None:
            on_record(index, record)
        return position + 1

    def close(self) -> None:
        self._runner.close()


class ShardFailure(RuntimeError):
    """A shard subprocess exited non-zero; carries its stderr tail."""

    def __init__(self, message: str, stderr_tail: str = "") -> None:
        super().__init__(message)
        self.stderr_tail = stderr_tail


class ShardBackend(DispatchBackend):
    """Contiguous affinity-ordered shards, one subprocess per shard.

    Each shard worker writes its own journal (same format, same spec
    digest, shard provenance in the header meta); as each worker exits the
    parent verifies the shard journal against the manifest and merges its
    records into the main journal.  A crash in the parent between shard
    completion and merge loses only the unmerged shard's progress — the
    shard journals themselves live next to the main journal (in
    ``<journal>.shards/``) until the whole dispatch succeeds.

    On a shard *failure* (nonzero exit), the remaining shards are stopped
    and every shard journal — including the failed shard's partial one —
    is salvage-merged into the main journal before :class:`ShardFailure`
    is raised, so completed runs are never re-executed by a retry.  The
    failure carries the child's last ~50 stderr lines (worker stderr goes
    to a file, not a pipe, so chatty shards cannot deadlock on a full
    pipe).  Shard journal growth doubles as the heartbeat: any byte of
    progress in any shard journal bumps ``last_progress``.

    ``jobs`` is the per-shard worker-pool size (total process count is
    roughly ``shards * jobs`` while running).
    """

    name = "shard"

    #: Seconds between subprocess liveness polls.
    POLL_INTERVAL = 0.05

    #: Seconds a cancelled/aborted shard gets to die after SIGTERM.
    TERM_GRACE = 5.0

    def __init__(
        self,
        shards: int = 2,
        jobs: int = 1,
        chunksize: Any = "auto",
        build_cache: bool = True,
        batch_seeds: int = 1,
        python: Optional[str] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        super().__init__()
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = int(shards)
        self.options = {
            "jobs": int(jobs),
            "chunksize": chunksize,
            "build_cache": bool(build_cache),
            "batch_seeds": int(batch_seeds),
        }
        self.python = python or sys.executable
        self.fault_plan = fault_plan

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        indices = list(indices)
        if not indices:
            return
        self.touch()
        chunks = split_shards(affinity_order(sweep, indices), self.shards)
        workdir = self._workdir(journal)
        sweep_data = sweep.to_dict()
        procs: Dict[int, subprocess.Popen] = {}
        shard_paths: Dict[int, str] = {}
        stderr_paths: Dict[int, str] = {}
        stderr_handles: List[Any] = []
        journal_sizes: Dict[int, int] = {}
        try:
            for shard_index, chunk in enumerate(chunks):
                job_path = os.path.join(workdir, f"shard_{shard_index}.job.json")
                shard_paths[shard_index] = os.path.join(
                    workdir, f"shard_{shard_index}.journal.jsonl"
                )
                stderr_paths[shard_index] = os.path.join(
                    workdir, f"shard_{shard_index}.stderr"
                )
                job_doc = shard_job_document(
                    sweep_data,
                    chunk,
                    shard_paths[shard_index],
                    shard_index,
                    len(chunks),
                    self.options,
                    faults=self.fault_plan,
                )
                with open(job_path, "w", encoding="utf-8") as handle:
                    json.dump(job_doc, handle)
                stderr_file = open(stderr_paths[shard_index], "wb")
                stderr_handles.append(stderr_file)
                procs[shard_index] = subprocess.Popen(
                    [self.python, "-m", "repro.service.shard_worker", job_path],
                    stdout=subprocess.DEVNULL,
                    stderr=stderr_file,
                    env=_worker_env(),
                )
            pending = dict(procs)
            while pending:
                if self._stop.is_set() or self._cancel.is_set():
                    self._stop_children(pending)
                    self._salvage(shard_paths, journal, on_record)
                    return
                finished = [
                    shard for shard, proc in pending.items() if proc.poll() is not None
                ]
                if not finished:
                    self._heartbeat(shard_paths, journal_sizes)
                    time.sleep(self.POLL_INTERVAL)
                    continue
                for shard in finished:
                    proc = pending.pop(shard)
                    if proc.returncode != 0:
                        self._stop_children(pending)
                        self._salvage(shard_paths, journal, on_record)
                        tail = _tail_lines(stderr_paths[shard], STDERR_TAIL_LINES)
                        raise ShardFailure(
                            f"shard {shard} exited with status {proc.returncode}"
                            + (f":\n{tail}" if tail else ""),
                            stderr_tail=tail,
                        )
                    self._merge(shard_paths[shard], journal, on_record)
                    self.touch()
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            for handle in stderr_handles:
                handle.close()
            shutil.rmtree(workdir, ignore_errors=True)

    def _heartbeat(self, shard_paths: Dict[int, str], sizes: Dict[int, int]) -> None:
        """Treat any shard-journal growth as campaign progress."""
        for shard, path in shard_paths.items():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size != sizes.get(shard):
                sizes[shard] = size
                self.touch()

    def _stop_children(self, pending: Mapping[int, subprocess.Popen]) -> None:
        """Terminate the still-running shards (grace period, then kill)."""
        for proc in pending.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + self.TERM_GRACE
        for proc in pending.values():
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def _salvage(
        self,
        shard_paths: Mapping[int, str],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback],
    ) -> None:
        """Merge whatever the shard journals already committed.

        Called on cancellation, abort, or a shard failure — the surviving
        records are digest-verified like any merge, torn shard tails are
        discarded by the tolerant open, and unreadable shard journals
        (killed before the header fsynced) are skipped.  A later retry
        then re-dispatches only the truly missing indices.
        """
        for path in shard_paths.values():
            if not os.path.exists(path):
                continue
            try:
                self._merge(path, journal, on_record)
            except JournalError:
                continue

    @staticmethod
    def _workdir(journal: CheckpointJournal) -> str:
        path = journal.path + ".shards"
        try:
            os.makedirs(path, exist_ok=True)
            return path
        except OSError:  # journal on a read-only mount? fall back to tmp
            return tempfile.mkdtemp(prefix="qma-shards-")

    @staticmethod
    def _merge(
        shard_path: str,
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback],
    ) -> None:
        shard = CheckpointJournal.open(shard_path)
        try:
            if shard.spec_digest != journal.spec_digest:
                raise JournalError(
                    f"{shard_path}: shard journal spec digest "
                    f"{shard.spec_digest[:12]} does not match campaign "
                    f"{journal.spec_digest[:12]}"
                )
            for index, record in shard.iter_completed():
                if index in journal:
                    continue  # salvaged earlier, or a duplicate retry merge
                journal.append(index, record)
                if on_record is not None:
                    on_record(index, record)
        finally:
            shard.close()


def _probe_run(conn: Any, scenario: Scenario, fault_plan: Optional[Any]) -> None:
    """Disposable-child entry point for :class:`SerialBackend` isolation."""
    try:
        from repro.service import faults

        if fault_plan is not None:
            faults.mark_worker_process()
        # Unconditional: installing None clears any plan this forked child
        # inherited from a previous chaos campaign in the parent.
        faults.install(fault_plan)
        record = execute_scenario(scenario)
        conn.send(("ok", record))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # parent gave up on us
            pass
    finally:
        conn.close()


class SerialBackend(DispatchBackend):
    """One run at a time, in-process or in disposable child processes.

    The plain mode (``isolate=False``) executes each scenario inline —
    the minimal, dependency-free substrate.  With ``isolate=True`` each
    run happens in a forked child connected by a pipe, with an optional
    per-run wall-clock ``timeout``: a run that crashes the interpreter,
    loops forever, or raises is recorded in :attr:`failures` as
    ``(index, kind, detail)`` (kind ``error`` | ``crash`` | ``timeout``)
    and execution continues with the next index.  This precise
    per-run failure attribution is what the supervision layer's
    quarantine decisions are built on — parallel backends can only say
    *an attempt* failed, the serial tier can say *which run* did.
    """

    name = "serial"
    ordered = True

    #: Child-pipe poll period in isolate mode.
    POLL_INTERVAL = 0.1

    #: Seconds a terminated probe child gets to die before SIGKILL.
    TERM_GRACE = 5.0

    def __init__(
        self,
        timeout: Optional[float] = None,
        isolate: bool = False,
        fault_plan: Optional[Any] = None,
    ) -> None:
        super().__init__()
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self.isolate = bool(isolate)
        self.fault_plan = fault_plan
        #: Per-run failures of the most recent ``run`` call.
        self.failures: List[Tuple[int, str, str]] = []

    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        self.failures = []
        indices = list(indices)
        if not indices:
            return
        self.touch()
        index_set = frozenset(indices)
        last = max(indices)
        for position, scenario in enumerate(sweep):
            if position > last:
                return
            if position not in index_set:
                continue
            if self._stop.is_set() or self._cancel.is_set():
                return
            outcome, payload = self._execute(scenario)
            self.touch()
            if outcome != "ok":
                self.failures.append((position, outcome, payload))
                continue
            journal.append(position, payload)
            if on_record is not None:
                on_record(position, payload)

    def _execute(self, scenario: Scenario) -> Tuple[str, Any]:
        if not self.isolate:
            try:
                return "ok", execute_scenario(scenario)
            except Exception:
                return "error", traceback.format_exc()
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_probe_run,
            args=(child_conn, scenario, self.fault_plan),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        try:
            while True:
                if parent_conn.poll(self.POLL_INTERVAL):
                    try:
                        kind, payload = parent_conn.recv()
                    except (EOFError, OSError):
                        kind = None
                    if kind == "ok":
                        return "ok", payload
                    if kind == "error":
                        return "error", payload
                    # Pipe closed without a message: fall through to the
                    # liveness check below (the child crashed mid-send).
                if not proc.is_alive():
                    # One last poll closes the race between a sent message
                    # and the child's exit.
                    if parent_conn.poll(0):
                        continue
                    return "crash", f"run worker exited with code {proc.exitcode}"
                if deadline is not None and time.monotonic() > deadline:
                    proc.terminate()
                    proc.join(self.TERM_GRACE)
                    if proc.is_alive():  # pragma: no cover - SIGTERM blocked
                        proc.kill()
                        proc.join()
                    return "timeout", (
                        f"run exceeded the {self.timeout:g}s wall-clock timeout"
                    )
                if self._stop.is_set() or self._cancel.is_set():
                    proc.terminate()
                    proc.join(self.TERM_GRACE)
                    return "error", "stopped before completion"
        finally:
            parent_conn.close()
            if not proc.is_alive():
                proc.join()


def _tail_lines(path: str, limit: int) -> str:
    """The last ``limit`` lines of a (possibly missing) text file."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - 64 * 1024))
            data = handle.read()
    except OSError:
        return ""
    text = data.decode("utf-8", errors="replace")
    return "\n".join(text.splitlines()[-limit:])


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with the repro package importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


#: Option keys understood by each backend kind (validated by make_backend).
_BACKEND_OPTIONS = {
    "pool": ("jobs", "chunksize", "build_cache", "cache_size", "batch_seeds", "throttle"),
    "shard": ("shards", "jobs", "chunksize", "build_cache", "batch_seeds", "python"),
    "serial": ("timeout", "isolate"),
    "remote": (
        "hosts",
        "jobs",
        "chunksize",
        "build_cache",
        "batch_seeds",
        "connect_timeout",
        "io_timeout",
        "transport_attempts",
        "host_failures",
        "probation",
    ),
}


def make_backend(
    options: Optional[Mapping[str, Any]] = None,
    fault_plan: Optional[Any] = None,
    host_registry: Optional[Any] = None,
    source: Optional[str] = None,
) -> DispatchBackend:
    """Build a dispatch backend from a plain options mapping.

    ``{"backend": "pool"|"shard"|"serial"|"remote", ...}`` — remaining
    keys are forwarded to the backend constructor; unknown keys raise
    :class:`ValueError` (the service front end surfaces this as a 400
    instead of running a sweep under silently-dropped options), with
    ``source`` naming where the bad option came from (a CLI flag, submit
    options, ...).  ``fault_plan`` is the chaos harness's injection plan
    and ``host_registry`` a shared :class:`~repro.service.remote.HostRegistry`
    for the remote backend — internal parameters threaded by the
    supervisor/service, not option keys.
    """
    options = dict(options or {})
    kind = options.pop("backend", "pool")
    origin = f" (from {source})" if source else ""
    allowed = _BACKEND_OPTIONS.get(kind)
    if allowed is None:
        raise ValueError(
            f"unknown dispatch backend {kind!r}{origin}; expected one of "
            f"{sorted(_BACKEND_OPTIONS)}"
        )
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown option(s) {unknown} for backend {kind!r}{origin}; "
            f"allowed: {sorted(allowed)}"
        )
    if kind == "shard":
        return ShardBackend(fault_plan=fault_plan, **options)
    if kind == "serial":
        return SerialBackend(fault_plan=fault_plan, **options)
    if kind == "remote":
        from repro.service.remote import RemoteBackend, parse_hosts

        hosts = parse_hosts(
            options.pop("hosts", None) or (), source=source or "--hosts"
        )
        return RemoteBackend(
            hosts, registry=host_registry, fault_plan=fault_plan, **options
        )
    return PoolBackend(fault_plan=fault_plan, **options)


def backend_pool_config(options: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Effective backend description for status output and export meta."""
    options = dict(options or {})
    kind = options.get("backend", "pool")
    return {"backend": kind, **{k: v for k, v in options.items() if k != "backend"}}


_ = List  # typing import kept for annotations in docstrings
