"""Checkpointed campaign execution: resume-safe driver over any backend.

:func:`run_checkpointed` is the one entry point the CLI verbs and the
service front end share.  It opens (or creates) the sweep's checkpoint
journal, executes only the pending runs through the chosen dispatch
backend, and delivers the merged campaign to the caller's sinks in
expansion order.  Whether the campaign ran cold, resumed three times, or
was merged from four subprocess shards, the sinks always see the same
records in the same order: a cold run through an order-preserving backend
streams records live (the journal stays write-only), while any merge of
history replays the whole journal in expansion order, verifying every
record's content digest as it is read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.campaign.records import CampaignResult, RunRecord
from repro.campaign.spec import Sweep
from repro.service.backends import DispatchBackend, PoolBackend
from repro.service.journal import CheckpointJournal

__all__ = ["CheckpointOutcome", "run_checkpointed"]


@dataclass
class CheckpointOutcome:
    """What one :func:`run_checkpointed` call did.

    ``resumed`` counts the records found already complete in the journal
    when the call started; ``executed`` counts the runs performed by this
    call.  ``resumed + executed == total`` when ``status`` is
    ``"complete"``; a supervised campaign that quarantined poison runs
    ends ``"partial"`` (the missing indices are in ``quarantined``), and
    a cancelled one ends ``"cancelled"``.
    """

    journal_path: str
    spec_digest: str
    total: int
    resumed: int
    executed: int
    records: Optional[List[RunRecord]] = field(default=None, repr=False)
    status: str = "complete"
    quarantined: List[int] = field(default_factory=list)

    def result(self) -> CampaignResult:
        """The merged records as a :class:`CampaignResult` (needs ``collect``)."""
        if self.records is None:
            raise ValueError("run_checkpointed(..., collect=True) to keep records")
        return CampaignResult(records=list(self.records))


def run_checkpointed(
    sweep: Sweep,
    journal_path: str,
    backend: Optional[DispatchBackend] = None,
    sinks: Sequence[Any] = (),
    meta: Optional[Mapping[str, Any]] = None,
    collect: bool = False,
    on_record: Optional[Callable[[int, RunRecord], None]] = None,
) -> CheckpointOutcome:
    """Run (or resume) a sweep under a checkpoint journal.

    * ``backend`` defaults to a fresh serial :class:`PoolBackend`, closed on
      return; a caller-provided backend is left open (it may be warm and
      shared across campaigns, as in the service front end).
    * ``sinks`` receive every record of the sweep in expansion order during
      the final replay pass, then are closed (mirroring
      :meth:`CampaignRunner.stream`); sinks without a ``close`` are fine.
    * ``on_record`` fires live as *newly executed* runs finish, in backend
      completion order — progress reporting, not output (replayed records
      do not pass through it).
    * ``collect=True`` additionally buffers the merged records in memory
      (:attr:`CheckpointOutcome.records`) — avoid for huge campaigns.
    """
    owns_backend = backend is None
    if backend is None:
        backend = PoolBackend()
    journal = CheckpointJournal.open_or_create(journal_path, sweep, meta=meta)
    try:
        pending = journal.pending_indices()
        resumed = journal.total - len(pending)
        records: Optional[List[RunRecord]] = [] if collect else None
        # Cold run + order-preserving backend: records already arrive in
        # expansion order, so they stream straight into the sinks and the
        # journal stays write-only (the ≤5 % overhead budget).  Any merge
        # of history — a resume, an unordered (shard) backend — takes the
        # digest-verified replay pass instead.
        direct = resumed == 0 and backend.ordered
        try:
            if direct:
                def deliver(index: int, record: RunRecord) -> None:
                    if records is not None:
                        records.append(record)
                    for sink in sinks:
                        sink.write(record)
                    if on_record is not None:
                        on_record(index, record)

                backend.run(sweep, pending, journal, on_record=deliver)
                status, missing = _conclude(journal, journal_path, backend)
            else:
                backend.run(sweep, pending, journal, on_record=on_record)
                status, missing = _conclude(journal, journal_path, backend)
                for index, record in journal.iter_completed():
                    if records is not None:
                        records.append(record)
                    for sink in sinks:
                        sink.write(record)
        finally:
            for sink in sinks:
                close = getattr(sink, "close", None)
                if close is not None:
                    close()
        return CheckpointOutcome(
            journal_path=str(journal_path),
            spec_digest=journal.spec_digest,
            total=journal.total,
            resumed=resumed,
            executed=len(pending) - len(missing),
            records=records,
            status=status,
            quarantined=sorted(getattr(backend, "quarantined", []) or []),
        )
    finally:
        journal.close()
        if owns_backend:
            backend.close()


def _conclude(
    journal: CheckpointJournal, journal_path: str, backend: DispatchBackend
) -> Any:
    """Decide the campaign's terminal status and record it in the journal.

    Every pending run must be accounted for: by completion, by the
    backend's quarantine list (status ``partial``), or by a cancellation
    (status ``cancelled``).  Unexplained gaps stay a hard error — a
    backend silently under-delivering is a bug, not a degraded outcome.
    """
    missing = journal.pending_indices()
    quarantined = set(getattr(backend, "quarantined", []) or [])
    cancelled = bool(getattr(backend, "cancelled", False))
    if not missing:
        status = "complete"
    elif cancelled:
        status = "cancelled"
    elif set(missing) <= quarantined:
        status = "partial"
    else:
        raise RuntimeError(
            f"{journal_path}: backend finished but {len(missing)} run(s) "
            f"have no completion record (first: {missing[0]})"
        )
    journal.append_event(status, missing=len(missing))
    return status, missing


def resume_sweep(journal_path: str) -> Sweep:
    """The sweep a journal belongs to, reconstructed from its header."""
    journal = CheckpointJournal.open(journal_path)
    try:
        return journal.sweep
    finally:
        journal.close()


_ = Dict  # typing import kept for annotations in docstrings
