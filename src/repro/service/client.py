"""Blocking ndjson-over-HTTP client for the campaign service.

Stdlib :mod:`http.client` only — the CLI verbs (``submit``, ``status``)
and the CI smoke test drive the service through this class; tests can
also use it against an in-process :class:`~repro.service.server.CampaignServer`.

Transient transport failures (a dropped connection, a restarting server)
are retried with the supervision layer's exponential backoff before they
surface, so a long ``wait`` loop survives a server blip.  Service-level
errors (:class:`ServiceError`, an HTTP status from a live server) are
never retried — the server answered; retrying would duplicate submits.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered with an error status; carries its message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint; a fresh connection per request (the server
    closes connections after each response).

    ``retries`` bounds transport attempts per request (1 = the old
    fail-fast behaviour).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 30.0,
        retries: int = 3,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = max(1, int(retries))

    # ------------------------------------------------------------- transport
    def _request(self, method: str, target: str, payload: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        from repro.service.supervisor import RetryPolicy

        policy = RetryPolicy(
            max_attempts=self.retries, backoff_base=0.2, backoff_max=2.0
        )
        rng = random.Random(policy.seed)
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self._attempt(method, target, payload)
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                if attempt < policy.max_attempts:
                    time.sleep(policy.backoff(attempt, rng))
        assert last_error is not None
        raise last_error

    def _attempt(self, method: str, target: str, payload: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(
                method, target, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw = response.read().decode("utf-8")
            objects = [json.loads(line) for line in raw.splitlines() if line.strip()]
            if response.status != 200:
                message = objects[0].get("error", raw) if objects else raw
                raise ServiceError(response.status, str(message))
            return objects
        finally:
            connection.close()

    # ----------------------------------------------------------------- verbs
    def submit(
        self,
        sweep_data: Mapping[str, Any],
        options: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a sweep spec; returns ``{"job", "digest", "total", "journal"}``."""
        request: Dict[str, Any] = {"sweep": dict(sweep_data)}
        if options:
            request["options"] = dict(options)
        return self._request("POST", "/submit", request)[0]

    def status(self, job: Optional[str] = None) -> List[Dict[str, Any]]:
        """Snapshots of all jobs, or of one job when ``job`` is given."""
        target = f"/status?job={job}" if job is not None else "/status"
        return self._request("GET", target)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")[0]

    def hosts(self) -> List[Dict[str, Any]]:
        """Remote-dispatch host health rows (empty for local-only services)."""
        return self._request("GET", "/hosts")

    def cancel(self, job: str) -> Dict[str, Any]:
        """Cancel a queued or running job; returns its snapshot."""
        return self._request("DELETE", f"/job/{job}")[0]

    def wait(self, job: str, timeout: float = 120.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its snapshot.

        Terminal states are ``done``, ``partial`` (quarantined runs — check
        the snapshot's ``quarantined`` count) and ``cancelled``.  Raises
        :class:`ServiceError` if the job failed, :class:`TimeoutError` if
        it does not finish in time.
        """
        deadline = time.time() + timeout
        while True:
            snapshot = self.status(job)[0]
            if snapshot["state"] in ("done", "partial", "cancelled"):
                return snapshot
            if snapshot["state"] == "failed":
                raise ServiceError(500, snapshot.get("error") or "job failed")
            if time.time() >= deadline:
                raise TimeoutError(f"job {job} still {snapshot['state']} after {timeout}s")
            time.sleep(poll)
