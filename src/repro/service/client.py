"""Blocking ndjson-over-HTTP client for the campaign service.

Stdlib :mod:`http.client` only — the CLI verbs (``submit``, ``status``)
and the CI smoke test drive the service through this class; tests can
also use it against an in-process :class:`~repro.service.server.CampaignServer`.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service answered with an error status; carries its message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint; a fresh connection per request (the server
    closes connections after each response)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    # ------------------------------------------------------------- transport
    def _request(self, method: str, target: str, payload: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(
                method, target, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw = response.read().decode("utf-8")
            objects = [json.loads(line) for line in raw.splitlines() if line.strip()]
            if response.status != 200:
                message = objects[0].get("error", raw) if objects else raw
                raise ServiceError(response.status, str(message))
            return objects
        finally:
            connection.close()

    # ----------------------------------------------------------------- verbs
    def submit(
        self,
        sweep_data: Mapping[str, Any],
        options: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a sweep spec; returns ``{"job", "digest", "total", "journal"}``."""
        request: Dict[str, Any] = {"sweep": dict(sweep_data)}
        if options:
            request["options"] = dict(options)
        return self._request("POST", "/submit", request)[0]

    def status(self, job: Optional[str] = None) -> List[Dict[str, Any]]:
        """Snapshots of all jobs, or of one job when ``job`` is given."""
        target = f"/status?job={job}" if job is not None else "/status"
        return self._request("GET", target)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")[0]

    def cancel(self, job: str) -> Dict[str, Any]:
        """Cancel a queued or running job; returns its snapshot."""
        return self._request("DELETE", f"/job/{job}")[0]

    def wait(self, job: str, timeout: float = 120.0, poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its snapshot.

        Terminal states are ``done``, ``partial`` (quarantined runs — check
        the snapshot's ``quarantined`` count) and ``cancelled``.  Raises
        :class:`ServiceError` if the job failed, :class:`TimeoutError` if
        it does not finish in time.
        """
        deadline = time.time() + timeout
        while True:
            snapshot = self.status(job)[0]
            if snapshot["state"] in ("done", "partial", "cancelled"):
                return snapshot
            if snapshot["state"] == "failed":
                raise ServiceError(500, snapshot.get("error") or "job failed")
            if time.time() >= deadline:
                raise TimeoutError(f"job {job} still {snapshot['state']} after {timeout}s")
            time.sleep(poll)
