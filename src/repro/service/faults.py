"""Deterministic fault injection for the campaign supervision layer.

A :class:`FaultPlan` is a declarative list of faults to inject at exact,
reproducible points of a campaign — the test harness behind the chaos
matrix: any injected fault sequence must still yield results bit-identical
to an undisturbed run (or an explicit ``partial`` outcome with a populated
quarantine file), never a hang and never an unhandled traceback.

Fault kinds
-----------
Worker-side faults match on *scenario content* (the master seed, plus any
scenario field or parameter), because run identity is a pure function of
the scenario — the same plan fires at the same run regardless of worker
count, sharding or dispatch order:

* ``crash`` — the worker process ``os._exit``'s mid-run (a segfault
  stand-in); fires only inside marked worker processes (pool workers,
  shard workers, probe children), never in the supervising process.
* ``hang`` — the run sleeps ``hang_s`` seconds before proceeding, so a
  configured per-run timeout sees a wedged worker.
* ``poison`` — the run raises :class:`InjectedPoisonError` on *every*
  attempt: the quarantine path's test vector.

Parent-side faults fire in the supervising process:

* ``torn-tail`` — after ``after`` journal appends, a torn (newline-less)
  fragment is written to the journal and the attempt aborts, exactly as a
  crash between ``write`` and ``fsync`` would leave the file.
* ``drop-http`` — the campaign server closes one connection before
  writing its response.

Network faults target the remote dispatch path (see
:mod:`repro.service.remote`); ``drop-stream``/``partition`` fire in the
dispatching process, ``slow-link``/``agent-crash`` in the agent:

* ``drop-stream@after=N`` — the dispatcher tears down a shard's journal
  stream after ``N`` merged lines, mid-chunk, as a dropped TCP link
  would; the transport retry must resume at the byte offset.
* ``partition:<host>`` — connections towards ``host`` (``HOST:PORT``;
  omit for any host) fail ``after`` times (default 1) as if the network
  were partitioned, exercising host quarantine and slice reassignment.
* ``slow-link:<secs>`` — the agent stalls chunk delivery for ``secs``
  while the shard worker keeps running (heartbeats still flow), probing
  that slow links do not false-trip ``run_timeout`` watchdogs.
* ``agent-crash@shard=K`` — the agent process ``os._exit``'s before
  starting shard ``K`` (a dead box stand-in).

One-shot faults (every kind except ``poison``) fire exactly once per
campaign *across processes*: firing requires atomically claiming a marker
file (``O_CREAT | O_EXCL``) under the plan's scratch directory, so two
workers racing on the same fault cannot both inject it, and a retried run
re-executes clean.

Plans are plain data — picklable into pool initializers, JSON-able into
shard job documents — and are parsed from a compact CLI spec::

    crash@seed=3;hang:30@seed=5;poison@seed=7,delta=50.0;torn@after=12;drop-http
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "InjectedPoisonError",
    "active_plan",
    "in_worker_process",
    "install",
    "mark_worker_process",
]

#: Exit status of an injected worker crash (distinctive in shard stderr).
CRASH_EXIT_STATUS = 86

#: Fault kinds consulted by worker processes (scenario-matched).
WORKER_KINDS = ("crash", "hang", "poison")

#: Fault kinds consulted by the supervising / serving process.
PARENT_KINDS = ("torn-tail", "drop-http")

#: Fault kinds consulted by the remote dispatch transport (dispatcher or
#: agent side; never inside a simulation run).
NETWORK_KINDS = ("drop-stream", "partition", "slow-link", "agent-crash")


class InjectedFault(RuntimeError):
    """An injected (deliberate) fault — raised only under a fault plan."""


class InjectedPoisonError(InjectedFault):
    """A poison run's failure: raised on every attempt of the matched run."""


@dataclass(frozen=True)
class Fault:
    """One fault: what to inject, and exactly where.

    ``match`` keys name scenario fields (``seed``, ``mac``,
    ``propagation``, ``experiment``) or parameters (anything else); a
    fault matches when every given key equals the scenario's value.
    ``torn-tail`` and ``drop-http`` ignore ``match``.
    """

    kind: str
    match: Tuple[Tuple[str, Any], ...] = ()
    hang_s: float = 30.0
    after: int = 1  # torn-tail: journal appends before the tear

    def __post_init__(self) -> None:
        if self.kind not in WORKER_KINDS + PARENT_KINDS + NETWORK_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{WORKER_KINDS + PARENT_KINDS + NETWORK_KINDS}"
            )
        if self.kind in WORKER_KINDS and not self.match:
            raise ValueError(f"{self.kind} fault needs a match (e.g. {self.kind}@seed=3)")
        if self.kind == "agent-crash" and not self.match:
            raise ValueError("agent-crash fault needs a match (e.g. agent-crash@shard=0)")

    @property
    def once(self) -> bool:
        """Whether the fault fires at most once per campaign (all but poison)."""
        return self.kind != "poison"

    def matches(self, scenario: Any) -> bool:
        for key, value in self.match:
            if key in ("seed", "mac", "propagation", "experiment"):
                if getattr(scenario, key, None) != value:
                    return False
            elif scenario.params.get(key) != value:
                return False
        return True

    def label(self) -> str:
        match = ",".join(f"{k}={v}" for k, v in self.match)
        return f"{self.kind}[{match}]" if match else self.kind

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "match": [list(pair) for pair in self.match],
            "hang_s": self.hang_s,
            "after": self.after,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Fault":
        return cls(
            kind=str(data["kind"]),
            match=tuple((str(k), v) for k, v in data.get("match", ())),
            hang_s=float(data.get("hang_s", 30.0)),
            after=int(data.get("after", 1)),
        )


@dataclass
class FaultPlan:
    """A reproducible set of faults plus the scratch dir for one-shot markers.

    ``scratch`` is bound by the supervisor (beside the campaign journal)
    before the plan is shipped to workers, so the exactly-once markers are
    shared by every process of the campaign.  An unbound plan falls back
    to in-process one-shot tracking (fine for single-process use).
    """

    faults: List[Fault] = field(default_factory=list)
    scratch: Optional[str] = None

    def __post_init__(self) -> None:
        self._fired: set = set()  # in-process fallback for unbound plans

    # -------------------------------------------------------------- binding
    def bind(self, scratch: str) -> "FaultPlan":
        """Attach (and create) the marker directory; returns self."""
        os.makedirs(scratch, exist_ok=True)
        self.scratch = scratch
        return self

    def _claim(self, slot: Any) -> bool:
        """Atomically claim one-shot fault ``slot``; True exactly once."""
        if self.scratch is None:
            if slot in self._fired:
                return False
            self._fired.add(slot)
            return True
        marker = os.path.join(self.scratch, f"fault_{slot}.fired")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            return False
        except OSError:
            # Scratch vanished (campaign cleanup racing a straggler):
            # swallow the fault rather than crash the worker for real.
            return False

    # ------------------------------------------------------- worker faults
    def check_scenario(self, scenario: Any) -> None:
        """Worker-side hook: inject any matching crash/hang/poison fault.

        Called by :func:`repro.campaign.runner.execute_scenario` when a
        plan is installed.  ``crash`` fires only in marked worker
        processes — in the supervising process it is skipped (killing the
        supervisor is outside the fault model; a parent crash is covered
        by the kill -9 resume tests).
        """
        for slot, fault in enumerate(self.faults):
            if fault.kind not in WORKER_KINDS or not fault.matches(scenario):
                continue
            if fault.kind == "poison":
                raise InjectedPoisonError(
                    f"injected poison fault at {fault.label()}"
                )
            if fault.kind == "crash" and not in_worker_process():
                continue
            if not self._claim(slot):
                continue
            if fault.kind == "crash":
                os._exit(CRASH_EXIT_STATUS)
            time.sleep(fault.hang_s)  # hang

    # ------------------------------------------------------- parent faults
    def take_torn_tail(self, appended: int) -> bool:
        """True when a torn-tail fault should fire after ``appended`` appends."""
        for slot, fault in enumerate(self.faults):
            if fault.kind == "torn-tail" and appended >= fault.after:
                if self._claim(slot):
                    return True
        return False

    def take_drop_http(self) -> bool:
        """True when the server should drop the current connection."""
        for slot, fault in enumerate(self.faults):
            if fault.kind == "drop-http" and self._claim(slot):
                return True
        return False

    # ------------------------------------------------------ network faults
    def take_drop_stream(self, streamed: int) -> bool:
        """True when a remote journal stream should drop after ``streamed`` lines."""
        for slot, fault in enumerate(self.faults):
            if fault.kind == "drop-stream" and streamed >= fault.after:
                if self._claim(slot):
                    return True
        return False

    def take_partition(self, host: str) -> bool:
        """True when a connection towards ``host`` should fail as partitioned.

        A partition fires ``after`` times (default 1) so it can outlast a
        transport retry budget and force host quarantine; an empty match
        partitions whichever host connects first.
        """
        for slot, fault in enumerate(self.faults):
            if fault.kind != "partition":
                continue
            target = dict(fault.match).get("host")
            if target is not None and str(target) != host:
                continue
            for shot in range(max(1, fault.after)):
                if self._claim(f"{slot}_p{shot}"):
                    return True
        return False

    def take_slow_link(self) -> Optional[float]:
        """Stall seconds for the agent's next chunk delivery, or None."""
        for slot, fault in enumerate(self.faults):
            if fault.kind == "slow-link" and self._claim(slot):
                return fault.hang_s
        return None

    def take_agent_crash(self, shard: Any) -> bool:
        """True when the agent should die before starting ``shard``."""
        for slot, fault in enumerate(self.faults):
            if fault.kind != "agent-crash":
                continue
            if dict(fault.match).get("shard") != shard:
                continue
            if self._claim(slot):
                return True
        return False

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults": [fault.to_dict() for fault in self.faults],
            "scratch": self.scratch,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults=[Fault.from_dict(item) for item in data.get("faults", ())],
            scratch=data.get("scratch"),
        )

    def __getstate__(self) -> Dict[str, Any]:
        return self.to_dict()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        plan = FaultPlan.from_dict(state)
        self.faults = plan.faults
        self.scratch = plan.scratch
        self._fired = set()

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the CLI fault grammar (see the module docstring).

        Entries are semicolon-separated: ``kind[:arg][@key=value,...]``.
        The ``:arg`` is ``hang_s`` for ``hang``/``slow-link``, ``after``
        for ``torn``/``torn-tail``/``drop-stream``, and the target host
        for ``partition`` (``partition:HOST:PORT``).
        """
        faults: List[Fault] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            head, _, match_text = entry.partition("@")
            kind, _, arg = head.partition(":")
            kind = {"torn": "torn-tail"}.get(kind.strip(), kind.strip())
            match: List[Tuple[str, Any]] = []
            for pair in match_text.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, sep, value = pair.partition("=")
                if not sep or not key or not value:
                    raise ValueError(f"fault match expects KEY=VALUE, got {pair!r}")
                match.append((key, _parse_value(value)))
            kwargs: Dict[str, Any] = {"kind": kind, "match": tuple(match)}
            if arg:
                if kind in ("hang", "slow-link"):
                    kwargs["hang_s"] = float(arg)
                elif kind in ("torn-tail", "drop-stream"):
                    kwargs["after"] = int(arg)
                elif kind == "partition":
                    kwargs["match"] = tuple(match) + (("host", arg),)
                else:
                    raise ValueError(f"fault kind {kind!r} takes no :argument")
            if kind in ("torn-tail", "drop-stream", "partition") and "after" in dict(
                match
            ):
                promoted = dict(match)
                kwargs["after"] = int(promoted.pop("after"))
                kwargs["match"] = tuple(
                    pair for pair in kwargs["match"] if pair[0] != "after"
                )
            faults.append(Fault(**kwargs))
        if not faults:
            raise ValueError(f"fault spec {spec!r} declares no faults")
        return cls(faults=faults)


def _parse_value(text: str) -> Any:
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


# ------------------------------------------------------------ installation
#: The process-wide active plan; consulted through the campaign runner's
#: fault hook (zero overhead when no plan is installed).
_ACTIVE: Optional[FaultPlan] = None

#: True in processes that may be killed by ``crash`` faults.
_IS_WORKER = False


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (None uninstalls) and hook the runner."""
    global _ACTIVE
    _ACTIVE = plan
    from repro.campaign import runner

    runner.FAULT_HOOK = plan.check_scenario if plan is not None else None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def mark_worker_process() -> None:
    """Declare this process expendable: ``crash`` faults may kill it."""
    global _IS_WORKER
    _IS_WORKER = True


def in_worker_process() -> bool:
    return _IS_WORKER
