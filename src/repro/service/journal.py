"""Append-only checkpoint journal: crash-safe progress for long campaigns.

A :class:`CheckpointJournal` is one JSONL file per campaign:

* line 1 — the **manifest header**: journal format version, the sweep's
  canonical dictionary, its spec digest and the total run count;
* completion lines — one per finished run: the run's expansion index,
  its serialised :class:`~repro.campaign.records.RunRecord` and a
  content digest of that serialisation;
* event lines — ``{"event": {"kind": ...}}`` structured audit records
  (retries, backend fallbacks, quarantines, the campaign's terminal
  ``partial``/``cancelled``/``complete`` status, sealed segments).

Writes are atomic per line (one buffered ``write`` of the whole line,
flushed before returning), so a crash can tear at most the final line —
and :meth:`open` detects a torn tail (unparseable last line) and discards
it with a warning instead of failing, via the same tolerant reader that
backs :func:`repro.campaign.frame.iter_jsonl`.  A torn record is simply
re-run on resume.  ``close`` fsyncs, so a cleanly closed journal is
durable.

Resume never trusts position: :meth:`pending_indices` recomputes the
unfinished set from the indices actually present, so journals whose
completions arrived out of expansion order (shard merges, multiple resume
sessions) resume exactly as well as straight-line ones.  :meth:`replay`
re-reads a record by seeking its byte offset and verifies its content
digest, so corrupted mid-file lines surface as errors rather than as
silently-wrong merged results.

Long-running campaigns call :meth:`compact`: the contiguous completed
prefix is rewritten into a read-only *sealed segment* file beside the
journal (``<journal>.seg<N>``) and the active journal shrinks to header
+ events + the still-sparse remainder, so multi-million-run journals
stop growing unbounded.  Sealed segments record their index range in a
``sealed`` event; their offset tables are loaded lazily, on the first
:meth:`replay` into the segment.
"""

from __future__ import annotations

import io
import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.campaign.frame import iter_jsonl_objects
from repro.campaign.records import RunRecord
from repro.campaign.spec import Sweep
from repro.service.manifest import payload_digest, record_digest, sweep_digest

__all__ = [
    "CheckpointJournal",
    "JournalError",
    "SweepMismatchError",
    "verify_completion",
]

#: Journal file format version (the header's ``version`` field).
JOURNAL_VERSION = 1

#: Event kinds that set the campaign's terminal status (last one wins).
_STATUS_KINDS = ("complete", "partial", "cancelled")


class JournalError(ValueError):
    """A journal file is missing, corrupt, or structurally invalid."""


class SweepMismatchError(JournalError):
    """A journal belongs to a different sweep than the one being resumed."""


def verify_completion(
    data: Mapping[str, Any], path: str = "<stream>"
) -> Tuple[int, RunRecord]:
    """Digest-verify one parsed completion payload, wherever it came from.

    The single trust gate for completion records: local replay and the
    remote journal stream merge both go through it, so a record crossing
    a network link gets exactly the verification a local re-read does.
    Returns ``(index, record)``; raises :class:`JournalError` on a
    malformed payload or a content digest mismatch.
    """
    try:
        index = int(data["index"])
        record_data = data["record"]
    except (KeyError, TypeError, ValueError):
        raise JournalError(f"{path}: malformed completion record") from None
    if record_digest(record_data) != data.get("digest"):
        raise JournalError(
            f"{path}: digest mismatch for run {index} — journal "
            "corrupted, delete it and re-run"
        )
    return index, RunRecord.from_dict(record_data)


class CheckpointJournal:
    """One campaign's manifest header plus per-run completion records.

    Construct through :meth:`create`, :meth:`open` or
    :meth:`open_or_create`; use as a context manager or call
    :meth:`close` (flush + fsync) when done.  Memory is O(active
    completed runs) *integers* — record payloads stay on disk and are
    re-read by offset on :meth:`replay`, and sealed segments cost O(1)
    until first replayed into.
    """

    def __init__(self, path: str, header: Dict[str, Any], offsets: Dict[int, int]) -> None:
        self.path = str(path)
        self._header = header
        self._offsets = offsets
        self._append_handle: Optional[io.BufferedWriter] = None
        self._read_handle: Optional[io.BufferedReader] = None
        self._sweep: Optional[Sweep] = None
        #: When open() discarded a torn tail, the byte offset the next
        #: append must truncate to first — the torn fragment has no
        #: newline, so appending behind it would glue two lines together.
        self._truncate_to: Optional[int] = None
        #: Parsed event payloads, in file order.
        self._events: List[Dict[str, Any]] = []
        #: Sealed segments as (lo, hi, filename) in seal order; always
        #: contiguous from 0, so sealed coverage is [0, _sealed_hi).
        self._segments: List[Tuple[int, int, str]] = []
        self._sealed_hi = 0
        #: Lazily-built per-segment offset tables and read handles,
        #: keyed by segment filename.
        self._segment_offsets: Dict[str, Dict[int, int]] = {}
        self._segment_handles: Dict[str, io.BufferedReader] = {}

    # ------------------------------------------------------------ creation
    @classmethod
    def create(
        cls, path: str, sweep: Sweep, meta: Optional[Mapping[str, Any]] = None
    ) -> "CheckpointJournal":
        """Start a fresh journal for the sweep (overwrites an existing file)."""
        header = {
            "checkpoint": {
                "version": JOURNAL_VERSION,
                "spec_digest": sweep_digest(sweep),
                "total": sweep.size,
                "sweep": sweep.to_dict(),
                "meta": dict(meta) if meta else {},
            }
        }
        journal = cls(path, header["checkpoint"], {})
        with open(path, "wb") as handle:
            handle.write(_encode_line(header))
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def open(cls, path: str, sweep: Optional[Sweep] = None) -> "CheckpointJournal":
        """Load an existing journal: header + completed-run offsets + events.

        A truncated final line is discarded (with a warning); any other
        malformed content raises :class:`JournalError`.  When ``sweep`` is
        given, its spec digest must match the journal's —
        :class:`SweepMismatchError` otherwise, so a resume can never mix
        records of two different campaigns.
        """
        offsets: Dict[int, int] = {}
        events: List[Dict[str, Any]] = []
        header: Optional[Dict[str, Any]] = None
        offset = 0
        with open(path, "rb") as handle:
            # Track byte offsets by line length; iterate raw lines and
            # parse through the shared tolerant reader semantics inline
            # (we need offsets, which iter_jsonl_objects cannot provide).
            lines = handle.readlines()
        torn_tail = 0
        if lines and not lines[-1].endswith(b"\n"):
            # A final line missing its newline is a torn append even when
            # its JSON happens to parse: appending behind it would glue
            # two lines together.  Discard it — the run (or event) it
            # carried is simply redone, bit-identically.
            torn_tail = len(lines[-1])
            warnings.warn(
                f"{path}: skipping truncated trailing line "
                f"({torn_tail} bytes) — likely a crash mid-write",
                RuntimeWarning,
            )
            lines = lines[:-1]
        try:
            parsed = list(iter_jsonl_objects(_decoded(lines), source=str(path)))
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"{path}: corrupt journal line {exc.lineno}: {exc.msg} — only "
                "the *final* line may be torn (crash mid-write); mid-file "
                "corruption cannot be resumed from"
            ) from None
        size = sum(len(raw) for raw in lines) + torn_tail
        consumed = 0
        for raw in lines:
            if consumed >= len(parsed):
                break  # tail line(s) discarded by the tolerant reader
            if not raw.strip():
                offset += len(raw)
                continue
            data = parsed[consumed]
            consumed += 1
            if header is None:
                if not isinstance(data, dict) or "checkpoint" not in data:
                    raise JournalError(
                        f"{path}: first line is not a checkpoint header"
                    )
                header = data["checkpoint"]
                if header.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"{path}: unsupported journal version {header.get('version')!r}"
                    )
            elif isinstance(data, dict) and "event" in data:
                event = data["event"]
                if not isinstance(event, dict) or "kind" not in event:
                    raise JournalError(
                        f"{path}: malformed event line at byte {offset}"
                    )
                events.append(event)
            else:
                try:
                    index = int(data["index"])
                except (KeyError, TypeError, ValueError):
                    raise JournalError(
                        f"{path}: malformed completion record at byte {offset}"
                    ) from None
                offsets[index] = offset
            offset += len(raw)
        if header is None:
            raise JournalError(f"{path}: no readable checkpoint header")
        journal = cls(path, header, offsets)
        journal._events = events
        journal._load_segments(events)
        if offset < size:
            journal._truncate_to = offset
        if sweep is not None and sweep_digest(sweep) != journal.spec_digest:
            raise SweepMismatchError(
                f"{path}: journal was written for spec {journal.spec_digest[:12]}, "
                f"not {sweep_digest(sweep)[:12]} — refusing to mix campaigns"
            )
        return journal

    @classmethod
    def open_or_create(
        cls, path: str, sweep: Sweep, meta: Optional[Mapping[str, Any]] = None
    ) -> "CheckpointJournal":
        """Open ``path`` if it holds a journal for this sweep, else create one."""
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return cls.open(path, sweep=sweep)
        return cls.create(path, sweep, meta=meta)

    def _load_segments(self, events: List[Dict[str, Any]]) -> None:
        """Rebuild the sealed-segment table from ``sealed`` events."""
        self._segments = []
        self._sealed_hi = 0
        for event in events:
            if event.get("kind") != "sealed":
                continue
            lo, hi = int(event["lo"]), int(event["hi"])
            if lo != self._sealed_hi:
                raise JournalError(
                    f"{self.path}: sealed segments are not contiguous "
                    f"(expected lo={self._sealed_hi}, got {lo})"
                )
            self._segments.append((lo, hi, str(event["segment"])))
            self._sealed_hi = hi

    # ------------------------------------------------------------ identity
    @property
    def spec_digest(self) -> str:
        return self._header["spec_digest"]

    @property
    def total(self) -> int:
        return int(self._header["total"])

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self._header.get("meta", {}))

    @property
    def sweep(self) -> Sweep:
        """The journal's sweep, reconstructed from the manifest header."""
        if self._sweep is None:
            self._sweep = Sweep.from_dict(self._header["sweep"])
        return self._sweep

    # -------------------------------------------------------------- events
    @property
    def events(self) -> List[Dict[str, Any]]:
        """All structured event payloads, in write order."""
        return list(self._events)

    @property
    def status(self) -> Optional[str]:
        """The campaign's recorded terminal status, if any (last wins)."""
        for event in reversed(self._events):
            kind = event.get("kind")
            if kind in _STATUS_KINDS:
                return kind
        return None

    def append_event(self, kind: str, **data: Any) -> None:
        """Append one structured event line (audit trail, not a completion)."""
        event = {"kind": str(kind), **data}
        handle = self._appender()
        handle.write(_encode_line({"event": event}))
        handle.flush()
        self._events.append(event)

    # ------------------------------------------------------------ progress
    def completed_indices(self) -> Set[int]:
        done = set(self._offsets)
        done.update(range(self._sealed_hi))
        return done

    def pending_indices(self) -> List[int]:
        """Expansion indices with no completion record yet, sorted."""
        return [
            index
            for index in range(self._sealed_hi, self.total)
            if index not in self._offsets
        ]

    def __contains__(self, index: int) -> bool:
        return index < self._sealed_hi or index in self._offsets

    def __len__(self) -> int:
        return self._sealed_hi + len(self._offsets)

    # ------------------------------------------------------------- writing
    def append(self, index: int, record: RunRecord) -> None:
        """Append one completion record; atomic per line, flushed on return."""
        index = int(index)
        if not 0 <= index < self.total:
            raise ValueError(f"run index {index} outside [0, {self.total})")
        if index < self._sealed_hi:
            raise ValueError(
                f"run index {index} is sealed (compacted into a segment); "
                "sealed completions are immutable"
            )
        # Hot path: one canonical serialisation, digested as written —
        # json.loads + record_digest at replay reproduces the same digest.
        # Key order (digest < index < record) matches sort_keys output.
        payload = json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
        line = (
            f'{{"digest":"{payload_digest(payload)}","index":{index},'
            f'"record":{payload}}}\n'
        ).encode("utf-8")
        handle = self._appender()
        offset = handle.tell()
        handle.write(line)
        handle.flush()
        self._offsets[index] = offset

    def _appender(self) -> io.BufferedWriter:
        if self._append_handle is None:
            if self._truncate_to is not None:
                handle = open(self.path, "r+b")
                handle.seek(self._truncate_to)
                handle.truncate()
                self._append_handle = handle
                self._truncate_to = None
            else:
                self._append_handle = open(self.path, "ab")
        return self._append_handle

    # ------------------------------------------------------------- reading
    def replay(self, index: int) -> RunRecord:
        """Re-read one completed record by offset, verifying its digest."""
        index = int(index)
        if index < self._sealed_hi:
            return self._replay_sealed(index)
        try:
            offset = self._offsets[index]
        except KeyError:
            raise KeyError(
                f"{self.path}: run {index} has no completion record"
            ) from None
        # Appends since the last replay must be visible: the reader is
        # reopened lazily and appends always flush, so a plain seek works.
        if self._read_handle is None:
            self._read_handle = open(self.path, "rb")
        self._read_handle.seek(offset)
        raw = self._read_handle.readline()
        return self._decode_completion(raw, index, offset, self.path)

    def _decode_completion(
        self, raw: bytes, index: int, offset: int, path: str
    ) -> RunRecord:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            raise JournalError(
                f"{path}: corrupt completion record for run {index} "
                f"at byte {offset}"
            ) from None
        if int(data.get("index", -1)) != int(index):
            raise JournalError(
                f"{path}: offset table out of sync at run {index}"
            )
        _, record = verify_completion(data, path=path)
        return record

    def _segment_path(self, name: str) -> str:
        return os.path.join(os.path.dirname(os.path.abspath(self.path)), name)

    def _replay_sealed(self, index: int) -> RunRecord:
        for lo, hi, name in self._segments:
            if lo <= index < hi:
                break
        else:  # pragma: no cover - guarded by _sealed_hi
            raise KeyError(f"{self.path}: run {index} has no completion record")
        path = self._segment_path(name)
        if name not in self._segment_offsets:
            self._segment_offsets[name] = _scan_segment(
                path, lo, hi, self.spec_digest
            )
        offsets = self._segment_offsets[name]
        if name not in self._segment_handles:
            self._segment_handles[name] = open(path, "rb")
        handle = self._segment_handles[name]
        offset = offsets[index]
        handle.seek(offset)
        return self._decode_completion(handle.readline(), index, offset, path)

    def iter_completed(self) -> Iterator[Tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every completion, in index order."""
        for index in range(self._sealed_hi):
            yield index, self._replay_sealed(index)
        for index in sorted(self._offsets):
            yield index, self.replay(index)

    # ---------------------------------------------------------- compaction
    def compact(self, min_runs: int = 1) -> Optional[str]:
        """Seal the contiguous completed prefix into a segment file.

        Completion lines for indices ``[sealed_hi, k)`` — the longest
        contiguous run of completions extending the already-sealed
        prefix — are copied verbatim into ``<journal>.seg<N>`` (written
        and fsynced before the journal references it), then the active
        journal is atomically rewritten without them: header, preserved
        events, a new ``sealed`` event, and the remaining out-of-prefix
        completions.  Returns the segment path, or ``None`` when fewer
        than ``min_runs`` indices are sealable (nothing is touched).

        Replays of sealed indices keep working transparently; their
        offset tables load lazily on first use.  Compaction is safe at
        any point between dispatch batches — it never discards a
        committed record, only relocates it.
        """
        new_hi = self._sealed_hi
        while new_hi in self._offsets:
            new_hi += 1
        if new_hi - self._sealed_hi < max(1, int(min_runs)):
            return None
        lo = self._sealed_hi
        seg_name = f"{os.path.basename(self.path)}.seg{len(self._segments)}"
        seg_path = self._segment_path(seg_name)
        self.close()
        with open(self.path, "rb") as source:
            raw_lines = {
                index: _read_line_at(source, self._offsets[index])
                for index in self._offsets
            }
        with open(seg_path, "wb") as segment:
            segment.write(
                _encode_line(
                    {
                        "segment": {
                            "version": JOURNAL_VERSION,
                            "spec_digest": self.spec_digest,
                            "lo": lo,
                            "hi": new_hi,
                        }
                    }
                )
            )
            for index in range(lo, new_hi):
                segment.write(raw_lines[index])
            segment.flush()
            os.fsync(segment.fileno())
        sealed_event = {"kind": "sealed", "segment": seg_name, "lo": lo, "hi": new_hi}
        tmp_path = self.path + ".compact.tmp"
        with open(tmp_path, "wb") as tmp:
            tmp.write(_encode_line({"checkpoint": self._header}))
            for event in self._events:
                tmp.write(_encode_line({"event": event}))
            tmp.write(_encode_line({"event": sealed_event}))
            for index in sorted(self._offsets):
                if index >= new_hi:
                    tmp.write(raw_lines[index])
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, self.path)
        self.reload()
        return seg_path

    # ------------------------------------------------------------ lifecycle
    def reload(self) -> None:
        """Re-scan the file on disk and adopt its state (offsets, events).

        Used after an external process (a shard merge) or a recovery
        step (torn-tail discard after a failed attempt) may have changed
        the file behind this instance's back.
        """
        self.close()
        fresh = CheckpointJournal.open(self.path)
        self._header = fresh._header
        self._offsets = fresh._offsets
        self._events = fresh._events
        self._segments = fresh._segments
        self._sealed_hi = fresh._sealed_hi
        self._truncate_to = fresh._truncate_to
        self._segment_offsets = {}
        self._sweep = None

    def close(self) -> None:
        """Flush + fsync the append handle and release file handles."""
        if self._append_handle is not None:
            self._append_handle.flush()
            try:
                os.fsync(self._append_handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._append_handle.close()
            self._append_handle = None
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None
        for handle in self._segment_handles.values():
            handle.close()
        self._segment_handles = {}

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CheckpointJournal(path={self.path!r}, "
            f"done={len(self)}/{self.total})"
        )


def _encode_line(data: Mapping[str, Any]) -> bytes:
    return (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")


def _decoded(lines: List[bytes]) -> Iterator[str]:
    for raw in lines:
        yield raw.decode("utf-8", errors="replace")


def _read_line_at(handle: io.BufferedReader, offset: int) -> bytes:
    handle.seek(offset)
    return handle.readline()


def _scan_segment(path: str, lo: int, hi: int, spec_digest: str) -> Dict[int, int]:
    """Build a sealed segment's index → byte-offset table (lazy, on demand)."""
    offsets: Dict[int, int] = {}
    offset = 0
    header: Optional[Dict[str, Any]] = None
    try:
        handle = open(path, "rb")
    except OSError as exc:
        raise JournalError(f"{path}: sealed segment unreadable: {exc}") from None
    with handle:
        for raw in handle:
            try:
                data = json.loads(raw)
            except json.JSONDecodeError:
                raise JournalError(
                    f"{path}: corrupt sealed segment at byte {offset} — "
                    "segments are immutable; restore from backup or re-run"
                ) from None
            if header is None:
                if not isinstance(data, dict) or "segment" not in data:
                    raise JournalError(f"{path}: first line is not a segment header")
                header = data["segment"]
                if (
                    header.get("version") != JOURNAL_VERSION
                    or header.get("spec_digest") != spec_digest
                    or int(header.get("lo", -1)) != lo
                    or int(header.get("hi", -1)) != hi
                ):
                    raise JournalError(
                        f"{path}: segment header does not match the journal's "
                        f"sealed event (expected [{lo}, {hi}) of {spec_digest[:12]})"
                    )
            else:
                offsets[int(data["index"])] = offset
            offset += len(raw)
    if header is None or set(offsets) != set(range(lo, hi)):
        raise JournalError(
            f"{path}: sealed segment incomplete — expected runs [{lo}, {hi})"
        )
    return offsets
