"""Append-only checkpoint journal: crash-safe progress for long campaigns.

A :class:`CheckpointJournal` is one JSONL file per campaign:

* line 1 — the **manifest header**: journal format version, the sweep's
  canonical dictionary, its spec digest and the total run count;
* every further line — one **completion record**: the run's expansion
  index, its serialised :class:`~repro.campaign.records.RunRecord` and a
  content digest of that serialisation.

Writes are atomic per line (one buffered ``write`` of the whole line,
flushed before returning), so a crash can tear at most the final line —
and :meth:`open` detects a torn tail (unparseable last line) and discards
it with a warning instead of failing, via the same tolerant reader that
backs :func:`repro.campaign.frame.iter_jsonl`.  A torn record is simply
re-run on resume.  ``close`` fsyncs, so a cleanly closed journal is
durable.

Resume never trusts position: :meth:`pending_indices` recomputes the
unfinished set from the indices actually present, so journals whose
completions arrived out of expansion order (shard merges, multiple resume
sessions) resume exactly as well as straight-line ones.  :meth:`replay`
re-reads a record by seeking its byte offset and verifies its content
digest, so corrupted mid-file lines surface as errors rather than as
silently-wrong merged results.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.campaign.frame import iter_jsonl_objects
from repro.campaign.records import RunRecord
from repro.campaign.spec import Sweep
from repro.service.manifest import payload_digest, record_digest, sweep_digest

__all__ = ["CheckpointJournal", "JournalError", "SweepMismatchError"]

#: Journal file format version (the header's ``version`` field).
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file is missing, corrupt, or structurally invalid."""


class SweepMismatchError(JournalError):
    """A journal belongs to a different sweep than the one being resumed."""


class CheckpointJournal:
    """One campaign's manifest header plus per-run completion records.

    Construct through :meth:`create`, :meth:`open` or
    :meth:`open_or_create`; use as a context manager or call
    :meth:`close` (flush + fsync) when done.  Memory is O(completed
    runs) *integers* — record payloads stay on disk and are re-read by
    offset on :meth:`replay`.
    """

    def __init__(self, path: str, header: Dict[str, Any], offsets: Dict[int, int]) -> None:
        self.path = str(path)
        self._header = header
        self._offsets = offsets
        self._append_handle: Optional[io.BufferedWriter] = None
        self._read_handle: Optional[io.BufferedReader] = None
        self._sweep: Optional[Sweep] = None
        #: When open() discarded a torn tail, the byte offset the next
        #: append must truncate to first — the torn fragment has no
        #: newline, so appending behind it would glue two lines together.
        self._truncate_to: Optional[int] = None

    # ------------------------------------------------------------ creation
    @classmethod
    def create(
        cls, path: str, sweep: Sweep, meta: Optional[Mapping[str, Any]] = None
    ) -> "CheckpointJournal":
        """Start a fresh journal for the sweep (overwrites an existing file)."""
        header = {
            "checkpoint": {
                "version": JOURNAL_VERSION,
                "spec_digest": sweep_digest(sweep),
                "total": sweep.size,
                "sweep": sweep.to_dict(),
                "meta": dict(meta) if meta else {},
            }
        }
        journal = cls(path, header["checkpoint"], {})
        with open(path, "wb") as handle:
            handle.write(_encode_line(header))
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def open(cls, path: str, sweep: Optional[Sweep] = None) -> "CheckpointJournal":
        """Load an existing journal: header + completed-run offsets.

        A truncated final line is discarded (with a warning); any other
        malformed content raises :class:`JournalError`.  When ``sweep`` is
        given, its spec digest must match the journal's —
        :class:`SweepMismatchError` otherwise, so a resume can never mix
        records of two different campaigns.
        """
        offsets: Dict[int, int] = {}
        header: Optional[Dict[str, Any]] = None
        offset = 0
        with open(path, "rb") as handle:
            # Track byte offsets by line length; iterate raw lines and
            # parse through the shared tolerant reader semantics inline
            # (we need offsets, which iter_jsonl_objects cannot provide).
            lines = handle.readlines()
        try:
            parsed = list(iter_jsonl_objects(_decoded(lines), source=str(path)))
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"{path}: corrupt journal line {exc.lineno}: {exc.msg} — only "
                "the *final* line may be torn (crash mid-write); mid-file "
                "corruption cannot be resumed from"
            ) from None
        size = sum(len(raw) for raw in lines)
        consumed = 0
        for raw in lines:
            if consumed >= len(parsed):
                break  # tail line(s) discarded by the tolerant reader
            if not raw.strip():
                offset += len(raw)
                continue
            data = parsed[consumed]
            consumed += 1
            if header is None:
                if not isinstance(data, dict) or "checkpoint" not in data:
                    raise JournalError(
                        f"{path}: first line is not a checkpoint header"
                    )
                header = data["checkpoint"]
                if header.get("version") != JOURNAL_VERSION:
                    raise JournalError(
                        f"{path}: unsupported journal version {header.get('version')!r}"
                    )
            else:
                try:
                    index = int(data["index"])
                except (KeyError, TypeError, ValueError):
                    raise JournalError(
                        f"{path}: malformed completion record at byte {offset}"
                    ) from None
                offsets[index] = offset
            offset += len(raw)
        if header is None:
            raise JournalError(f"{path}: no readable checkpoint header")
        journal = cls(path, header, offsets)
        if offset < size:
            journal._truncate_to = offset
        if sweep is not None and sweep_digest(sweep) != journal.spec_digest:
            raise SweepMismatchError(
                f"{path}: journal was written for spec {journal.spec_digest[:12]}, "
                f"not {sweep_digest(sweep)[:12]} — refusing to mix campaigns"
            )
        return journal

    @classmethod
    def open_or_create(
        cls, path: str, sweep: Sweep, meta: Optional[Mapping[str, Any]] = None
    ) -> "CheckpointJournal":
        """Open ``path`` if it holds a journal for this sweep, else create one."""
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return cls.open(path, sweep=sweep)
        return cls.create(path, sweep, meta=meta)

    # ------------------------------------------------------------ identity
    @property
    def spec_digest(self) -> str:
        return self._header["spec_digest"]

    @property
    def total(self) -> int:
        return int(self._header["total"])

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self._header.get("meta", {}))

    @property
    def sweep(self) -> Sweep:
        """The journal's sweep, reconstructed from the manifest header."""
        if self._sweep is None:
            self._sweep = Sweep.from_dict(self._header["sweep"])
        return self._sweep

    # ------------------------------------------------------------ progress
    def completed_indices(self) -> Set[int]:
        return set(self._offsets)

    def pending_indices(self) -> List[int]:
        """Expansion indices with no completion record yet, sorted."""
        return [index for index in range(self.total) if index not in self._offsets]

    def __contains__(self, index: int) -> bool:
        return index in self._offsets

    def __len__(self) -> int:
        return len(self._offsets)

    # ------------------------------------------------------------- writing
    def append(self, index: int, record: RunRecord) -> None:
        """Append one completion record; atomic per line, flushed on return."""
        index = int(index)
        if not 0 <= index < self.total:
            raise ValueError(f"run index {index} outside [0, {self.total})")
        # Hot path: one canonical serialisation, digested as written —
        # json.loads + record_digest at replay reproduces the same digest.
        # Key order (digest < index < record) matches sort_keys output.
        payload = json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
        line = (
            f'{{"digest":"{payload_digest(payload)}","index":{index},'
            f'"record":{payload}}}\n'
        ).encode("utf-8")
        handle = self._appender()
        offset = handle.tell()
        handle.write(line)
        handle.flush()
        self._offsets[index] = offset

    def _appender(self) -> io.BufferedWriter:
        if self._append_handle is None:
            if self._truncate_to is not None:
                handle = open(self.path, "r+b")
                handle.seek(self._truncate_to)
                handle.truncate()
                self._append_handle = handle
                self._truncate_to = None
            else:
                self._append_handle = open(self.path, "ab")
        return self._append_handle

    # ------------------------------------------------------------- reading
    def replay(self, index: int) -> RunRecord:
        """Re-read one completed record by offset, verifying its digest."""
        try:
            offset = self._offsets[int(index)]
        except KeyError:
            raise KeyError(
                f"{self.path}: run {index} has no completion record"
            ) from None
        # Appends since the last replay must be visible: the reader is
        # reopened lazily and appends always flush, so a plain seek works.
        if self._read_handle is None:
            self._read_handle = open(self.path, "rb")
        self._read_handle.seek(offset)
        raw = self._read_handle.readline()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            raise JournalError(
                f"{self.path}: corrupt completion record for run {index} "
                f"at byte {offset}"
            ) from None
        if int(data.get("index", -1)) != int(index):
            raise JournalError(
                f"{self.path}: offset table out of sync at run {index}"
            )
        record_data = data["record"]
        if record_digest(record_data) != data.get("digest"):
            raise JournalError(
                f"{self.path}: digest mismatch for run {index} — journal "
                "corrupted, delete it and re-run"
            )
        return RunRecord.from_dict(record_data)

    def iter_completed(self) -> Iterator[Tuple[int, RunRecord]]:
        """Yield ``(index, record)`` for every completion, in index order."""
        for index in sorted(self._offsets):
            yield index, self.replay(index)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Flush + fsync the append handle and release file handles."""
        if self._append_handle is not None:
            self._append_handle.flush()
            try:
                os.fsync(self._append_handle.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._append_handle.close()
            self._append_handle = None
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CheckpointJournal(path={self.path!r}, "
            f"done={len(self._offsets)}/{self.total})"
        )


def _encode_line(data: Mapping[str, Any]) -> bytes:
    return (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")


def _decoded(lines: List[bytes]) -> Iterator[str]:
    for raw in lines:
        yield raw.decode("utf-8", errors="replace")
