"""Deterministic sweep manifests: spec digests, run indices, shard splits.

A campaign's unit of identity is the *sweep spec digest* — the SHA-256 of
the sweep's canonical JSON form (:meth:`repro.campaign.spec.Sweep.to_dict`
serialised with sorted keys).  Because sweep expansion order is
deterministic, the digest plus an integer *run index* (the position in the
expansion) stably names every run of the campaign: two processes that
agree on the digest agree on what run 137 is, without shipping the
expanded scenario list.  The checkpoint journal, the shard backend and the
service front end all address runs this way.

:func:`affinity_order` reproduces the campaign runner's
configuration-affinity grouping at the manifest level: a stable sort of
run indices by :func:`repro.campaign.spec.construction_affinity_key`, so
contiguous slices of the result make good shards — each shard's runs share
construction artifacts (PR 5 build cache) and cluster same-configuration
seeds adjacently (PR 7 seed batches), keeping both wins alive across the
process split.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, List, Mapping, Sequence

from repro.campaign.spec import Sweep, construction_affinity_key

__all__ = [
    "affinity_order",
    "record_digest",
    "run_id",
    "shard_job_document",
    "split_shards",
    "sweep_digest",
]


def _canonical_json(data: Mapping[str, Any]) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def sweep_digest(sweep: Sweep) -> str:
    """SHA-256 hex digest of the sweep's canonical JSON form.

    Stable across processes and JSON round-trips:
    ``sweep_digest(Sweep.from_dict(sweep.to_dict())) == sweep_digest(sweep)``.
    """
    return hashlib.sha256(_canonical_json(sweep.to_dict())).hexdigest()


def run_id(spec_digest: str, index: int) -> str:
    """Stable global identifier of one run: spec digest prefix + run index."""
    return f"{spec_digest[:12]}:{index}"


def record_digest(record_data: Mapping[str, Any]) -> str:
    """Short content digest of one record's serialised form.

    Journals store this next to every completion record; replay verifies
    it, so a corrupted journal line is caught before its record can leak
    into merged output (the cheap half of the bit-identical-resume
    guarantee — the expensive half is the determinism test matrix).
    """
    return payload_digest(
        json.dumps(record_data, sort_keys=True, separators=(",", ":"))
    )


def payload_digest(payload: str) -> str:
    """:func:`record_digest` of an already-canonicalised JSON string.

    The journal's append hot path serialises each record exactly once and
    digests the bytes it writes; replay re-canonicalises the parsed record
    through :func:`record_digest`, which lands on the same digest.
    """
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def affinity_order(sweep: Sweep, indices: Sequence[int]) -> List[int]:
    """Run indices permuted into configuration-affinity order.

    A stable sort by the construction affinity key, so indices sharing
    construction artifacts become adjacent while each group keeps
    expansion order — the same discipline as
    ``CampaignRunner._affinity_order``, computed from the manifest alone.
    ``indices`` must be sorted expansion indices (a pending set or a full
    ``range(sweep.size)``).
    """
    indices = list(indices)
    if not indices:
        return []
    index_set = frozenset(indices)
    last = max(indices)
    keys = {}
    for position, scenario in enumerate(sweep):
        if position in index_set:
            keys[position] = construction_affinity_key(
                sweep.experiment, scenario.propagation, scenario.seed, scenario.params
            )
        if position >= last:
            break
    return sorted(indices, key=keys.__getitem__)


def shard_job_document(
    sweep_data: Mapping[str, Any],
    indices: Sequence[int],
    journal_path: str,
    shard_index: int,
    shard_count: int,
    options: Mapping[str, Any],
    faults: Any = None,
) -> Mapping[str, Any]:
    """The canonical shard job document, host-agnostic by construction.

    This is the single wire/disk format a shard worker consumes: the
    local :class:`~repro.service.backends.ShardBackend` writes it to a
    file next to the journal, the remote dispatcher ships it to an agent
    over the wire (with ``journal`` left for the agent to localise).
    ``faults`` may be a plan object (``to_dict`` is called) or an
    already-serialised plan dict.
    """
    doc: dict = {
        "sweep": dict(sweep_data),
        # Workers run their slice in expansion order; affinity clustering
        # is preserved by the contiguous split, not the within-shard order.
        "indices": sorted(int(index) for index in indices),
        "journal": journal_path,
        "shard": {"index": int(shard_index), "of": int(shard_count)},
        "options": dict(options),
    }
    if faults is not None:
        doc["faults"] = faults.to_dict() if hasattr(faults, "to_dict") else dict(faults)
    return doc


def split_shards(ordered: Sequence[int], shards: int) -> List[List[int]]:
    """Split an (affinity-)ordered index list into contiguous near-equal shards.

    Never returns empty shards: the shard count is capped at the index
    count.  Contiguity in the given order is what preserves the affinity
    clustering inside each shard.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    ordered = list(ordered)
    shards = min(shards, len(ordered))
    if shards == 0:
        return []
    base, extra = divmod(len(ordered), shards)
    chunks: List[List[int]] = []
    start = 0
    for shard in range(shards):
        count = base + (1 if shard < extra else 0)
        chunks.append(ordered[start:start + count])
        start += count
    return chunks
