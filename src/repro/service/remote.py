"""Cross-host shard dispatch: remote agents, host health, stream merging.

:class:`RemoteBackend` is the transport the ROADMAP's "cross-host shard
dispatch" item called for: it ships the *same* shard job document that
:class:`~repro.service.backends.ShardBackend` writes for local workers to
per-host :mod:`repro.service.agent` processes, streams each shard's
journal bytes back incrementally, and merges completions through the
existing digest-verified path.  Run identity is (spec digest, expansion
index, seed), so any mix of retries, reconnects and host reassignment
yields output bit-identical to a single-host run.

Robustness model, layer by layer:

* **Host health** (:class:`HostRegistry`): every transport-level failure
  against a host counts; ``max_failures`` consecutive ones quarantine it
  for a ``probation`` window, after which it is probed again.  A dead box
  degrades throughput instead of failing the sweep — and if *every* host
  is quarantined, the backend raises so the supervision ladder can
  degrade to local shard dispatch.
* **Transport retry**: each shard's stream is retried against its host
  with the PR 9 exponential-backoff :class:`RetryPolicy` before the host
  is charged a failure and the slice is requeued for any healthy host.
* **Byte-offset resume** (:class:`JournalStreamMerger`): the merger
  remembers the byte offset of the last fully processed journal line; a
  reconnect asks the agent to resume there, so a dropped link never
  recomputes or re-ships finished runs.  Torn partial lines live only in
  the merger's tail buffer, never in the campaign journal.  The agent's
  ``stream`` token guards against splicing bytes from two different job
  incarnations — a token mismatch restarts the merge from offset 0
  (completions already merged are skipped by index, as ever).
* **Heartbeats**: agents report journal size with every heartbeat; the
  backend only bumps the supervisor's liveness clock when the size grew,
  so slow links do not false-trip ``run_timeout`` watchdogs while a
  genuinely hung remote worker still does.

Hosts are declared as ``HOST:PORT`` entries with an optional per-host
job cap (``HOST:PORT*CAP``), inline or in a hosts file (one entry per
line, ``#`` comments); see :func:`parse_hosts`.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.campaign.records import RunRecord
from repro.campaign.spec import Sweep
from repro.service.backends import DispatchBackend, ShardFailure
from repro.service.journal import CheckpointJournal, JournalError, verify_completion
from repro.service.manifest import affinity_order, shard_job_document, split_shards

__all__ = [
    "HostRegistry",
    "HostSpec",
    "RemoteBackend",
    "RemoteDispatchError",
    "StreamProtocolError",
    "parse_host_entry",
    "parse_hosts",
    "parse_hosts_file",
]

RecordCallback = Callable[[int, RunRecord], None]


class RemoteDispatchError(RuntimeError):
    """No healthy host remains to run a pending shard."""


class StreamProtocolError(ConnectionError):
    """The agent's byte stream violated the protocol (treated as a
    transport failure: retried, then charged to the host)."""


# -------------------------------------------------------------------- hosts


@dataclass(frozen=True)
class HostSpec:
    """One agent endpoint with a concurrent-shard cap."""

    host: str
    port: int
    cap: int = 1

    @property
    def key(self) -> str:
        return f"{self.host}:{self.port}"


def parse_host_entry(text: str, where: str = "") -> HostSpec:
    """Parse one ``HOST:PORT`` / ``HOST:PORT*CAP`` entry."""
    prefix = f"{where}: " if where else ""
    entry = text.strip()
    cap = 1
    if "*" in entry:
        entry, _, cap_text = entry.rpartition("*")
        try:
            cap = int(cap_text)
        except ValueError:
            raise ValueError(f"{prefix}invalid job cap {cap_text!r} in {text!r}")
        if cap < 1:
            raise ValueError(f"{prefix}job cap must be positive in {text!r}")
    host, sep, port_text = entry.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"{prefix}host entry {text!r} is not HOST:PORT or HOST:PORT*CAP"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"{prefix}invalid port {port_text!r} in {text!r}")
    if not 0 < port < 65536:
        raise ValueError(f"{prefix}port out of range in {text!r}")
    return HostSpec(host=host, port=port, cap=cap)


def parse_hosts_file(path: str) -> List[HostSpec]:
    """Parse a hosts file: one entry per line, blanks and ``#`` comments."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ValueError(f"cannot read hosts file {path}: {exc}")
    specs: List[HostSpec] = []
    for lineno, line in enumerate(lines, start=1):
        entry = line.split("#", 1)[0].strip()
        if not entry:
            continue
        specs.append(parse_host_entry(entry, where=f"hosts file {path} line {lineno}"))
    return specs


def parse_hosts(items: Any, source: str = "--hosts") -> List[HostSpec]:
    """Resolve a hosts declaration into validated :class:`HostSpec` s.

    ``items`` is a string or sequence of strings; each item is either an
    inline ``HOST:PORT[*CAP]`` entry, a ``@file`` reference, or (when it
    contains no ``:``) a hosts file path.  Duplicates and an empty result
    are errors — both are configuration mistakes worth failing fast on.
    """
    if isinstance(items, str):
        items = [items]
    specs: List[HostSpec] = []
    for item in items or ():
        item = str(item).strip()
        if not item:
            continue
        if item.startswith("@"):
            specs.extend(parse_hosts_file(item[1:]))
        elif ":" not in item:
            specs.extend(parse_hosts_file(item))
        else:
            specs.append(parse_host_entry(item, where=source))
    if not specs:
        raise ValueError(f"{source}: no hosts declared")
    seen: Dict[str, HostSpec] = {}
    for spec in specs:
        if spec.key in seen:
            raise ValueError(f"{source}: duplicate host {spec.key}")
        seen[spec.key] = spec
    return specs


# ------------------------------------------------------------ host registry


class _HostState:
    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.consecutive_failures = 0
        self.quarantined_until: Optional[float] = None
        self.shards_completed = 0
        self.last_beat: Optional[float] = None
        self.active = 0
        self.events: Deque[Dict[str, Any]] = deque(maxlen=20)


class HostRegistry:
    """Thread-safe health ledger and scheduler over a set of agent hosts.

    ``failure`` counts *consecutive* transport failures; at
    ``max_failures`` the host enters quarantine for ``probation`` seconds
    (timed on the monotonic clock), after which :meth:`acquire` may hand
    it out again as a probe.  Any success clears the streak.
    """

    def __init__(
        self,
        specs: Sequence[HostSpec] = (),
        max_failures: int = 2,
        probation: float = 30.0,
    ) -> None:
        self.max_failures = max(1, int(max_failures))
        self.probation = float(probation)
        self._lock = threading.Lock()
        self._hosts: Dict[str, _HostState] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: HostSpec) -> None:
        with self._lock:
            if spec.key not in self._hosts:
                self._hosts[spec.key] = _HostState(spec)

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._hosts)

    def _available(self, state: _HostState, now: float) -> bool:
        if state.quarantined_until is not None and now < state.quarantined_until:
            return False
        return state.active < state.spec.cap

    def acquire(self) -> Optional[HostSpec]:
        """Lease the least-loaded available host (``release`` when done)."""
        now = time.monotonic()
        with self._lock:
            candidates = [
                state for state in self._hosts.values() if self._available(state, now)
            ]
            if not candidates:
                return None
            state = min(
                candidates, key=lambda s: (s.active, s.consecutive_failures, s.spec.key)
            )
            state.active += 1
            return state.spec

    def has_available(self) -> bool:
        """True when any host is out of quarantine (ignores job caps)."""
        now = time.monotonic()
        with self._lock:
            return any(
                state.quarantined_until is None or now >= state.quarantined_until
                for state in self._hosts.values()
            )

    def release(self, key: str) -> None:
        with self._lock:
            state = self._hosts.get(key)
            if state is not None and state.active > 0:
                state.active -= 1

    def beat(self, key: str) -> None:
        with self._lock:
            state = self._hosts.get(key)
            if state is not None:
                state.last_beat = time.time()

    def success(self, key: str) -> None:
        with self._lock:
            state = self._hosts.get(key)
            if state is not None:
                state.consecutive_failures = 0
                state.quarantined_until = None

    def shard_done(self, key: str) -> None:
        with self._lock:
            state = self._hosts.get(key)
            if state is not None:
                state.shards_completed += 1
                state.consecutive_failures = 0
                state.quarantined_until = None

    def failure(self, key: str, reason: str) -> bool:
        """Charge a transport failure; returns True if it quarantined."""
        with self._lock:
            state = self._hosts.get(key)
            if state is None:
                return False
            state.consecutive_failures += 1
            state.events.append(
                {"time": time.time(), "kind": "failure", "detail": str(reason)[:200]}
            )
            if state.consecutive_failures >= self.max_failures:
                state.quarantined_until = time.monotonic() + self.probation
                state.events.append(
                    {
                        "time": time.time(),
                        "kind": "quarantine",
                        "detail": f"{state.consecutive_failures} consecutive "
                        f"failures; probation {self.probation:g}s",
                    }
                )
                return True
            return False

    def snapshot(self) -> List[Dict[str, Any]]:
        """Status rows for ``qma-repro hosts`` / the ``/hosts`` endpoint."""
        now_mono = time.monotonic()
        now_wall = time.time()
        rows: List[Dict[str, Any]] = []
        with self._lock:
            for key in sorted(self._hosts):
                state = self._hosts[key]
                if state.quarantined_until is None:
                    status = "healthy"
                elif now_mono < state.quarantined_until:
                    status = "quarantined"
                else:
                    status = "probation"
                rows.append(
                    {
                        "host": state.spec.host,
                        "port": state.spec.port,
                        "cap": state.spec.cap,
                        "key": key,
                        "state": status,
                        "failures": state.consecutive_failures,
                        "shards": state.shards_completed,
                        "active": state.active,
                        "last_beat_age": (
                            None
                            if state.last_beat is None
                            else max(0.0, now_wall - state.last_beat)
                        ),
                        "events": list(state.events),
                    }
                )
        return rows


# ----------------------------------------------------------- stream merging


class JournalStreamMerger:
    """Incremental merge of one shard's journal byte stream.

    Feeds arrive as (offset, bytes) chunks; only *complete* lines are
    processed — a torn partial line waits in the tail buffer for the next
    chunk (or is discarded by a reconnect-from-``complete``, which is the
    network-stream analogue of the journal's truncate-before-append
    hardening).  ``complete`` is the resume offset: every byte before it
    has been parsed, digest-verified and merged (or skipped as a
    duplicate) into the campaign journal.
    """

    def __init__(
        self,
        journal: CheckpointJournal,
        lock: threading.Lock,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        self.journal = journal
        self.lock = lock
        self.on_record = on_record
        self.complete = 0
        self.lines = 0
        self.merged = 0
        self.stream: Optional[str] = None
        self.remote_size_seen = -1
        self._tail = b""
        self._header_done = False

    def reset(self, offset: int) -> None:
        """Re-anchor after a reconnect hello.

        Offset 0 restarts the whole stream (new job incarnation); the
        current ``complete`` offset resumes it, discarding any torn tail
        bytes from the broken connection.  Anything else means the agent
        and merger disagree about history — a protocol error.
        """
        if offset == 0:
            self.complete = 0
            self.lines = 0
            self._tail = b""
            self._header_done = False
        elif offset == self.complete:
            self._tail = b""
        else:
            raise StreamProtocolError(
                f"agent offered resume offset {offset}, merger is at {self.complete}"
            )

    def feed(self, offset: int, data: bytes) -> None:
        if offset != self.complete + len(self._tail):
            raise StreamProtocolError(
                f"chunk at offset {offset}, expected {self.complete + len(self._tail)}"
            )
        buffer = self._tail + data
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line = buffer[: newline + 1]
            buffer = buffer[newline + 1 :]
            self._line(line)
            self.complete += len(line)
            self.lines += 1
        self._tail = buffer

    def _line(self, raw: bytes) -> None:
        text = raw.decode("utf-8").strip()
        if not text:
            return
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            raise JournalError(
                f"corrupt journal line in remote stream at byte {self.complete}"
            )
        if not self._header_done:
            self._header_done = True
            digest = (data.get("checkpoint") or {}).get("spec_digest")
            if digest != self.journal.spec_digest:
                raise JournalError(
                    f"remote shard journal spec digest {str(digest)[:12]} does "
                    f"not match campaign {self.journal.spec_digest[:12]}"
                )
            return
        if "event" in data:
            return
        index, record = verify_completion(data, path="<remote stream>")
        with self.lock:
            if index in self.journal:
                return  # duplicate from a re-run slice or an offset-0 restart
            self.journal.append(index, record)
            self.merged += 1
        if self.on_record is not None:
            self.on_record(index, record)


# ----------------------------------------------------------- remote backend


class RemoteBackend(DispatchBackend):
    """Dispatch affinity-ordered shard slices to remote campaign agents.

    The slice schedule is work-stealing over host slots: slices queue up,
    worker threads lease the least-loaded healthy host, stream the shard
    and merge it; a host that fails its transport retry budget is charged
    (and eventually quarantined) and the slice goes back on the queue for
    any other host.  When every host is quarantined and nothing is in
    flight, :class:`RemoteDispatchError` aborts the attempt — the
    supervision ladder then degrades to local shard dispatch.
    """

    name = "remote"

    #: Socket receive poll period (also the cancel/abort response bound).
    RECV_POLL = 0.5

    def __init__(
        self,
        hosts: Any,
        jobs: int = 1,
        chunksize: Any = "auto",
        build_cache: bool = True,
        batch_seeds: int = 1,
        connect_timeout: float = 5.0,
        io_timeout: float = 15.0,
        transport_attempts: int = 3,
        host_failures: int = 2,
        probation: float = 30.0,
        registry: Optional[HostRegistry] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        super().__init__()
        specs = (
            list(hosts)
            if hosts and isinstance(hosts[0] if hosts else None, HostSpec)
            else parse_hosts(hosts)
        )
        # Same option keys as ShardBackend so the supervision ladder can
        # derive its local-shard and pool rungs from a remote backend.
        self.options = {
            "jobs": int(jobs),
            "chunksize": chunksize,
            "build_cache": bool(build_cache),
            "batch_seeds": int(batch_seeds),
        }
        self.connect_timeout = float(connect_timeout)
        self.io_timeout = float(io_timeout)
        self.transport_attempts = max(1, int(transport_attempts))
        self.registry = registry or HostRegistry(
            max_failures=host_failures, probation=probation
        )
        for spec in specs:
            self.registry.register(spec)
        self.specs = specs
        self.fault_plan = fault_plan

    @property
    def slots(self) -> int:
        """Total concurrent shard capacity across declared hosts."""
        return sum(spec.cap for spec in self.specs)

    # ------------------------------------------------------------- dispatch
    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        indices = list(indices)
        if not indices:
            return
        self.touch()
        plan = self.fault_plan
        if plan is not None and getattr(plan, "scratch", None) is None:
            bind = getattr(plan, "bind", None)
            if bind is not None:
                bind(journal.path + ".faults")
        chunks = [
            sorted(chunk)
            for chunk in split_shards(
                affinity_order(sweep, indices), max(1, self.slots)
            )
        ]
        sweep_data = sweep.to_dict()
        tasks: Deque[Tuple[int, List[int]]] = deque(enumerate(chunks))
        cond = threading.Condition()
        state: Dict[str, Any] = {"error": None, "in_flight": 0}
        journal_lock = threading.Lock()
        workers = [
            threading.Thread(
                target=self._worker,
                args=(
                    sweep_data,
                    len(chunks),
                    journal,
                    journal_lock,
                    on_record,
                    tasks,
                    cond,
                    state,
                ),
                name=f"remote-dispatch-{i}",
                daemon=True,
            )
            for i in range(min(max(1, self.slots), len(chunks)))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        error = state["error"]
        if error is not None and not (self.cancelled or self.aborted):
            raise error

    def _worker(
        self,
        sweep_data: Dict[str, Any],
        total_shards: int,
        journal: CheckpointJournal,
        journal_lock: threading.Lock,
        on_record: Optional[RecordCallback],
        tasks: Deque[Tuple[int, List[int]]],
        cond: threading.Condition,
        state: Dict[str, Any],
    ) -> None:
        while True:
            with cond:
                while True:
                    if (
                        state["error"] is not None
                        or self._stop.is_set()
                        or self._cancel.is_set()
                    ):
                        return
                    if not tasks:
                        if state["in_flight"] == 0:
                            return
                        cond.wait(0.2)
                        continue
                    host = self.registry.acquire()
                    if host is None:
                        if not self.registry.has_available() and state["in_flight"] == 0:
                            state["error"] = RemoteDispatchError(
                                "all remote hosts are quarantined "
                                f"({', '.join(self.registry.keys())})"
                            )
                            cond.notify_all()
                            return
                        cond.wait(0.2)
                        continue
                    task = tasks.popleft()
                    state["in_flight"] += 1
                    break
            requeue = False
            try:
                requeue = self._run_task(
                    task,
                    host,
                    sweep_data,
                    total_shards,
                    journal,
                    journal_lock,
                    on_record,
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to run()
                with cond:
                    if state["error"] is None:
                        state["error"] = exc
            finally:
                self.registry.release(host.key)
                with cond:
                    state["in_flight"] -= 1
                    if requeue and state["error"] is None:
                        tasks.append(task)
                    cond.notify_all()

    def _run_task(
        self,
        task: Tuple[int, List[int]],
        host: HostSpec,
        sweep_data: Dict[str, Any],
        total_shards: int,
        journal: CheckpointJournal,
        journal_lock: threading.Lock,
        on_record: Optional[RecordCallback],
    ) -> bool:
        """Stream one shard slice from ``host``; True = requeue the slice."""
        shard_index, chunk = task
        with journal_lock:
            todo = [index for index in chunk if index not in journal]
        if not todo:
            return False
        job_doc = shard_job_document(
            sweep_data,
            todo,
            "",  # the agent substitutes its own journal path
            shard_index,
            total_shards,
            self.options,
            faults=self.fault_plan.to_dict() if self.fault_plan is not None else None,
        )
        slice_tag = hashlib.sha256(repr(todo).encode("utf-8")).hexdigest()[:8]
        job_id = f"{journal.spec_digest[:12]}-s{shard_index:03d}-{slice_tag}"
        merger = JournalStreamMerger(journal, journal_lock, on_record)
        from repro.service.supervisor import RetryPolicy

        policy = RetryPolicy(
            max_attempts=self.transport_attempts,
            backoff_base=0.2,
            backoff_max=2.0,
        )
        rng = random.Random(policy.seed + shard_index)
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            if self._stop.is_set() or self._cancel.is_set():
                return False
            try:
                if self._stream_job(host, job_id, job_doc, merger):
                    self.registry.shard_done(host.key)
                    return False
                return False  # stopped mid-stream by cancel/abort
            except (ConnectionError, socket.timeout, OSError) as exc:
                last_error = exc
                if attempt < policy.max_attempts:
                    self._sleep(policy.backoff(attempt, rng))
        self.registry.failure(host.key, str(last_error))
        return True

    # ------------------------------------------------------------ transport
    def _stream_job(
        self,
        host: HostSpec,
        job_id: str,
        job_doc: Dict[str, Any],
        merger: JournalStreamMerger,
    ) -> bool:
        """One streaming connection; True = shard done, False = stopped."""
        plan = self.fault_plan
        if plan is not None and plan.take_partition(host.key):
            raise ConnectionError(
                f"injected network partition towards {host.key}"
            )
        request = {
            "op": "run",
            "id": job_id,
            "job": job_doc,
            "offset": merger.complete,
            "stream": merger.stream,
        }
        sock = socket.create_connection(
            (host.host, host.port), timeout=self.connect_timeout
        )
        try:
            sock.settimeout(self.RECV_POLL)
            payload = json.dumps(request, separators=(",", ":")) + "\n"
            sock.sendall(payload.encode("utf-8"))
            buffer = b""
            silent = 0.0
            while True:
                if self._stop.is_set():
                    return False
                if self._cancel.is_set():
                    self._send_cancel(host, job_id)
                    return False
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    silent += self.RECV_POLL
                    if silent > self.io_timeout:
                        raise ConnectionError(
                            f"no data from {host.key} for {self.io_timeout:g}s"
                        )
                    continue
                if not data:
                    raise ConnectionError(f"connection to {host.key} closed")
                silent = 0.0
                buffer += data
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = buffer[:newline]
                    buffer = buffer[newline + 1 :]
                    done = self._handle_message(host, line, merger)
                    if done is not None:
                        return done
        finally:
            sock.close()

    def _handle_message(
        self, host: HostSpec, line: bytes, merger: JournalStreamMerger
    ) -> Optional[bool]:
        """Process one agent response line; non-None ends the stream."""
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            raise StreamProtocolError(f"non-JSON response line from {host.key}")
        if "hello" in message:
            hello = message["hello"]
            stream = hello.get("stream")
            offset = int(hello.get("offset", 0) or 0)
            if stream != merger.stream:
                # New job incarnation (agent restart / fresh job): the
                # byte history we hold does not apply.
                merger.reset(0)
                merger.stream = stream
            else:
                merger.reset(offset)
            self.touch()
            self.registry.beat(host.key)
            return None
        if "chunk" in message:
            chunk = message["chunk"]
            plan = self.fault_plan
            if plan is not None and plan.take_drop_stream(merger.lines):
                raise StreamProtocolError(
                    f"injected stream drop from {host.key} after "
                    f"{merger.lines} lines"
                )
            merger.feed(
                int(chunk.get("offset", -1)),
                str(chunk.get("data", "")).encode("latin-1"),
            )
            self.touch()
            self.registry.beat(host.key)
            return None
        if "heartbeat" in message:
            size = int(message["heartbeat"].get("size", -1))
            self.registry.beat(host.key)
            # Only *growth* counts as progress: a slow link with a live
            # worker keeps the watchdog fed, a hung worker does not.
            if size > merger.remote_size_seen:
                merger.remote_size_seen = size
                self.touch()
            return None
        if "done" in message:
            done = message["done"]
            exit_status = int(done.get("exit", -1))
            if exit_status != 0:
                tail = str(done.get("stderr", "") or "")
                raise ShardFailure(
                    f"remote shard on {host.key} exited with status {exit_status}"
                    + (f":\n{tail}" if tail else ""),
                    stderr_tail=tail,
                )
            return True
        if "error" in message:
            error = message["error"]
            raise StreamProtocolError(
                f"agent {host.key} refused job: "
                f"[{error.get('kind')}] {error.get('message')}"
            )
        raise StreamProtocolError(
            f"unrecognised response from {host.key}: {line[:120]!r}"
        )

    def _send_cancel(self, host: HostSpec, job_id: str) -> None:
        """Best-effort cancel of the remote worker (graceful stop path)."""
        try:
            with socket.create_connection(
                (host.host, host.port), timeout=self.connect_timeout
            ) as sock:
                payload = json.dumps(
                    {"op": "cancel", "id": job_id}, separators=(",", ":")
                )
                sock.sendall((payload + "\n").encode("utf-8"))
                sock.settimeout(self.RECV_POLL)
                try:
                    sock.recv(4096)
                except socket.timeout:
                    pass
        except OSError:
            pass

    def _sleep(self, seconds: float) -> None:
        """Backoff sleep that still honours cancel/abort promptly."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if self._stop.is_set() or self._cancel.is_set():
                return
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
