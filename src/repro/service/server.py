"""Long-lived campaign service: asyncio HTTP front end over the backends.

Two layers, separable for testing:

* :class:`CampaignService` — the headless core.  Accepts sweep
  submissions from any thread, queues them onto a single dispatcher
  thread (campaigns execute one at a time — worker pools and the
  artifact-cache override are not safe to interleave in one process) and
  tracks per-job progress plus live per-metric
  :class:`~repro.analysis.stats.StreamingStats` built from records *as
  they finish*, so a million-run campaign reports running means and 95 %
  confidence intervals mid-flight in constant memory.  Every job is
  journalled under the service root, keyed by spec digest — submitting a
  sweep whose digest matches an earlier (even killed) campaign resumes it
  instead of recomputing.

* :class:`CampaignServer` — a stdlib-only asyncio HTTP server speaking
  line-delimited JSON.  One JSON object per response line; ``/status``
  streams one line per job.  The event loop never blocks on simulation
  work: handlers only touch the service's lock-guarded job table.

Endpoints::

    POST /submit   {"sweep": {...}, "options": {...}}  -> {"job": ...}
    GET  /status                                       -> ndjson, one job/line
    GET  /status?job=<id>                              -> single job object
    GET  /health                                       -> {"ok": true, ...}
    GET  /hosts                                        -> ndjson, one host/line
"""

from __future__ import annotations

import asyncio
import json
import os
import queue
import threading
import time
import traceback
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.stats import StreamingStats
from repro.campaign.records import RunRecord
from repro.campaign.spec import Sweep
from repro.service.checkpoint import run_checkpointed
from repro.service.manifest import sweep_digest
from repro.service.supervisor import make_supervised

__all__ = ["CampaignService", "CampaignServer"]

#: Job lifecycle states.  ``partial`` is terminal-but-incomplete (poison
#: runs quarantined by the supervisor); ``cancelled`` is a user stop.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
PARTIAL, CANCELLED = "partial", "cancelled"

#: States in which a job will never run again.
TERMINAL_STATES = (DONE, FAILED, PARTIAL, CANCELLED)

#: Supervision events kept per job for status output (bounded).
MAX_JOB_EVENTS = 50


class CampaignJob:
    """Mutable state of one submitted campaign (guarded by the service lock)."""

    def __init__(self, job_id: str, sweep: Sweep, options: Dict[str, Any], journal_path: str) -> None:
        self.job_id = job_id
        self.sweep = sweep
        self.options = options
        self.journal_path = journal_path
        self.spec_digest = sweep_digest(sweep)
        self.state = QUEUED
        self.total = sweep.size
        self.completed = 0
        self.resumed = 0
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self.stats: Dict[str, StreamingStats] = {}
        self.quarantined = 0
        self.events: List[Dict[str, Any]] = []

    def observe(self, record: RunRecord) -> None:
        self.completed += 1
        for name, value in record.metrics.items():
            stats = self.stats.get(name)
            if stats is None:
                stats = self.stats[name] = StreamingStats()
            stats.push(float(value))

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: identity, progress, live metric aggregates."""
        metrics = {}
        for name, stats in sorted(self.stats.items()):
            mean, ci95 = stats.ci95()
            metrics[name] = {"n": stats.n, "mean": mean, "ci95": ci95}
        return {
            "job": self.job_id,
            "state": self.state,
            "digest": self.spec_digest,
            "experiment": self.sweep.experiment,
            "total": self.total,
            "completed": self.completed,
            "resumed": self.resumed,
            "journal": self.journal_path,
            "error": self.error,
            "quarantined": self.quarantined,
            "events": list(self.events),
            "metrics": metrics,
        }


class CampaignService:
    """Thread-safe campaign queue + dispatcher; the server's headless core."""

    def __init__(self, root: str, backend_options: Optional[Mapping[str, Any]] = None) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.backend_options = dict(backend_options or {})
        #: Shared across every remote-dispatched job of this service, so
        #: host health (quarantine state, failure streaks, heartbeats)
        #: persists between campaigns and feeds ``/hosts``.
        self._host_registry: Optional[Any] = None
        if self.backend_options.get("backend") == "remote":
            from repro.service.remote import HostRegistry, parse_hosts

            specs = parse_hosts(
                self.backend_options.get("hosts") or (),
                source="service backend options",
            )
            self._host_registry = HostRegistry(specs)
        self._lock = threading.Lock()
        self._jobs: Dict[str, CampaignJob] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._counter = 0
        self._active: Optional[Tuple[str, Any]] = None
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- submission
    def submit(self, sweep_data: Mapping[str, Any], options: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Validate and enqueue a sweep; returns the submit acknowledgement.

        Raises :class:`ValueError` on an invalid sweep spec or backend
        options — the server maps that to a 400 without enqueueing.
        """
        sweep = Sweep.from_dict(sweep_data)
        merged = dict(self.backend_options)
        merged.update(options or {})
        # Validate options before enqueueing (bad options -> 400, not a
        # failed job).  The throwaway backend shares the host registry so
        # validation does not reset host health.
        make_supervised(
            merged, host_registry=self._host_registry, source="submit options"
        ).close()
        digest = sweep_digest(sweep)
        journal_path = os.path.join(self.root, f"{digest[:12]}.journal.jsonl")
        with self._lock:
            self._counter += 1
            job = CampaignJob(f"job-{self._counter}", sweep, merged, journal_path)
            self._jobs[job.job_id] = job
        self._queue.put(job.job_id)
        return {
            "job": job.job_id,
            "digest": digest,
            "total": job.total,
            "journal": journal_path,
        }

    # ----------------------------------------------------------------- status
    def status(self, job_id: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            if job_id is not None:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(job_id)
                return [job.snapshot()]
            return [job.snapshot() for _, job in sorted(self._jobs.items())]

    def hosts(self) -> List[Dict[str, Any]]:
        """Host health rows of the remote dispatch registry (may be empty)."""
        registry = self._host_registry
        return registry.snapshot() if registry is not None else []

    def health(self) -> Dict[str, Any]:
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            "ok": True,
            "jobs": len(states),
            "running": states.count(RUNNING),
            "queued": states.count(QUEUED),
            "root": self.root,
        }

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no job is queued or running (testing aid)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            with self._lock:
                if all(job.state in TERMINAL_STATES for job in self._jobs.values()):
                    return True
            time.sleep(0.02)
        return False

    # ----------------------------------------------------------- cancellation
    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job: dequeue it, or drain the running campaign.

        A queued job flips straight to ``cancelled``.  A running job's
        backend is asked to stop gracefully — in-flight runs drain into
        the journal, the dispatcher then marks the job ``cancelled`` (a
        resubmission of the same sweep resumes from the journal).  A
        terminal job is returned unchanged.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished_at = time.time()
                return job.snapshot()
            if job.state in TERMINAL_STATES:
                return job.snapshot()
            active = self._active
            snapshot = job.snapshot()
        if active is not None and active[0] == job_id:
            active[1].cancel()
        snapshot["cancelling"] = True
        return snapshot

    # -------------------------------------------------------------- dispatch
    def _dispatch_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                if job.state != QUEUED:  # cancelled while waiting in line
                    continue
                job.state = RUNNING
            backend = None
            try:
                backend = make_supervised(
                    job.options,
                    on_event=lambda event, job=job: self._record_event(job, event),
                    host_registry=self._host_registry,
                )
                inner = getattr(backend, "inner", backend)
                if self._host_registry is None and inner.name == "remote":
                    # Per-job --hosts on a local-default service: adopt
                    # the first remote backend's registry for /hosts.
                    self._host_registry = inner.registry
                with self._lock:
                    self._active = (job_id, backend)
                outcome = run_checkpointed(
                    job.sweep,
                    job.journal_path,
                    backend=backend,
                    meta={"service": {"job": job.job_id}},
                    on_record=lambda index, record, job=job: self._observe(job, record),
                )
                with self._lock:
                    job.resumed = outcome.resumed
                    # Records resumed from the journal never passed through
                    # observe(); fold them into the live aggregates now so
                    # final stats always cover the whole campaign.
                    job.completed = outcome.resumed + outcome.executed
                    job.quarantined = len(outcome.quarantined)
                    job.state = {
                        "complete": DONE,
                        "partial": PARTIAL,
                        "cancelled": CANCELLED,
                    }[outcome.status]
                    job.finished_at = time.time()
                if outcome.resumed:
                    self._backfill(job)
            except BaseException as exc:  # noqa: BLE001 - job isolation
                with self._lock:
                    job.state = FAILED
                    job.error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    tail = getattr(exc, "stderr_tail", "")
                    if tail:
                        job.error += "\n" + tail
                    job.finished_at = time.time()
            finally:
                with self._lock:
                    self._active = None
                if backend is not None:
                    backend.close()

    def _record_event(self, job: CampaignJob, event: Dict[str, Any]) -> None:
        with self._lock:
            job.events.append(event)
            if event.get("kind") == "quarantine":
                job.quarantined += 1
            del job.events[:-MAX_JOB_EVENTS]

    def _observe(self, job: CampaignJob, record: RunRecord) -> None:
        with self._lock:
            job.observe(record)

    def _backfill(self, job: CampaignJob) -> None:
        """Rebuild final stats from the journal when runs were resumed.

        Live stats only saw newly executed records; replaying the full
        journal in expansion order makes the end-state aggregates both
        complete and deterministic.
        """
        from repro.service.journal import CheckpointJournal

        journal = CheckpointJournal.open(job.journal_path)
        try:
            fresh: Dict[str, StreamingStats] = {}
            for _, record in journal.iter_completed():
                for name, value in record.metrics.items():
                    stats = fresh.get(name)
                    if stats is None:
                        stats = fresh[name] = StreamingStats()
                    stats.push(float(value))
            with self._lock:
                job.stats = fresh
        finally:
            journal.close()

    def close(self) -> None:
        """Stop the dispatcher after the current job (no new jobs start)."""
        self._queue.put(None)


class CampaignServer:
    """Asyncio HTTP front end over a :class:`CampaignService`.

    Stdlib-only: hand-parses the request head (method, target, headers,
    Content-Length body) and answers with line-delimited JSON,
    ``Connection: close``.  Start with :meth:`start` (binds and returns)
    or :meth:`serve_forever`.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
        fault_plan: Optional[Any] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Chaos-harness hook: a fault plan whose ``drop-http`` faults make
        #: the server close a connection before answering (clients must
        #: survive and retry/resubmit — resubmission is a resume).
        self.fault_plan = fault_plan
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- plumbing
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError, asyncio.LimitOverrunError):
                return
            method, target, headers = _parse_head(head)
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length:
                body = await reader.readexactly(length)
            status, payload = self._route(method, target, body)
            if self.fault_plan is not None and self.fault_plan.take_drop_http():
                return  # injected fault: drop the connection unanswered
            writer.write(_response(status, payload))
            await writer.drain()
        except (ConnectionError, json.JSONDecodeError, ValueError) as exc:
            try:
                writer.write(_response(400, [{"error": str(exc)}]))
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, method: str, target: str, body: bytes) -> Tuple[int, List[Dict[str, Any]]]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        if method == "POST" and path == "/submit":
            try:
                request = json.loads(body or b"{}")
                ack = self.service.submit(
                    request.get("sweep", {}), request.get("options")
                )
            except (ValueError, TypeError, KeyError) as exc:
                return 400, [{"error": str(exc)}]
            return 200, [ack]
        if method == "GET" and path == "/status":
            try:
                return 200, self.service.status(query.get("job"))
            except KeyError:
                return 404, [{"error": f"unknown job {query.get('job')!r}"}]
        if method == "GET" and path == "/health":
            return 200, [self.service.health()]
        if method == "GET" and path == "/hosts":
            return 200, self.service.hosts()
        if method == "DELETE" and path.startswith("/job/"):
            job_id = path[len("/job/"):]
            try:
                return 200, [self.service.cancel(job_id)]
            except KeyError:
                return 404, [{"error": f"unknown job {job_id!r}"}]
        return 404, [{"error": f"no route for {method} {path}"}]


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found"}


def _response(status: int, objects: List[Dict[str, Any]]) -> bytes:
    body = "".join(json.dumps(obj, sort_keys=True) + "\n" for obj in objects).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
        f"Content-Type: application/x-ndjson\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body
