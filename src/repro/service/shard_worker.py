"""Shard subprocess entry point: ``python -m repro.service.shard_worker job.json``.

The job document (written by :class:`repro.service.backends.ShardBackend`)
names the sweep, the expansion indices this shard owns, the shard journal
path and the runner options.  The worker executes its slice through a
regular :class:`~repro.campaign.runner.CampaignRunner` — the same warm
pool, build cache and seed batching as an in-process campaign — and
appends every record to its own checkpoint journal.  The parent merges
shard journals; this process never touches the campaign journal.

The shard journal is ``open_or_create``'d, so re-running a crashed shard
worker resumes the shard rather than restarting it.
"""

from __future__ import annotations

import json
import sys

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.service.journal import CheckpointJournal


def run_shard(job_path: str) -> int:
    with open(job_path, "r", encoding="utf-8") as handle:
        job = json.load(handle)
    sweep = Sweep.from_dict(job["sweep"])
    indices = [int(index) for index in job["indices"]]
    options = dict(job.get("options", {}))
    fault_plan = None
    if job.get("faults") is not None:
        from repro.service import faults

        fault_plan = faults.FaultPlan.from_dict(job["faults"])
        # The shard process (and its pool workers, via the runner's
        # initializer blob) is expendable: crash faults may kill it.
        faults.mark_worker_process()
    meta = {"shard": job.get("shard", {})}
    journal = CheckpointJournal.open_or_create(job["journal"], sweep, meta=meta)
    try:
        done = journal.completed_indices()
        todo = [index for index in indices if index not in done]
        if not todo:
            return 0
        runner = CampaignRunner(
            jobs=int(options.get("jobs", 1)),
            chunksize=options.get("chunksize", "auto"),
            build_cache=bool(options.get("build_cache", True)),
            batch_seeds=int(options.get("batch_seeds", 1)),
            fault_plan=fault_plan,
        )
        try:
            for index, record in zip(todo, runner.iter_records(sweep, indices=todo)):
                journal.append(index, record)
        finally:
            runner.close()
    finally:
        journal.close()
    return 0


def main(argv: list) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.service.shard_worker <job.json>", file=sys.stderr)
        return 2
    return run_shard(argv[0])


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(sys.argv[1:]))
