"""Campaign supervision: retries, heartbeats, quarantine, degradation.

:class:`SupervisedBackend` wraps any :class:`~repro.service.backends.
DispatchBackend` and turns worker/shard failures from campaign-fatal
exceptions into recorded, retried, or quarantined events:

* **Bounded retry with backoff.**  A failed attempt (backend exception,
  watchdog timeout, or an attempt that returned with runs still pending)
  is retried after an exponential backoff with deterministic seeded
  jitter.  Retried runs are re-dispatched *by expansion index* and remain
  bit-identical, because a run's result is a pure function of
  ``(spec digest, index, seed)`` — the journal's digest-verified append
  path rejects nothing twice and loses nothing once committed.
* **Heartbeat watchdog.**  With :attr:`RetryPolicy.run_timeout` set, an
  attempt whose backend reports no progress (``last_progress``) for the
  timeout plus a grace period is aborted — a hung run or a dead pool
  worker stalls one attempt, not the campaign.
* **Graceful degradation.**  After :attr:`RetryPolicy.backend_attempts`
  consecutive failures on one execution tier the supervisor falls back:
  shard → pool → isolated serial.  Every fallback is a structured
  ``degrade`` event in the journal.
* **Poison-run quarantine.**  The terminal serial tier executes each run
  in a disposable child process, so it can attribute crashes, hangs and
  exceptions to *specific* runs.  A run that fails
  :attr:`RetryPolicy.max_attempts` times is appended — spec, seed,
  attempt history, traceback — to ``<journal>.quarantine.jsonl`` and the
  campaign completes with status ``partial`` instead of dying;
  :func:`retry_quarantined` re-dispatches quarantined runs later with a
  fresh attempt budget.

The wrapper preserves the inner backend's ordering contract: when the
inner backend emits records in expansion order, so does the supervised
one — records that arrive out of order after a retry are buffered (or
replayed from the journal) until the prefix catches up, which keeps the
cold-run direct-streaming fast path (the ≤5 % checkpoint-overhead
budget) intact.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import traceback
from dataclasses import dataclass
from itertools import islice
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.campaign.records import RunRecord
from repro.campaign.spec import Scenario, Sweep
from repro.service.backends import (
    DispatchBackend,
    PoolBackend,
    RecordCallback,
    SerialBackend,
    ShardBackend,
    make_backend,
)
from repro.service.faults import FaultPlan, InjectedFault
from repro.service.journal import CheckpointJournal

__all__ = [
    "RetryPolicy",
    "SupervisedBackend",
    "load_quarantine",
    "make_supervised",
    "quarantine_path",
    "retry_quarantined",
]

#: Extra no-progress seconds beyond ``run_timeout`` before the watchdog
#: declares an attempt hung (absorbs poll intervals and probe teardown).
WATCHDOG_GRACE = 2.0

#: Seconds an aborted attempt thread gets to unwind before the supervisor
#: declares the process wedged (a bug, not a workload failure).
ABORT_JOIN = 30.0

#: Option keys :func:`make_supervised` consumes before building the inner
#: backend (everything else is a backend option).
SUPERVISION_OPTIONS = (
    "supervise",
    "max_attempts",
    "backend_attempts",
    "run_timeout",
    "backoff_base",
    "backoff_max",
    "faults",
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the supervisor's persistence.

    ``max_attempts`` is the per-run failure budget before quarantine
    (counted from *precisely attributed* failures — the serial tier's);
    ``backend_attempts`` the consecutive attempt failures one execution
    tier gets before degradation; ``run_timeout`` the per-run wall-clock
    bound (None disables the watchdog and probe timeouts).  Backoff
    between attempts is ``backoff_base * 2**(attempt-1)`` capped at
    ``backoff_max``, stretched by up to ``jitter`` (fractional, from a
    ``seed``-ed RNG, so a retry schedule is reproducible).
    """

    max_attempts: int = 3
    backend_attempts: int = 2
    run_timeout: Optional[float] = None
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.backend_attempts < 1:
            raise ValueError(
                f"backend_attempts must be positive, got {self.backend_attempts}"
            )
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ValueError(f"run_timeout must be positive, got {self.run_timeout}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry ``attempt`` (1-based over failed attempts)."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** max(0, attempt - 1)))
        return delay * (1.0 + self.jitter * rng.random())


# ---------------------------------------------------------------- quarantine
def quarantine_path(journal_path: str) -> str:
    """The quarantine file that belongs to a campaign journal."""
    return str(journal_path) + ".quarantine.jsonl"


def load_quarantine(path: str) -> List[Dict[str, Any]]:
    """All quarantine entries (empty when the file does not exist)."""
    entries: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail: the entry's run simply stays pending
    return entries


def write_quarantine(path: str, entries: Sequence[Mapping[str, Any]]) -> None:
    """Atomically replace the quarantine file (empty list removes it)."""
    if not entries:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        return
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def append_quarantine(path: str, entry: Mapping[str, Any]) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _scenario_at(sweep: Sweep, index: int) -> Scenario:
    scenario = next(islice(iter(sweep), index, index + 1), None)
    if scenario is None:  # pragma: no cover - index validated upstream
        raise IndexError(f"sweep has no expansion index {index}")
    return scenario


class _Emitter:
    """Record emission that honours the inner backend's ordering contract.

    For an ordered inner backend, records are released to ``on_record``
    strictly in target-index order: out-of-order arrivals (retried runs,
    salvage merges) are buffered, and gaps already committed to the
    journal are replayed on :meth:`drain`.  Quarantined indices are
    skipped so one poison run cannot dam the stream.  For unordered
    backends, records pass through immediately (deduplicated).
    """

    def __init__(
        self,
        target: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback],
        ordered: bool,
    ) -> None:
        self.target = list(target)
        self.journal = journal
        self.on_record = on_record
        self.ordered = ordered
        self._buffer: Dict[int, RunRecord] = {}
        self._ptr = 0
        self._seen: Set[int] = set()

    def offer(self, index: int, record: RunRecord, skip: Set[int]) -> None:
        if self.on_record is None:
            return
        if not self.ordered:
            if index not in self._seen:
                self._seen.add(index)
                self.on_record(index, record)
            return
        self._buffer[index] = record
        self._release(skip, replay=False)

    def drain(self, skip: Set[int]) -> None:
        """Release everything releasable, replaying journal-only gaps."""
        if self.on_record is not None and self.ordered:
            self._release(skip, replay=True)

    def _release(self, skip: Set[int], replay: bool) -> None:
        while self._ptr < len(self.target):
            index = self.target[self._ptr]
            if index in skip:
                self._ptr += 1
                continue
            if index in self._buffer:
                record = self._buffer.pop(index)
            elif replay and index in self.journal:
                record = self.journal.replay(index)
            else:
                return
            self._ptr += 1
            self.on_record(index, record)


class SupervisedBackend(DispatchBackend):
    """Fault-tolerant wrapper around any dispatch backend (see module doc).

    ``on_event`` (optional) receives every structured supervision event
    as it is journaled — the service front end forwards these into job
    status.  ``fault_plan`` opts the campaign into the deterministic
    chaos harness (:mod:`repro.service.faults`).
    """

    def __init__(
        self,
        inner: DispatchBackend,
        policy: Optional[RetryPolicy] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.on_event = on_event
        self.fault_plan = fault_plan
        self.ordered = inner.ordered
        #: Indices excluded by quarantine as of the last ``run`` call
        #: (both newly quarantined and previously quarantined ones).
        self.quarantined: List[int] = []
        #: Structured events of the last ``run`` call, in order.
        self.events: List[Dict[str, Any]] = []
        self._tiers: Optional[List[DispatchBackend]] = None
        self._active: Optional[DispatchBackend] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        """The wrapper is transparent: it reports the primary tier's name
        (tier names in retry/degrade events identify the real backends)."""
        return self.inner.name

    # ----------------------------------------------------------- lifecycle
    def _build_tiers(self) -> List[DispatchBackend]:
        if self._tiers is None:
            from repro.service.remote import RemoteBackend

            tiers: List[DispatchBackend] = [self.inner]
            if isinstance(self.inner, RemoteBackend):
                # Remote dispatch degrades to local shards first: same
                # job documents, same merge path, no network.
                opts = self.inner.options
                tiers.append(
                    ShardBackend(
                        shards=max(1, min(self.inner.slots, 4)),
                        jobs=opts["jobs"],
                        chunksize=opts["chunksize"],
                        build_cache=opts["build_cache"],
                        batch_seeds=opts["batch_seeds"],
                        fault_plan=self.fault_plan,
                    )
                )
            if isinstance(self.inner, (RemoteBackend, ShardBackend)):
                opts = self.inner.options
                tiers.append(
                    PoolBackend(
                        jobs=opts["jobs"],
                        chunksize=opts["chunksize"],
                        build_cache=opts["build_cache"],
                        batch_seeds=opts["batch_seeds"],
                        fault_plan=self.fault_plan,
                    )
                )
            if not isinstance(self.inner, SerialBackend):
                tiers.append(
                    SerialBackend(
                        timeout=self.policy.run_timeout,
                        isolate=True,
                        fault_plan=self.fault_plan,
                    )
                )
            self._tiers = tiers
        return self._tiers

    def cancel(self) -> None:
        super().cancel()
        active = self._active
        if active is not None:
            active.cancel()

    def abort(self) -> None:
        super().abort()
        active = self._active
        if active is not None:
            active.abort()

    def close(self) -> None:
        for tier in self._tiers or [self.inner]:
            tier.close()

    # ------------------------------------------------------------- running
    def run(
        self,
        sweep: Sweep,
        indices: Sequence[int],
        journal: CheckpointJournal,
        on_record: Optional[RecordCallback] = None,
    ) -> None:
        policy = self.policy
        target = sorted(int(index) for index in indices)
        self.events = []
        self.quarantined = []
        if not target:
            return
        if self.fault_plan is not None and self.fault_plan.scratch is None:
            self.fault_plan.bind(journal.path + ".faults")
        qpath = quarantine_path(journal.path)
        quarantine_set: Set[int] = {
            int(entry["index"]) for entry in load_quarantine(qpath)
        }
        target_set = set(target)
        emitter = _Emitter(target, journal, on_record, ordered=self.ordered)
        appended = [0]

        def wrapped(index: int, record: RunRecord) -> None:
            emitter.offer(index, record, quarantine_set)
            if self.fault_plan is not None:
                appended[0] += 1
                if self.fault_plan.take_torn_tail(appended[0]):
                    _tear_journal_tail(journal)
                    raise InjectedFault("injected torn journal tail")

        rng = random.Random(policy.seed)
        attempt_histories: Dict[int, List[Dict[str, str]]] = {}
        tiers = self._build_tiers()
        tier = 0
        tier_failures = 0
        attempt_no = 0
        try:
            while True:
                pending = [
                    index
                    for index in journal.pending_indices()
                    if index in target_set and index not in quarantine_set
                ]
                if not pending or self._cancel.is_set() or self._stop.is_set():
                    break
                backend = tiers[tier]
                backend.reset()
                self._active = backend
                attempt_no += 1
                try:
                    error, timed_out = self._attempt(
                        backend, sweep, pending, journal, wrapped
                    )
                finally:
                    self._active = None
                # Adopt whatever the attempt left on disk — salvage-merged
                # shard records, a torn tail to discard — before deciding.
                journal.reload()
                emitter.drain(quarantine_set)
                still = [
                    index
                    for index in journal.pending_indices()
                    if index in target_set and index not in quarantine_set
                ]
                if error is None and not timed_out and not still:
                    break
                if self._cancel.is_set() or backend.cancelled or self._stop.is_set():
                    break
                if isinstance(backend, SerialBackend):
                    # Precise failures: charge the specific runs, and
                    # quarantine the ones that exhausted their budget.
                    for index, kind, detail in backend.failures:
                        history = attempt_histories.setdefault(index, [])
                        history.append({"kind": kind, "detail": detail})
                        if len(history) >= policy.max_attempts:
                            self._quarantine(
                                sweep, index, history, journal, qpath, quarantine_set
                            )
                self._emit(
                    journal,
                    "retry",
                    attempt=attempt_no,
                    backend=backend.name,
                    pending=len(still),
                    timed_out=timed_out,
                    error=_describe(error),
                )
                tier_failures += 1
                if tier_failures >= policy.backend_attempts and tier + 1 < len(tiers):
                    self._emit(
                        journal,
                        "degrade",
                        from_backend=tiers[tier].name,
                        to_backend=tiers[tier + 1].name,
                        after_failures=tier_failures,
                    )
                    tier += 1
                    tier_failures = 0
                delay = policy.backoff(attempt_no, rng)
                if delay > 0:
                    time.sleep(delay)
        finally:
            emitter.drain(quarantine_set)
            self.quarantined = sorted(quarantine_set)

    def _attempt(
        self,
        backend: DispatchBackend,
        sweep: Sweep,
        pending: List[int],
        journal: CheckpointJournal,
        on_record: RecordCallback,
    ) -> Tuple[Optional[BaseException], bool]:
        """One attempt on one tier; returns ``(error, watchdog_fired)``.

        Without a ``run_timeout`` the attempt runs inline.  With one, it
        runs in a thread while this (supervisor) thread watches
        ``backend.last_progress`` — no progress for ``run_timeout`` +
        grace means the attempt is aborted and counted as failed.
        """
        if self.policy.run_timeout is None:
            try:
                backend.run(sweep, pending, journal, on_record=on_record)
                return None, False
            except Exception as exc:
                return exc, False
        box: Dict[str, BaseException] = {}

        def attempt() -> None:
            try:
                backend.run(sweep, pending, journal, on_record=on_record)
            except BaseException as exc:  # surfaced below, in this thread
                box["error"] = exc

        thread = threading.Thread(
            target=attempt, name="supervised-attempt", daemon=True
        )
        threshold = self.policy.run_timeout + WATCHDOG_GRACE
        thread.start()
        while True:
            thread.join(timeout=0.2)
            if not thread.is_alive():
                return box.get("error"), False
            if self._cancel.is_set():
                backend.cancel()
            if self._stop.is_set():
                backend.abort()
            if time.monotonic() - backend.last_progress > threshold:
                backend.abort()
                thread.join(timeout=ABORT_JOIN)
                if thread.is_alive():  # pragma: no cover - backend bug guard
                    raise RuntimeError(
                        f"backend {backend.name!r} ignored abort() for "
                        f"{ABORT_JOIN:g}s after a watchdog timeout — refusing "
                        "to continue with a wedged attempt thread"
                    )
                return box.get("error"), True

    def _quarantine(
        self,
        sweep: Sweep,
        index: int,
        history: List[Dict[str, str]],
        journal: CheckpointJournal,
        qpath: str,
        quarantine_set: Set[int],
    ) -> None:
        quarantine_set.add(index)
        scenario = _scenario_at(sweep, index)
        append_quarantine(
            qpath,
            {
                "spec_digest": journal.spec_digest,
                "index": index,
                "seed": scenario.seed,
                "scenario": scenario.to_dict(),
                "attempts": list(history),
                "traceback": history[-1]["detail"],
            },
        )
        self._emit(
            journal,
            "quarantine",
            index=index,
            seed=scenario.seed,
            attempts=len(history),
            failure=history[-1]["kind"],
        )

    def _emit(self, journal: CheckpointJournal, kind: str, **data: Any) -> None:
        event = {"kind": kind, **data}
        journal.append_event(kind, **data)
        self.events.append(event)
        if self.on_event is not None:
            try:
                self.on_event(event)
            except Exception:  # pragma: no cover - observer must not kill us
                pass


def _describe(error: Optional[BaseException]) -> Optional[str]:
    if error is None:
        return None
    return "".join(
        traceback.format_exception_only(type(error), error)
    ).strip()[:2000]


def _tear_journal_tail(journal: CheckpointJournal) -> None:
    """Fault injection: leave a newline-less fragment at the journal tail,
    exactly as a crash between ``write`` and the line's newline would."""
    journal.close()
    with open(journal.path, "ab") as handle:
        handle.write(b'{"digest":"dead","index":')


def make_supervised(
    options: Optional[Mapping[str, Any]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    host_registry: Optional[Any] = None,
    source: Optional[str] = None,
) -> DispatchBackend:
    """Build a (by default supervised) backend from one flat options mapping.

    Consumes the :data:`SUPERVISION_OPTIONS` keys — ``supervise`` (default
    True), the :class:`RetryPolicy` fields, and ``faults`` (a fault-plan
    spec string or dict) — and forwards the rest to
    :func:`~repro.service.backends.make_backend`.  ``supervise: False``
    returns the raw inner backend (the pre-supervision behaviour).
    """
    options = dict(options or {})
    supervise = bool(options.pop("supervise", True))
    plan = options.pop("faults", None)
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    elif isinstance(plan, Mapping):
        plan = FaultPlan.from_dict(plan)
    run_timeout = options.pop("run_timeout", None)
    policy = RetryPolicy(
        max_attempts=int(options.pop("max_attempts", 3)),
        backend_attempts=int(options.pop("backend_attempts", 2)),
        run_timeout=float(run_timeout) if run_timeout is not None else None,
        backoff_base=float(options.pop("backoff_base", 0.5)),
        backoff_max=float(options.pop("backoff_max", 30.0)),
    )
    inner = make_backend(
        options, fault_plan=plan, host_registry=host_registry, source=source
    )
    if not supervise:
        return inner
    return SupervisedBackend(inner, policy=policy, on_event=on_event, fault_plan=plan)


def retry_quarantined(
    journal_path: str,
    backend_options: Optional[Mapping[str, Any]] = None,
    on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    sinks: Sequence[Any] = (),
    collect: bool = False,
) -> Tuple[int, Any]:
    """Re-dispatch a campaign's quarantined runs with a fresh attempt budget.

    Clears the quarantine file (runs that fail again are re-quarantined by
    the supervisor with fresh attempt histories) and resumes the campaign
    over the journal's pending set.  Returns ``(retried_count, outcome)``
    where ``outcome`` is the :class:`~repro.service.checkpoint.
    CheckpointOutcome` of the resume — status ``complete`` when every
    formerly-quarantined run now succeeded, ``partial`` when some are
    quarantined again.
    """
    from repro.service.checkpoint import run_checkpointed, resume_sweep

    qpath = quarantine_path(journal_path)
    entries = load_quarantine(qpath)
    write_quarantine(qpath, [])
    sweep = resume_sweep(journal_path)
    backend = make_supervised(backend_options, on_event=on_event)
    try:
        outcome = run_checkpointed(
            sweep,
            journal_path,
            backend=backend,
            sinks=sinks,
            collect=collect,
        )
    finally:
        backend.close()
    return len(entries), outcome
