"""Discrete-event simulation kernel.

This package provides the deterministic, seeded discrete-event engine on
which the whole reproduction runs.  It replaces OMNeT++ from the paper's
evaluation: the engine offers an event heap with stable ordering, a
simulation clock, cancellable events, named random-number streams and a
lightweight trace recorder.

Typical usage::

    from repro.sim import Simulator

    sim = Simulator(seed=1)
    sim.schedule(1.0, lambda: print("hello at t=1"))
    sim.run_until(10.0)
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "PeriodicProcess",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
]
