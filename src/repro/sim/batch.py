"""Lockstep multi-seed batch execution.

The dominant campaign workload is "many seeds × one configuration": every
figure sweep runs the identical scenario under different master seeds.  Each
serial run spends ~90% of its events in the QMA subslot tick, and every lane
ticks at exactly the same simulated times (the subslot grid does not depend
on the seed).  This module exploits that: N prepared same-configuration
scenarios ("lanes") advance through one shared boundary loop, and the
per-tick QMA work — clock bookkeeping, Eq. 5/6/7 boundary evaluation,
parameter-based exploration, ε-draws and policy lookups — runs as numpy
struct-of-arrays operations keyed ``(lane, node)`` instead of N×M Python
callbacks.

Bit-identical by construction
-----------------------------
The batch is not an approximation.  Every source of divergence from the
serial engine is pinned down:

* **Random numbers.** Each QMA agent's ``random.Random`` stream is
  transplanted into a ``numpy.random.MT19937`` (same 624-word core state,
  see :func:`repro.sim.rng.transplant_bit_generator`) and pre-drawn into a
  per-agent word buffer.  ``random()`` and ``choice()`` are re-implemented
  word-for-word (including the rejection loop of ``_randbelow``), so each
  lane consumes exactly the 32-bit words the serial run would have.
* **Event ordering.**  Subslot ticks never enter the heap; instead the
  kernel keeps their would-be ``(time, seq)`` keys and drains each lane's
  real heap events strictly *before* that key at every boundary, mirroring
  ``Simulator.run_until``'s inlined loop (freelist recycle, lazy-cancel
  skip, ``events_executed`` accounting).  Sequence numbers are consumed in
  the exact serial pattern, so everything scheduled relative to a tick
  lands on identical ``(time, seq)`` keys.  If a heap event is ever
  interleaved *between* two tick keys of one lane (same timestamp), that
  lane's boundary falls back to running its ticks serially through the
  original ``QmaMac._on_subslot`` — exactness never rests on "that never
  happens".
* **Floating point.**  All vectorized arithmetic replicates the serial
  expression trees operation-for-operation in float64 (e.g. the Eq. 5
  candidate, the two-word ``random()`` reconstruction, the Fig. 10
  cumulative sum as an ordered per-subslot loop), so IEEE results match
  bitwise.

Everything that is *not* the tick fast path — transmissions, deliveries,
ACKs, traffic generation, collectors — keeps running through the real
objects: the MAC, queue, radio, startup tracker and neighbour tracker are
retrofitted in place (``__class__`` swap to mirror subclasses whose
properties read/write the arrays), so the rare serial paths observe and
mutate the same state the vector phases do.

Lanes whose configuration the kernel does not support (non-QMA MACs,
windowed gates, ε-greedy exploration, ...) are executed serially — the
executor degrades to exactly the per-seed behaviour instead of guessing.
"""

from __future__ import annotations

import heapq
import itertools
import random as _py_random
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # numpy is the batch engine's substrate; without it we fall back to serial.
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None  # type: ignore[assignment]

from repro.core.actions import ALL_ACTIONS, QAction
from repro.core.exploration import ParameterBasedExploration
from repro.core.mac import QmaMac, _PendingAction, _PendingKind
from repro.core.neighbours import NeighbourQueueTracker
from repro.core.qtable import QTable, QUpdateResult
from repro.core.startup import CautiousStartup
from repro.mac.gate import AlwaysActiveGate
from repro.mac.queue import PacketQueue
from repro.phy.radio import Radio
from repro.sim.engine import _FREELIST_MAX, SimulationError
from repro.sim.rng import transplant_bit_generator

__all__ = [
    "BatchLockstepError",
    "SeedBatchExecutor",
    "batch_compatibility_error",
]

#: Exactly 2**-53 (a power of two, hence an exact float literal): CPython's
#: ``random()`` multiplies by the same constant.
_RECIP_53 = 1.0 / 9007199254740992.0

#: Integer codes for ``_PendingKind`` in the struct-of-arrays state.
_K_NONE = 0
_K_BACKOFF = 1
_K_CCA_FAILED = 2
_K_TRANSMISSION = 3
_K_STARTUP = 4

_KIND_TO_CODE = {
    _PendingKind.BACKOFF: _K_BACKOFF,
    _PendingKind.CCA_FAILED: _K_CCA_FAILED,
    _PendingKind.TRANSMISSION: _K_TRANSMISSION,
    _PendingKind.STARTUP: _K_STARTUP,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

#: Sentinel larger than any sequence number a run can reach.
_SEQ_HUGE = np.iinfo(np.int64).max if np is not None else 0


class BatchLockstepError(SimulationError):
    """An invariant of the lockstep batch kernel was violated."""


def _merge_by_time(first: List[Any], second: List[Any]) -> List[Any]:
    """Merge two time-sorted ``(time, value)`` lists (timestamps disjoint)."""
    merged: List[Any] = []
    i = j = 0
    while i < len(first) and j < len(second):
        if first[i][0] <= second[j][0]:
            merged.append(first[i])
            i += 1
        else:
            merged.append(second[j])
            j += 1
    merged.extend(first[i:])
    merged.extend(second[j:])
    return merged


# --------------------------------------------------------------------------
# Struct-of-arrays state shared by all facades and the kernel
# --------------------------------------------------------------------------
class _BatchStore:
    """All per-``(lane, node)`` QMA state, columnarized.

    The arrays are the *single* source of truth once the lanes are
    retrofitted: the mirror facades below read and write them, so serial
    code paths (transaction completion, overhearing, ACK handling) and the
    vectorized boundary phases always agree.
    """

    #: Pre-drawn 32-bit MT words kept per agent; boundary phases consume at
    #: most three per agent, so refills are rare and amortized.
    WORD_BUFFER = 192

    def __init__(self, prepared: Sequence[Any]) -> None:
        self.sims = [lane.sim for lane in prepared]
        self.macs: List[List[QmaMac]] = [
            list(lane.built.network.macs.values()) for lane in prepared
        ]
        num_lanes = len(self.macs)
        num_nodes = len(self.macs[0])
        sample = self.macs[0][0]
        config = sample.config
        self.num_lanes = num_lanes
        self.num_nodes = num_nodes
        self.num_subslots = config.num_subslots
        self.subslot_duration = config.subslot_duration
        self.track_history = config.track_history

        qtable = sample.qtable
        self.alpha = qtable.learning_rate
        self.gamma = qtable.discount_factor
        self.penalty = qtable.penalty
        self.q_init = qtable.q_init

        rewards = sample.rewards
        self.r_backoff_overheard = rewards.backoff(True)
        self.r_backoff_idle = rewards.backoff(False)
        self.r_cca_failed = rewards.cca(cca_success=False)

        startup = sample.startup
        self.startup_duration = startup.duration_subslots
        self.startup_cca_punishment = startup.cca_punishment
        self.startup_send_punishment = startup.send_punishment

        self.neighbour_max_age = sample.neighbours.max_age
        self.exploration_table = np.asarray(sample.exploration.table, dtype=np.float64)

        shape = (num_lanes, num_nodes)
        self.Q = np.empty((num_lanes, num_nodes, self.num_subslots, len(ALL_ACTIONS)))
        self.P = np.empty((num_lanes, num_nodes, self.num_subslots), dtype=np.int64)
        self.updates = np.zeros(shape, dtype=np.int64)

        self.pend_kind = np.zeros(shape, dtype=np.int8)
        self.pend_action = np.zeros(shape, dtype=np.int8)
        self.pend_state = np.zeros(shape, dtype=np.int64)
        self.pend_counter = np.zeros(shape, dtype=np.int64)
        self.pend_overheard = np.zeros(shape, dtype=bool)
        #: Monotone generation per slot: lets ``_pending`` hand out a stable
        #: view object while the slot is unchanged (``_transmit_pending``
        #: compares pendings by identity).
        self.pend_gen = np.zeros(shape, dtype=np.int64)
        self.pend_frames: List[List[Any]] = [[None] * num_nodes for _ in range(num_lanes)]

        self.subslot = np.zeros(shape, dtype=np.int64)
        self.next_subslot = np.zeros(shape, dtype=np.int64)
        self.counter = np.zeros(shape, dtype=np.int64)
        self.frames_elapsed = np.zeros(shape, dtype=np.int64)

        self.startup_elapsed = np.zeros(shape, dtype=np.int64)
        self.startup_finished = np.zeros(shape, dtype=bool)

        self.queue_level = np.zeros(shape, dtype=np.int64)
        self.radio_transmitting = np.zeros(shape, dtype=bool)

        self.nb_sum = np.zeros(shape, dtype=np.int64)
        self.nb_count = np.zeros(shape, dtype=np.int64)
        self.nb_oldest = np.full(shape, np.inf)

        self.words = np.zeros((num_lanes, num_nodes, self.WORD_BUFFER), dtype=np.uint32)
        self.cursor = np.zeros(shape, dtype=np.int64)
        self.bitgens: List[List[Any]] = [[None] * num_nodes for _ in range(num_lanes)]

        #: The ``(time, seq)`` key each agent's next tick *would* carry on
        #: the serial heap; NaN until the agent's clock registers.
        self.tick_time = np.full(shape, np.nan)
        self.tick_seq = np.full(shape, -1, dtype=np.int64)
        self.active = np.ones(shape, dtype=bool)

        self.sel_counts = np.zeros((num_lanes, num_nodes, len(ALL_ACTIONS)), dtype=np.int64)
        self.random_sel = np.zeros(shape, dtype=np.int64)
        self.greedy_sel = np.zeros(shape, dtype=np.int64)

        #: Deferred history samples: ``(t, lanes, nodes, values)`` per
        #: boundary, materialized into the macs' ``q_history`` /
        #: ``rho_history`` lists at teardown (appending per element during
        #: the run would dominate the boundary cost).
        self.q_hist_batches: List[Tuple[float, Any, Any, Any]] = []
        self.rho_hist_batches: List[Tuple[float, Any, Any, Any]] = []

        for lane in range(num_lanes):
            for node in range(num_nodes):
                self._absorb(lane, node, self.macs[lane][node])

    # ---------------------------------------------------------------- setup
    def _absorb(self, lane: int, node: int, mac: QmaMac) -> None:
        """Copy one agent's state into the arrays and retrofit its objects."""
        if mac._pending is not None:  # pragma: no cover - prepared lanes never ran
            raise BatchLockstepError("cannot absorb a MAC with an in-flight action")
        qtable = mac.qtable
        self.Q[lane, node] = qtable._values
        self.P[lane, node] = [action.value for action in qtable._policy]
        self.updates[lane, node] = qtable.updates
        self.subslot[lane, node] = mac._subslot
        self.next_subslot[lane, node] = mac._next_subslot
        self.counter[lane, node] = mac._counter
        self.frames_elapsed[lane, node] = mac.frames_elapsed
        startup = mac.startup
        self.startup_elapsed[lane, node] = startup._elapsed
        self.startup_finished[lane, node] = startup._finished
        self.queue_level[lane, node] = mac.queue.level
        self.radio_transmitting[lane, node] = mac.radio.transmitting
        tracker = mac.neighbours
        self.nb_sum[lane, node] = tracker._level_sum
        self.nb_count[lane, node] = len(tracker._levels)
        self.nb_oldest[lane, node] = tracker._oldest_bound

        bitgen = transplant_bit_generator(mac._rng)
        self.bitgens[lane][node] = bitgen
        self.words[lane, node] = bitgen.random_raw(self.WORD_BUFFER)
        self.cursor[lane, node] = 0

        for obj, cls in (
            (mac.queue, BatchPacketQueue),
            (mac.radio, BatchRadio),
            (tracker, BatchNeighbourTracker),
            (startup, BatchStartup),
        ):
            obj._bstore = self
            obj._bl = lane
            obj._bn = node
            obj.__class__ = cls
        mac.qtable = BatchQTable(self, lane, node)
        mac._rng = BatchedMtStream(self, lane, node)
        mac._bstore = self
        mac._bl = lane
        mac._bn = node
        mac._pview = None
        mac.__class__ = BatchQmaMac

    # ----------------------------------------------------------------- words
    def refill_words(self, lane: int, node: int) -> None:
        """Top the word buffer back up, preserving the unconsumed tail."""
        consumed = int(self.cursor[lane, node])
        row = self.words[lane, node]
        tail = row.shape[0] - consumed
        if tail > 0:
            row[:tail] = row[consumed:]
        row[tail:] = self.bitgens[lane][node].random_raw(consumed)
        self.cursor[lane, node] = 0

    # -------------------------------------------------------------- teardown
    def materialize_histories(self) -> None:
        """Distribute the deferred history samples into the macs' lists.

        One stable sort groups the run's samples by agent while keeping
        each agent's chronological order; samples appended directly by
        serial code paths (bootstrap, serial-boundary fallbacks) are merged
        in by timestamp — an agent never receives a vector sample and a
        serial sample for the same boundary, so the merge is unambiguous.
        """
        self._merge_history(self.q_hist_batches, "q_history")
        self._merge_history(self.rho_hist_batches, "rho_history")

    def _merge_history(self, batches: List[Tuple[float, Any, Any, Any]], attr: str) -> None:
        if not batches:
            return
        num_nodes = self.num_nodes
        keys = np.concatenate([il * num_nodes + inn for _, il, inn, _ in batches])
        times = np.concatenate([np.full(len(il), t) for t, il, _, _ in batches])
        values = np.concatenate([v for _, _, _, v in batches])
        batches.clear()
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        times = times[order]
        values = values[order]
        bounds = [0, *(np.nonzero(np.diff(keys))[0] + 1).tolist(), len(keys)]
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            lane, node = divmod(int(keys[lo]), num_nodes)
            mac = self.macs[lane][node]
            items = list(zip(times[lo:hi].tolist(), values[lo:hi].tolist()))
            existing = getattr(mac, attr)
            if existing:
                items = _merge_by_time(existing, items)
            setattr(mac, attr, items)

    def merge_action_stats(self) -> None:
        """Fold the array-side selection counters into the real QmaActionStats.

        The array counters and the live objects covered disjoint selections
        (vector boundaries vs. serial fallbacks), so this is a plain add.
        """
        for lane in range(self.num_lanes):
            for node in range(self.num_nodes):
                stats = self.macs[lane][node].action_stats
                for action in ALL_ACTIONS:
                    stats.selected[action] += int(self.sel_counts[lane, node, action.value])
                stats.random_selections += int(self.random_sel[lane, node])
                stats.greedy_selections += int(self.greedy_sel[lane, node])
        self.sel_counts[:] = 0
        self.random_sel[:] = 0
        self.greedy_sel[:] = 0


# --------------------------------------------------------------------------
# Mirror facades: real objects whose state lives in the store
# --------------------------------------------------------------------------
class BatchedMtStream:
    """Drop-in for a QMA agent's ``random.Random``, fed from pre-drawn words.

    Only the methods QMA uses are provided; each replicates the CPython
    implementation word-for-word against the transplanted MT19937 stream.
    """

    __slots__ = ("_store", "_lane", "_node")

    def __init__(self, store: _BatchStore, lane: int, node: int) -> None:
        self._store = store
        self._lane = lane
        self._node = node

    def _ensure(self, need: int) -> None:
        store = self._store
        if store.cursor[self._lane, self._node] > store.WORD_BUFFER - need:
            store.refill_words(self._lane, self._node)

    def random(self) -> float:
        self._ensure(2)
        store, lane, node = self._store, self._lane, self._node
        cur = int(store.cursor[lane, node])
        row = store.words[lane, node]
        store.cursor[lane, node] = cur + 2
        return ((int(row[cur]) >> 5) * 67108864.0 + (int(row[cur + 1]) >> 6)) * _RECIP_53

    def getrandbits(self, k: int) -> int:
        if not 0 < k <= 32:
            raise ValueError("BatchedMtStream.getrandbits supports 1..32 bits")
        self._ensure(1)
        store, lane, node = self._store, self._lane, self._node
        cur = int(store.cursor[lane, node])
        word = int(store.words[lane, node, cur])
        store.cursor[lane, node] = cur + 1
        return word >> (32 - k)

    def _randbelow(self, n: int) -> int:
        # CPython's Random._randbelow_with_getrandbits, verbatim.
        if not n:
            return 0
        k = n.bit_length()
        r = self.getrandbits(k)
        while r >= n:
            r = self.getrandbits(k)
        return r

    def choice(self, seq: Sequence[Any]) -> Any:
        if not len(seq):
            raise IndexError("Cannot choose from an empty sequence")
        return seq[self._randbelow(len(seq))]


class _BatchPendingView:
    """A ``_PendingAction`` whose fields live in the store.

    The view carries the generation it was built for; the ``_pending``
    property returns the *same* view object while the slot's generation is
    unchanged, preserving the ``self._pending is not pending`` identity
    check in ``QmaMac._transmit_pending``.
    """

    __slots__ = ("_store", "_lane", "_node", "_gen")

    def __init__(self, store: _BatchStore, lane: int, node: int, gen: int) -> None:
        self._store = store
        self._lane = lane
        self._node = node
        self._gen = gen

    @property
    def kind(self) -> _PendingKind:
        return _CODE_TO_KIND[int(self._store.pend_kind[self._lane, self._node])]

    @property
    def action(self) -> QAction:
        return ALL_ACTIONS[int(self._store.pend_action[self._lane, self._node])]

    @property
    def state(self) -> int:
        return int(self._store.pend_state[self._lane, self._node])

    @property
    def counter(self) -> int:
        return int(self._store.pend_counter[self._lane, self._node])

    @property
    def frame(self) -> Any:
        return self._store.pend_frames[self._lane][self._node]

    @property
    def overheard(self) -> bool:
        return bool(self._store.pend_overheard[self._lane, self._node])

    @overheard.setter
    def overheard(self, value: bool) -> None:
        self._store.pend_overheard[self._lane, self._node] = value


class BatchQTable:
    """The full :class:`~repro.core.qtable.QTable` API over the store arrays.

    Scalar updates replicate QTable.update operation-for-operation (same
    Python-float expression tree), so a serial-path update and a vectorized
    one produce bitwise identical values.
    """

    __slots__ = ("_store", "_lane", "_node")

    def __init__(self, store: _BatchStore, lane: int, node: int) -> None:
        self._store = store
        self._lane = lane
        self._node = node

    # -- parameters -------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self._store.num_subslots

    @property
    def learning_rate(self) -> float:
        return self._store.alpha

    @property
    def discount_factor(self) -> float:
        return self._store.gamma

    @property
    def penalty(self) -> float:
        return self._store.penalty

    @property
    def q_init(self) -> float:
        return self._store.q_init

    @property
    def updates(self) -> int:
        return int(self._store.updates[self._lane, self._node])

    @updates.setter
    def updates(self, value: int) -> None:
        self._store.updates[self._lane, self._node] = value

    # -- access -----------------------------------------------------------
    def value(self, state: int, action: QAction) -> float:
        return float(self._store.Q[self._lane, self._node, state, action.value])

    def set_value(self, state: int, action: QAction, value: float) -> None:
        self._store.Q[self._lane, self._node, state, action.value] = value

    def max_value(self, state: int) -> float:
        return float(self._store.Q[self._lane, self._node, state].max())

    def best_action(self, state: int) -> QAction:
        row = self._store.Q[self._lane, self._node, state]
        best = row.max()
        for action in ALL_ACTIONS:
            if row[action.value] == best:
                return action
        raise AssertionError("unreachable")  # pragma: no cover

    def policy(self, state: int) -> QAction:
        return ALL_ACTIONS[int(self._store.P[self._lane, self._node, state])]

    def set_policy(self, state: int, action: QAction) -> None:
        self._store.P[self._lane, self._node, state] = action.value

    def policy_snapshot(self) -> List[QAction]:
        return [ALL_ACTIONS[v] for v in self._store.P[self._lane, self._node].tolist()]

    def values_snapshot(self) -> List[Dict[QAction, float]]:
        rows = self._store.Q[self._lane, self._node].tolist()
        return [{action: row[action.value] for action in ALL_ACTIONS} for row in rows]

    # -- update -----------------------------------------------------------
    def update(self, state: int, action: QAction, reward: float, next_state: int) -> QUpdateResult:
        store, lane, node = self._store, self._lane, self._node
        if not 0 <= state < store.num_subslots:
            raise IndexError(f"state {state} out of range")
        if not 0 <= next_state < store.num_subslots:
            raise IndexError(f"next_state {next_state} out of range")
        alpha = store.alpha
        row = store.Q[lane, node, state]
        old = float(row[action.value])
        candidate = (1.0 - alpha) * old + alpha * (
            reward + store.gamma * float(store.Q[lane, node, next_state].max())
        )
        new = max(old - store.penalty, candidate)
        row[action.value] = new
        store.updates[lane, node] += 1

        policy_changed = False
        policy_value = int(store.P[lane, node, state])
        if action.value != policy_value and new > float(row[policy_value]):
            store.P[lane, node, state] = action.value
            policy_changed = True
        return QUpdateResult(state, action, old, new, candidate, policy_changed)

    # -- metrics ----------------------------------------------------------
    def cumulative_policy_value(self) -> float:
        store, lane, node = self._store, self._lane, self._node
        values = store.Q[lane, node]
        policy = store.P[lane, node]
        # Ordered per-subslot adds: matches both the serial generator sum
        # and the kernel's vectorized accumulation bit-for-bit.
        total = 0.0
        for m in range(store.num_subslots):
            total += float(values[m, policy[m]])
        return total

    def cumulative_max_value(self) -> float:
        total = 0.0
        for m in range(self._store.num_subslots):
            total += self.max_value(m)
        return total

    def transmission_subslots(self) -> List[int]:
        policy = self._store.P[self._lane, self._node]
        return [m for m in range(self._store.num_subslots) if policy[m] != QAction.QBACKOFF.value]

    def policy_counts(self) -> Dict[QAction, int]:
        counts = {action: 0 for action in ALL_ACTIONS}
        for value in self._store.P[self._lane, self._node].tolist():
            counts[ALL_ACTIONS[value]] += 1
        return counts

    def memory_footprint_bytes(self, bytes_per_entry: int = 4) -> int:
        return self.num_states * (len(ALL_ACTIONS) * bytes_per_entry + 1)

    def reset(self) -> None:
        store, lane, node = self._store, self._lane, self._node
        store.Q[lane, node] = store.q_init
        store.P[lane, node] = QAction.QBACKOFF.value
        store.updates[lane, node] = 0

    def as_rows(self) -> List[Tuple[int, float, float, float, str]]:
        store, lane, node = self._store, self._lane, self._node
        rows = []
        for m in range(store.num_subslots):
            values = store.Q[lane, node, m]
            rows.append(
                (
                    m,
                    float(values[QAction.QBACKOFF.value]),
                    float(values[QAction.QCCA.value]),
                    float(values[QAction.QSEND.value]),
                    ALL_ACTIONS[int(store.P[lane, node, m])].short_name,
                )
            )
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"BatchQTable(states={self.num_states}, updates={self.updates}, "
            f"cumulative={self.cumulative_policy_value():.1f})"
        )


class BatchPacketQueue(PacketQueue):
    """PacketQueue that mirrors its level into the store on every mutation."""

    def _sync_level(self) -> None:
        self._bstore.queue_level[self._bl, self._bn] = len(self._frames)

    def push(self, frame: Any) -> bool:
        accepted = PacketQueue.push(self, frame)
        self._sync_level()
        return accepted

    def push_front(self, frame: Any) -> bool:
        accepted = PacketQueue.push_front(self, frame)
        self._sync_level()
        return accepted

    def pop(self) -> Optional[Any]:
        frame = PacketQueue.pop(self)
        self._sync_level()
        return frame

    def clear(self) -> None:
        PacketQueue.clear(self)
        self._sync_level()


class BatchRadio(Radio):
    """Radio that mirrors its transmitting flag into the store."""

    def transmit(self, frame: Any, duration: Optional[float] = None) -> float:
        airtime = Radio.transmit(self, frame, duration)
        self._bstore.radio_transmitting[self._bl, self._bn] = True
        return airtime

    def transmission_finished(self, frame: Any) -> None:
        self._bstore.radio_transmitting[self._bl, self._bn] = False
        Radio.transmission_finished(self, frame)


class BatchNeighbourTracker(NeighbourQueueTracker):
    """NeighbourQueueTracker that mirrors its running aggregates."""

    def _sync(self) -> None:
        store = self._bstore
        store.nb_sum[self._bl, self._bn] = self._level_sum
        store.nb_count[self._bl, self._bn] = len(self._levels)
        store.nb_oldest[self._bl, self._bn] = self._oldest_bound

    def observe(self, neighbour_id: int, queue_level: int, now: float) -> None:
        NeighbourQueueTracker.observe(self, neighbour_id, queue_level, now)
        self._sync()

    def forget(self, neighbour_id: int) -> None:
        NeighbourQueueTracker.forget(self, neighbour_id)
        self._sync()

    def _expire(self, now: float) -> None:
        NeighbourQueueTracker._expire(self, now)
        self._sync()


class BatchStartup(CautiousStartup):
    """CautiousStartup whose progress lives in the store.

    ``_elapsed``/``_finished`` become data descriptors over the arrays, so
    the inherited ``tick()``/``active``/``restart()`` keep working unchanged
    for serial code paths while the kernel advances the arrays directly.
    """

    @property
    def _elapsed(self) -> int:
        return int(self._bstore.startup_elapsed[self._bl, self._bn])

    @_elapsed.setter
    def _elapsed(self, value: int) -> None:
        self._bstore.startup_elapsed[self._bl, self._bn] = value

    @property
    def _finished(self) -> bool:
        return bool(self._bstore.startup_finished[self._bl, self._bn])

    @_finished.setter
    def _finished(self, value: bool) -> None:
        self._bstore.startup_finished[self._bl, self._bn] = value


class BatchQmaMac(QmaMac):
    """QmaMac whose subslot clock and pending action live in the store.

    Instances are never constructed — prepared lanes are retrofitted via a
    ``__class__`` swap.  The data-descriptor properties shadow the original
    instance attributes, so untouched serial methods (boundary evaluation,
    transaction completion, overhearing) transparently operate on the
    arrays.
    """

    @property
    def _subslot(self) -> int:
        return int(self._bstore.subslot[self._bl, self._bn])

    @_subslot.setter
    def _subslot(self, value: int) -> None:
        self._bstore.subslot[self._bl, self._bn] = value

    @property
    def _next_subslot(self) -> int:
        return int(self._bstore.next_subslot[self._bl, self._bn])

    @_next_subslot.setter
    def _next_subslot(self, value: int) -> None:
        self._bstore.next_subslot[self._bl, self._bn] = value

    @property
    def _counter(self) -> int:
        return int(self._bstore.counter[self._bl, self._bn])

    @_counter.setter
    def _counter(self, value: int) -> None:
        self._bstore.counter[self._bl, self._bn] = value

    @property
    def frames_elapsed(self) -> int:
        return int(self._bstore.frames_elapsed[self._bl, self._bn])

    @frames_elapsed.setter
    def frames_elapsed(self, value: int) -> None:
        self._bstore.frames_elapsed[self._bl, self._bn] = value

    @property
    def _pending(self) -> Optional[_BatchPendingView]:
        store, lane, node = self._bstore, self._bl, self._bn
        if store.pend_kind[lane, node] == _K_NONE:
            return None
        gen = int(store.pend_gen[lane, node])
        view = self._pview
        if view is None or view._gen != gen:
            view = _BatchPendingView(store, lane, node, gen)
            self._pview = view
        return view

    @_pending.setter
    def _pending(self, value: Optional[_PendingAction]) -> None:
        store, lane, node = self._bstore, self._bl, self._bn
        store.pend_gen[lane, node] += 1
        self._pview = None
        if value is None:
            store.pend_kind[lane, node] = _K_NONE
            store.pend_frames[lane][node] = None
            return
        store.pend_kind[lane, node] = _KIND_TO_CODE[value.kind]
        store.pend_action[lane, node] = value.action.value
        store.pend_state[lane, node] = value.state
        store.pend_counter[lane, node] = value.counter
        store.pend_overheard[lane, node] = value.overheard
        store.pend_frames[lane][node] = value.frame

    def start(self) -> None:
        raise SimulationError("cannot (re)start a MAC inside a running seed batch")

    def stop(self) -> None:
        QmaMac.stop(self)
        self._bstore.active[self._bl, self._bn] = False

    def _schedule_next_tick(self) -> None:
        # The tick never enters the heap: record the (time, seq) key it
        # would have carried.  The sequence number is drawn from the lane's
        # real counter, so heap events scheduled later sort exactly as they
        # would in a serial run.  Gate handling is omitted on purpose — the
        # batch only absorbs AlwaysActiveGate MACs.
        store, lane, node = self._bstore, self._bl, self._bn
        sim = self.sim
        store.next_subslot[lane, node] = (
            int(store.subslot[lane, node]) + 1
        ) % store.num_subslots
        store.tick_time[lane, node] = sim._now + store.subslot_duration
        store.tick_seq[lane, node] = next(sim._seq)


# --------------------------------------------------------------------------
# Heap draining (mirrors Simulator.run_until's inlined loop)
# --------------------------------------------------------------------------
def _drain_lane(sim: Any, t_bound: float, seq_bound: int) -> None:
    """Fire every heap event strictly before the ``(t_bound, seq_bound)`` key."""
    queue = sim._queue
    heappop = heapq.heappop
    free = sim._free
    executed = 0
    while queue:
        time, seq, event = queue[0]
        if event.cancelled:
            heappop(queue)
            sim._lazy_cancelled -= 1
            continue
        if time > t_bound or (time == t_bound and seq >= seq_bound):
            break
        heappop(queue)
        sim._now = time
        sim._live -= 1
        executed += 1
        if event.kwargs is None:
            callback, arg = event.callback, event.args
            if len(free) < _FREELIST_MAX:
                free.append(event)
            if arg is None:
                callback()
            else:
                callback(arg)
        else:
            event.fired = True
            event.callback(*event.args, **event.kwargs)
    sim.events_executed += executed


def _heap_event_interleaved(sim: Any, t: float, max_tick_seq: int) -> bool:
    """True if a live heap event sits *between* this lane's tick keys."""
    queue = sim._queue
    while queue and queue[0][2].cancelled:
        heapq.heappop(queue)
        sim._lazy_cancelled -= 1
    return bool(queue) and queue[0][0] == t and queue[0][1] < max_tick_seq


# --------------------------------------------------------------------------
# The lockstep kernel
# --------------------------------------------------------------------------
class _LockstepKernel:
    """Advances all lanes boundary-by-boundary with vectorized tick phases."""

    def __init__(self, store: _BatchStore) -> None:
        self.store = store
        self._node_arange = np.arange(store.num_nodes, dtype=np.int64)

    def run(self, end_time: float) -> None:
        self._bootstrap()
        store = self.store
        while True:
            t = self._next_boundary_time()
            if t is None or t > end_time:
                break
            self._process_boundary(t)
        for sim in store.sims:
            sim.run_until(end_time)

    # ------------------------------------------------------------ bootstrap
    def _bootstrap(self) -> None:
        """Run each lane's first (heap-scheduled) ticks serially.

        ``network.start()`` ran before the retrofit, so the t=0 ticks are
        real heap events; firing them executes the original tick path over
        the facades, and their ``_schedule_next_tick`` (now the override)
        registers every agent's clock with the kernel.
        """
        store = self.store
        for lane, sim in enumerate(store.sims):
            budget = 2 * store.num_nodes + 16
            while np.isnan(store.tick_time[lane][store.active[lane]]).any():
                if budget <= 0 or not sim.step():
                    raise BatchLockstepError(
                        "lane's subslot clocks failed to register during bootstrap"
                    )
                budget -= 1

    # ------------------------------------------------------------ boundaries
    def _next_boundary_time(self) -> Optional[float]:
        store = self.store
        active = store.active
        if not active.any():
            return None
        times = store.tick_time[active]
        t = times.min()
        if not (times == t).all():
            raise BatchLockstepError(
                "lanes fell out of lockstep (non-uniform subslot boundary times)"
            )
        return float(t)

    def _process_boundary(self, t: float) -> None:
        store = self.store
        active = store.active
        # Per-lane drain bounds in four whole-array ops (a per-lane Python
        # reduction here would scale the boundary cost with the lane count).
        seq_lo = np.where(active, store.tick_seq, _SEQ_HUGE).min(axis=1).tolist()
        seq_hi = np.where(active, store.tick_seq, -1).max(axis=1).tolist()
        lane_any = active.any(axis=1).tolist()
        vector_lane = np.zeros(store.num_lanes, dtype=bool)
        serial_lanes: List[int] = []
        vector_lanes: List[int] = []
        for lane, sim in enumerate(store.sims):
            if not lane_any[lane]:
                continue
            _drain_lane(sim, t, seq_lo[lane])
            if sim._stopped:
                raise BatchLockstepError(
                    "Simulator.stop() inside a seed batch is unsupported"
                )
            sim._now = t
            if _heap_event_interleaved(sim, t, seq_hi[lane]):
                serial_lanes.append(lane)
            else:
                vector_lane[lane] = True
                vector_lanes.append(lane)
        for lane in serial_lanes:
            self._serial_boundary(lane, t)
        if vector_lanes:
            mask = active & vector_lane[:, None]
            delegates = self._vector_phases(t, mask)
            self._finish_boundary(t, mask, vector_lanes, delegates)

    def _serial_boundary(self, lane: int, t: float) -> None:
        """Exact fallback: run this lane's boundary through the real tick.

        Triggered when a heap event's ``(time, seq)`` key falls between two
        tick keys of the lane — the vector phases cannot honour that
        ordering, the original per-node ``_on_subslot`` trivially does.
        """
        store = self.store
        sim = store.sims[lane]
        for node in np.argsort(store.tick_seq[lane], kind="stable").tolist():
            if not store.active[lane, node]:
                continue
            _drain_lane(sim, t, int(store.tick_seq[lane, node]))
            sim._now = t
            sim.events_executed += 1
            mac = store.macs[lane][node]
            mac._on_subslot(mac._tick_epoch)

    # --------------------------------------------------------- vector phases
    def _vector_update(self, il: Any, inn: Any, action: int, reward: Any) -> None:
        """Vectorized Eq. 5 update: ``Q[state, action] <- reward`` per element.

        ``state`` is each element's pending state, ``next_state`` the subslot
        just entered.  The expression tree matches ``QTable.update``
        operation-for-operation in float64.
        """
        store = self.store
        state = store.pend_state[il, inn]
        nxt = store.subslot[il, inn]
        old = store.Q[il, inn, state, action]
        future = store.Q[il, inn, nxt].max(axis=1)
        candidate = (1.0 - store.alpha) * old + store.alpha * (
            reward + store.gamma * future
        )
        new = np.maximum(old - store.penalty, candidate)
        store.Q[il, inn, state, action] = new
        store.updates[il, inn] += 1
        policy = store.P[il, inn, state]
        changed = (policy != action) & (new > store.Q[il, inn, state, policy])
        if changed.any():
            store.P[il[changed], inn[changed], state[changed]] = action

    def _vector_phases(self, t: float, mask: Any) -> Dict[int, Dict[int, int]]:
        store = self.store

        # Phase 0 — clock bookkeeping and the Fig. 10 history sample.
        store.subslot[mask] = store.next_subslot[mask]
        store.counter[mask] += 1
        frame_start = mask & (store.subslot == 0)
        if frame_start.any():
            store.frames_elapsed[frame_start] += 1
            if store.track_history:
                il, inn = np.nonzero(frame_start)
                rows = np.take_along_axis(
                    store.Q[il, inn], store.P[il, inn][:, :, None], axis=2
                )[:, :, 0]
                acc = np.zeros(len(il))
                for m in range(store.num_subslots):
                    acc = acc + rows[:, m]
                # Deferred: crossing into per-mac Python lists here would
                # dominate the boundary cost; materialized at teardown.
                store.q_hist_batches.append((t, il, inn, acc))

        # Phase 1 — evaluate pendings whose outcome resolves at the boundary.
        eval_backoff = mask & (store.pend_kind == _K_BACKOFF)
        eval_cca = mask & (store.pend_kind == _K_CCA_FAILED)
        eval_startup = mask & (store.pend_kind == _K_STARTUP)
        if eval_backoff.any():
            il, inn = np.nonzero(eval_backoff)
            reward = np.where(
                store.pend_overheard[il, inn],
                store.r_backoff_overheard,
                store.r_backoff_idle,
            )
            self._vector_update(il, inn, QAction.QBACKOFF.value, reward)
        if eval_cca.any():
            il, inn = np.nonzero(eval_cca)
            self._vector_update(il, inn, QAction.QCCA.value, store.r_cca_failed)
        if eval_startup.any():
            il, inn = np.nonzero(eval_startup)
            overheard = store.pend_overheard[il, inn]
            reward = np.where(overheard, store.r_backoff_overheard, store.r_backoff_idle)
            self._vector_update(il, inn, QAction.QBACKOFF.value, reward)
            ol, on = il[overheard], inn[overheard]
            if ol.size:
                # Serial order: punish QCCA, then QSend, re-reading the policy.
                self._vector_update(ol, on, QAction.QCCA.value, store.startup_cca_punishment)
                self._vector_update(ol, on, QAction.QSEND.value, store.startup_send_punishment)
        resolved = eval_backoff | eval_cca | eval_startup
        if resolved.any():
            store.pend_kind[resolved] = _K_NONE
            store.pend_gen[resolved] += 1

        # Phase 2 — startup observation or action selection.
        idle = mask & (store.pend_kind == _K_NONE) & ~store.radio_transmitting
        startup_obs = idle & ~store.startup_finished
        if startup_obs.any():
            store.pend_kind[startup_obs] = _K_STARTUP
            store.pend_action[startup_obs] = QAction.QBACKOFF.value
            store.pend_state[startup_obs] = store.subslot[startup_obs]
            store.pend_counter[startup_obs] = store.counter[startup_obs]
            store.pend_overheard[startup_obs] = False
            store.pend_gen[startup_obs] += 1
            store.startup_elapsed[startup_obs] += 1
            store.startup_finished |= startup_obs & (
                store.startup_elapsed >= store.startup_duration
            )

        delegates: Dict[int, Dict[int, int]] = {}
        select = idle & ~startup_obs & (store.queue_level > 0)
        if select.any():
            il, inn = np.nonzero(select)
            if store.neighbour_max_age is not None:
                cutoff = t - store.neighbour_max_age
                stale = np.nonzero(store.nb_oldest[il, inn] < cutoff)[0]
                for k in stale.tolist():
                    # The real tracker expires and re-syncs its mirrors.
                    store.macs[il[k]][inn[k]].neighbours._expire(t)
            counts = store.nb_count[il, inn]
            average = np.where(
                counts > 0, store.nb_sum[il, inn] / np.maximum(counts, 1), 0.0
            )
            difference = store.queue_level[il, inn] - average
            table = store.exploration_table
            index = np.clip(difference.astype(np.int64), 0, len(table) - 1)
            rho = np.where(difference > 0, table[index], table[0])
            if store.track_history:
                store.rho_hist_batches.append((t, il, inn, rho))

            # The ρ-draw: two MT words per element, CPython random() exactly.
            need = np.nonzero(store.cursor[il, inn] > store.WORD_BUFFER - 2)[0]
            for k in need.tolist():
                store.refill_words(il[k], inn[k])
            cur = store.cursor[il, inn]
            w0 = store.words[il, inn, cur]
            w1 = store.words[il, inn, cur + 1]
            store.cursor[il, inn] = cur + 2
            draw = (
                (w0 >> np.uint32(5)).astype(np.float64) * 67108864.0
                + (w1 >> np.uint32(6)).astype(np.float64)
            ) * _RECIP_53
            explore = draw < rho
            greedy = ~explore
            actions = np.empty(len(il), dtype=np.int64)
            if greedy.any():
                gl, gn = il[greedy], inn[greedy]
                actions[greedy] = store.P[gl, gn, store.subslot[gl, gn]]
            # choice(ALL_ACTIONS): per-element 2-bit rejection sampling.
            pending = np.nonzero(explore)[0]
            while pending.size:
                pl, pn = il[pending], inn[pending]
                need = np.nonzero(store.cursor[pl, pn] > store.WORD_BUFFER - 1)[0]
                for k in need.tolist():
                    store.refill_words(pl[k], pn[k])
                cur = store.cursor[pl, pn]
                bits = store.words[pl, pn, cur] >> np.uint32(30)
                store.cursor[pl, pn] = cur + 1
                accepted = bits < len(ALL_ACTIONS)
                actions[pending[accepted]] = bits[accepted].astype(np.int64)
                pending = pending[~accepted]

            store.sel_counts[il, inn, actions] += 1
            store.random_sel[il[explore], inn[explore]] += 1
            store.greedy_sel[il[greedy], inn[greedy]] += 1

            # QBackoff resolves entirely in-array; QCCA/QSend touch the
            # channel and run through the real _execute in phase 3.
            backoff = actions == QAction.QBACKOFF.value
            if backoff.any():
                bl, bn = il[backoff], inn[backoff]
                store.pend_kind[bl, bn] = _K_BACKOFF
                store.pend_action[bl, bn] = QAction.QBACKOFF.value
                store.pend_state[bl, bn] = store.subslot[bl, bn]
                store.pend_counter[bl, bn] = store.counter[bl, bn]
                store.pend_overheard[bl, bn] = False
                store.pend_gen[bl, bn] += 1
            for k in np.nonzero(~backoff)[0].tolist():
                delegates.setdefault(int(il[k]), {})[int(inn[k])] = int(actions[k])
        return delegates

    def _finish_boundary(
        self,
        t: float,
        mask: Any,
        vector_lanes: List[int],
        delegates: Dict[int, Dict[int, int]],
    ) -> None:
        """Phase 3: channel-touching actions and next-tick registration.

        Per lane, nodes are visited in tick-seq (== node) order so that a
        QSend of an earlier node is visible to a later node's CCA exactly
        as in a serial run, and sequence numbers are consumed in the serial
        pattern (action events first, then the node's next tick).
        """
        store = self.store
        next_time = t + store.subslot_duration
        num_nodes = store.num_nodes
        # Whole-array clock advance for every vector lane at once; only the
        # sequence-number bookkeeping below needs a per-lane pass.
        store.tick_time[mask] = next_time
        store.next_subslot[mask] = (store.subslot[mask] + 1) % store.num_subslots
        counts = mask.sum(axis=1).tolist()
        for lane in vector_lanes:
            sim = store.sims[lane]
            count = counts[lane]
            lane_delegates = delegates.get(lane)
            if lane_delegates:
                # Rare path (an agent chose QCCA/QSend): walk the lane's
                # nodes so the action's heap events draw their seqs in the
                # serial interleaving.
                row = mask[lane]
                for node in np.nonzero(row)[0].tolist():
                    action = lane_delegates.get(node)
                    if action is not None:
                        mac = store.macs[lane][node]
                        mac._execute(ALL_ACTIONS[action], int(store.subslot[lane, node]))
                    store.tick_seq[lane, node] = next(sim._seq)
            else:
                # No heap events will be scheduled: bulk-consume one seq per
                # node without touching the iterator N times.
                base = next(sim._seq)
                if count == num_nodes:
                    np.add(self._node_arange, base, out=store.tick_seq[lane])
                else:
                    nodes = np.nonzero(mask[lane])[0]
                    store.tick_seq[lane, nodes] = base + np.arange(count, dtype=np.int64)
                sim._seq = itertools.count(base + count)
            sim.events_executed += count


# --------------------------------------------------------------------------
# Public executor
# --------------------------------------------------------------------------
def batch_compatibility_error(prepared: Sequence[Any]) -> Optional[str]:
    """Why the prepared lanes cannot run in lockstep (None if they can).

    The kernel replicates one specific inner loop; anything it has not been
    proven bit-identical for — other MAC kinds, windowed gates, decaying
    exploration, custom component subclasses — degrades to serial execution
    rather than risking a silent divergence.
    """
    if np is None:
        return "numpy is not available"
    first = prepared[0]
    end_time = first.end_time
    node_ids = list(first.built.network.macs.keys())
    sample = next(iter(first.built.network.macs.values()), None)
    if sample is None:
        return "lane has no nodes"
    if not isinstance(sample, QmaMac):
        return f"unsupported MAC kind: {type(sample).__name__}"
    for lane in prepared:
        if lane.end_time != end_time:
            return "lanes have different end times"
        if lane.sim.now != 0.0:
            return "lane has already been run"
        if list(lane.built.network.macs.keys()) != node_ids:
            return "lanes have different node sets"
        for mac in lane.built.network.macs.values():
            if type(mac) is not QmaMac:
                return f"unsupported MAC kind: {type(mac).__name__}"
            if type(mac.gate) is not AlwaysActiveGate:
                return f"unsupported activity gate: {type(mac.gate).__name__}"
            if type(mac.exploration) is not ParameterBasedExploration:
                return f"unsupported exploration: {type(mac.exploration).__name__}"
            if (
                type(mac.qtable) is not QTable
                or type(mac.startup) is not CautiousStartup
                or type(mac.neighbours) is not NeighbourQueueTracker
                or type(mac.queue) is not PacketQueue
                or type(mac.radio) is not Radio
                or type(mac._rng) is not _py_random.Random
            ):
                return "MAC uses customised components"
            if (
                mac.config != sample.config
                or mac.rewards != sample.rewards
                or mac.exploration.table != sample.exploration.table
                or mac.neighbours.max_age != sample.neighbours.max_age
            ):
                return "lanes have heterogeneous QMA parameters"
    return None


class SeedBatchExecutor:
    """Runs prepared same-configuration scenario lanes, batched when possible.

    ``run`` takes handles with ``sim``/``end_time``/``built``/``finish()``
    (:class:`repro.experiments.testbed.PreparedTopologyRun` is the canonical
    shape), executes all of them, and returns their finalized reports in
    input order.  Lanes the lockstep kernel supports advance together with
    vectorized tick phases; anything else runs serially — results are
    bit-identical either way.
    """

    def __init__(self, force_serial: bool = False) -> None:
        self.force_serial = force_serial
        #: Why the last ``run`` fell back to serial execution (None if it
        #: ran the lockstep kernel); exposed for tests and benchmarks.
        self.last_fallback_reason: Optional[str] = None

    def run(self, prepared: Sequence[Any]) -> List[Any]:
        lanes = list(prepared)
        if not lanes:
            return []
        reason: Optional[str] = "forced serial" if self.force_serial else None
        if reason is None:
            reason = batch_compatibility_error(lanes)
        if reason is None and len(lanes) == 1:
            reason = "single lane"
        self.last_fallback_reason = reason
        if reason is None:
            store = _BatchStore(lanes)
            _LockstepKernel(store).run(lanes[0].end_time)
            store.materialize_histories()
            store.merge_action_stats()
        else:
            for lane in lanes:
                lane.sim.run_until(lane.end_time)
        return [lane.finish() for lane in lanes]
