"""The discrete-event simulation engine.

The engine is intentionally small: a binary heap of :class:`Event` objects,
a simulation clock and a handful of run-control methods.  Determinism is a
hard requirement for reproducing the paper's figures, therefore

* events scheduled for the same time are executed in scheduling order
  (a monotonically increasing sequence number breaks ties), and
* all randomness is drawn from named streams managed by
  :class:`repro.sim.rng.RngRegistry`, seeded from a single master seed.

The heap stores ``(time, seq, event)`` tuples rather than bare
:class:`Event` objects: tuple comparison runs entirely in C, so the heap
never calls ``Event.__lt__`` on the hot path (the method is kept for
explicit comparisons).  The ordering is identical — ``(time, seq)`` is
exactly what ``Event.__lt__`` compares.

Allocation-lean fast path
-------------------------
:meth:`Simulator.schedule` is general (arbitrary ``*args``/``**kwargs``,
returns a cancellable :class:`Event`), which costs an argument tuple, a
keyword dictionary and a fresh :class:`Event` per call.  The MAC/PHY inner
loops (subslot ticks, CCA-to-transmit delays, ACK transmissions, channel
end-of-transmission) never cancel their events and pass at most one
positional argument, so they use :meth:`Simulator.schedule_fast` /
:meth:`Simulator.schedule_at_fast` instead: no tuple, no dict, no handle —
and the fired :class:`Event` shells are recycled through a freelist
instead of becoming garbage.  Ordering is shared with the general path
(one sequence counter), so mixing both paths keeps the deterministic
``(time, seq)`` execution order.

Lazily-cancelled events (ACK timeouts resolved by an ACK, stopped tick
clocks) stay on the heap until popped; the engine counts them and compacts
the heap in place once they outnumber half of the queue, so long runs with
many cancels do not drag a tail of dead entries through every sift.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


#: Shared empty kwargs for events scheduled without keyword arguments —
#: the dictionary is only ever ``**``-unpacked, never handed out or
#: mutated, so one instance serves every event.
_NO_KWARGS: dict = {}

#: Upper bound on recycled event shells kept in the freelist.  The live
#: fast-event population of a simulation is bounded by its concurrency
#: (at most a handful per node), so this is generous.
_FREELIST_MAX = 4096


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at` and can be cancelled as long as they have
    not fired yet.  Cancellation is lazy: the event stays on the heap but is
    skipped when popped (the simulator counts such entries and periodically
    compacts the heap).

    Fast-path events (``kwargs is None``) are internal: they carry at most
    one positional argument in ``args``, are never handed to callers and
    are recycled after firing.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Any,
        kwargs: Optional[dict],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is a no-op."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, seq={self.seq}, {name}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all random streams obtained through :attr:`rng`.
    trace:
        When True, a :class:`TraceRecorder` collects trace records emitted by
        components via :meth:`record`.
    trace_limit:
        Optional bound on the number of retained trace records; once hit,
        further records are counted in ``tracer.dropped`` instead of stored
        (campaign sweeps pass a default bound so long runs cannot exhaust
        memory silently).  None keeps the recorder unbounded.
    """

    #: Compaction kicks in only beyond this many lazily-cancelled entries
    #: (small queues never pay for a rebuild).
    COMPACT_MIN_CANCELLED = 64

    def __init__(
        self, seed: int = 0, trace: bool = False, trace_limit: Optional[int] = None
    ) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._live = 0  # scheduled and neither fired nor cancelled
        self._lazy_cancelled = 0  # cancelled entries still on the heap
        self._free: List[Event] = []  # recycled fast-path event shells
        self.rng = RngRegistry(seed)
        self.tracer: Optional[TraceRecorder] = (
            TraceRecorder(max_records=trace_limit) if trace else None
        )
        self._trace_hooks: List[Callable[[float, str, dict], None]] = []
        self.events_executed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time: {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time, next(self._seq), callback, args, kwargs or _NO_KWARGS, self)
        self._live += 1
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def schedule_fast(self, delay: float, callback: Callable[..., Any], arg: Any = None) -> None:
        """Allocation-lean fire-and-forget scheduling (hot-path variant).

        Calls ``callback()`` (or ``callback(arg)`` when ``arg`` is not None)
        ``delay`` seconds from now.  Unlike :meth:`schedule` no handle is
        returned, so the event cannot be cancelled — use it only for events
        that always run to completion (the callback itself may no-op).
        Fired events are recycled through a freelist.  ``arg`` must not
        rely on ``None`` as a payload; use :meth:`schedule` for that.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq = next(self._seq)
            event.callback = callback
            event.args = arg
        else:
            event = Event(time, next(self._seq), callback, arg, None, self)
            seq = event.seq
        self._live += 1
        heapq.heappush(self._queue, (time, seq, event))

    def schedule_at_fast(self, time: float, callback: Callable[..., Any], arg: Any = None) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.seq = seq = next(self._seq)
            event.callback = callback
            event.args = arg
        else:
            event = Event(time, next(self._seq), callback, arg, None, self)
            seq = event.seq
        self._live += 1
        heapq.heappush(self._queue, (time, seq, event))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        event.cancel()

    # ----------------------------------------------------------- maintenance
    def _note_cancel(self) -> None:
        """Book-keeping for a lazy cancel; compacts the heap when dead
        entries outnumber half of it.

        Compaction mutates the queue *in place* (slice assignment), so the
        local bindings held by an active :meth:`run_until` drain loop stay
        valid.
        """
        self._live -= 1
        self._lazy_cancelled += 1
        queue = self._queue
        if (
            self._lazy_cancelled > self.COMPACT_MIN_CANCELLED
            and self._lazy_cancelled * 2 > len(queue)
        ):
            queue[:] = [entry for entry in queue if not entry[2].cancelled]
            heapq.heapify(queue)
            self._lazy_cancelled = 0

    def _recycle(self, event: Event) -> None:
        """Return a fired fast-path event shell to the freelist.

        The shell keeps its last callback/argument references until reuse
        (clearing them would cost two stores per event on the hot path);
        the freelist is bounded and dies with the simulator, so nothing
        outlives the run because of it.
        """
        free = self._free
        if len(free) < _FREELIST_MAX:
            free.append(event)

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the next pending event.

        Returns True if an event was executed, False if the queue is empty.
        """
        while self._queue:
            time, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                self._lazy_cancelled -= 1
                continue
            self._now = time
            self._live -= 1
            self.events_executed += 1
            if event.kwargs is None:
                callback, arg = event.callback, event.args
                self._recycle(event)
                if arg is None:
                    callback()
                else:
                    callback(arg)
            else:
                event.fired = True
                event.callback(*event.args, **event.kwargs)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time``.

        The clock is advanced to exactly ``end_time`` when the run finishes,
        even if the last event fired earlier.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} lies in the past (now={self._now})"
            )
        self._running = True
        self._stopped = False
        # Inlined drain loop: local bindings and the tuple-based heap keep
        # the per-event overhead minimal (this is the simulation hot path).
        queue = self._queue
        heappop = heapq.heappop
        free = self._free
        free_append = free.append
        executed = 0
        try:
            while queue and not self._stopped:
                time, _, event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    self._lazy_cancelled -= 1
                    continue
                if time > end_time:
                    break
                heappop(queue)
                self._now = time
                self._live -= 1
                executed += 1
                if event.kwargs is None:
                    callback, arg = event.callback, event.args
                    if len(free) < _FREELIST_MAX:
                        free_append(event)
                    if arg is None:
                        callback()
                    else:
                        callback(arg)
                else:
                    event.fired = True
                    event.callback(*event.args, **event.kwargs)
        finally:
            self._running = False
            self.events_executed += executed
        if not self._stopped:
            self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is exhausted (or ``max_events`` fired)."""
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the current :meth:`run` / :meth:`run_until` after the current event."""
        self._stopped = True

    # ----------------------------------------------------------------- trace
    @property
    def tracing(self) -> bool:
        """True when trace records are observed (recorder or hooks attached).

        Components emitting hot-path traces guard on this so that building
        the record's field dictionary costs nothing when nobody listens.
        """
        return self.tracer is not None or bool(self._trace_hooks)

    def add_trace_hook(self, hook: Callable[[float, str, dict], None]) -> None:
        """Subscribe a typed hook called as ``hook(time, category, fields)``
        for every trace record emitted via :meth:`record`.

        Hooks fire regardless of whether a :class:`TraceRecorder` is
        attached, so metric collectors can observe trace events without the
        memory cost of retaining them.
        """
        self._trace_hooks.append(hook)

    def record(self, category: str, **fields: Any) -> None:
        """Emit a trace record if tracing is enabled; notify trace hooks."""
        if self.tracer is not None:
            self.tracer.record(self._now, category, fields)
        if self._trace_hooks:
            for hook in self._trace_hooks:
                hook(self._now, category, fields)

    # ----------------------------------------------------------------- misc
    def pending_events(self) -> int:
        """Number of events still scheduled (excluding lazily cancelled ones).

        O(1): the simulator keeps a live-event counter, incremented on
        scheduling and decremented when an event fires or is cancelled.
        """
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Simulator(now={self._now:.6f}, pending={self.pending_events()})"
